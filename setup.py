"""Setup shim for environments without the wheel package (legacy editable
installs via `pip install -e . --no-build-isolation --config-settings ...`
or `python setup.py develop`)."""

from setuptools import setup

setup()
