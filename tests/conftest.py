"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.operator import Operator
from repro.core.operators import KeyedCounter
from repro.core.query import QueryGraph
from repro.runtime.sink import RecordingCollector, SinkOperator
from repro.runtime.source import SourceOperator
from repro.runtime.system import StreamProcessingSystem
from repro.sim.simulator import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


class ManualGenerator:
    """A workload generator driven explicitly by tests.

    ``feed(key, payload, weight)`` injects into the first source instance;
    ``feed_at`` schedules an injection at an absolute simulated time.
    """

    def __init__(self) -> None:
        self.system: StreamProcessingSystem | None = None
        self.instances = []

    def attach(self, system, instances) -> None:
        self.system = system
        self.instances = instances

    def feed(self, key, payload=None, weight: int = 1, instance: int = 0) -> None:
        self.instances[instance].inject(key, payload, weight)

    def feed_at(self, time: float, key, payload=None, weight: int = 1) -> None:
        assert self.system is not None
        self.system.sim.schedule_at(
            time, self.instances[0].inject, key, payload, weight
        )


class PassThrough(Operator):
    """Stateless operator forwarding tuples unchanged."""

    def __init__(self, name: str = "mid", **kwargs):
        kwargs.setdefault("stateful", False)
        kwargs.setdefault("cost_per_tuple", 1e-4)
        super().__init__(name, **kwargs)

    def on_tuple(self, tup, ctx) -> None:
        ctx.emit(tup.key, tup.payload, weight=tup.weight)


def tiny_query(with_middle: bool = True) -> tuple[QueryGraph, RecordingCollector]:
    """source → (mid) → counter → sink, with a recording sink."""
    graph = QueryGraph()
    graph.add_operator(SourceOperator("source", cost_per_tuple=1e-5), source=True)
    if with_middle:
        graph.add_operator(PassThrough("mid"))
    graph.add_operator(KeyedCounter("counter", cost_per_tuple=1e-4))
    collector = RecordingCollector()
    graph.add_operator(SinkOperator("sink", collector), sink=True)
    if with_middle:
        graph.chain("source", "mid", "counter", "sink")
    else:
        graph.chain("source", "counter", "sink")
    graph.validate()
    return graph, collector


def small_system(
    strategy: str = "rsm",
    scaling: bool = False,
    checkpoint_interval: float = 2.0,
    with_middle: bool = True,
    **config_overrides,
) -> tuple[StreamProcessingSystem, ManualGenerator, RecordingCollector]:
    """A deployed tiny pipeline with a manually driven source."""
    config = SystemConfig()
    config.scaling.enabled = scaling
    config.fault.strategy = strategy
    config.checkpoint.interval = checkpoint_interval
    config.checkpoint.stagger = False
    for key, value in config_overrides.items():
        setattr(config, key, value)
    graph, collector = tiny_query(with_middle)
    system = StreamProcessingSystem(config)
    generator = ManualGenerator()
    system.deploy(graph, generators={"source": generator})
    return system, generator, collector


@pytest.fixture
def pipeline():
    return small_system()
