"""Tests for the recovery coordinator and R+SM recovery paths."""

import pytest

from repro.runtime.instance import InstanceStatus
from tests.conftest import small_system


def feed_many(gen, keys, weight=1):
    for key in keys:
        gen.feed(key, weight=weight)


class TestSerialRecovery:
    def run_with_failure(self, fail_at=5.0, until=30.0, **kwargs):
        system, gen, col = small_system(checkpoint_interval=1.0, **kwargs)
        feed_many(gen, [f"k{i}" for i in range(20)])
        gen.feed_at(fail_at + 2.0, "after_failure")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), fail_at)
        system.run(until=until)
        return system, gen

    def test_recovers_within_seconds(self):
        system, _gen = self.run_with_failure()
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        duration = system.recovery.recovery_durations[0][1]
        assert 0 < duration < 10.0

    def test_state_restored_exactly(self):
        system, _gen = self.run_with_failure()
        counter = system.instances_of("counter")[0]
        for i in range(20):
            assert counter.state[f"k{i}"] == 1
        assert counter.state["after_failure"] == 1

    def test_slot_uid_preserved(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a"])
        uid_before = system.query_manager.slots_of("counter")[0].uid
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 4.0)
        system.run(until=20.0)
        assert system.query_manager.slots_of("counter")[0].uid == uid_before

    def test_tuples_during_outage_replayed(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a"])
        # These arrive while the counter is dead; the mid buffer holds them.
        gen.feed_at(5.5, "during1")
        gen.feed_at(5.7, "during2")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=30.0)
        counter = system.instances_of("counter")[0]
        assert counter.state["during1"] == 1
        assert counter.state["during2"] == 1

    def test_detection_delay_respected(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.detection_delay = 3.0
        feed_many(gen, ["a"])
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=30.0)
        started = system.metrics.events_of_kind("recovery_started")[0][0]
        assert started >= 8.0

    def test_failed_instance_replaced_in_registry(self):
        system, _gen = self.run_with_failure()
        counter = system.instances_of("counter")[0]
        assert counter.status is InstanceStatus.RUNNING
        assert counter.vm.alive


class TestParallelRecovery:
    def test_recovers_into_two_partitions(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.recovery_parallelism = 2
        feed_many(gen, [f"k{i}" for i in range(30)])
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=40.0)
        assert system.query_manager.parallelism_of("counter") == 2
        parts = system.instances_of("counter")
        merged = {}
        for part in parts:
            merged.update(part.state.entries)
        assert all(merged[f"k{i}"] == 1 for i in range(30))

    def test_recovery_event_recorded(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.recovery_parallelism = 2
        feed_many(gen, ["a", "b"])
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=40.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1


class TestRecoveryEdgeCases:
    def test_double_detection_is_idempotent(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a"])
        failed = system.instances_of("counter")[0]
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 4.0)
        system.run(until=6.0)
        # Simulate a second (late) detection of the same instance.
        system.recovery.on_failure_detected(failed)
        system.run(until=30.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1

    def test_backup_lost_with_failure_retries(self):
        """When the counter and its backup VM (mid) die together, recovery
        cannot proceed — the coordinator retries and gives up cleanly."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a"])
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 4.0)
        system.injector.fail_target_at(lambda: system.vm_of("mid"), 4.0)
        system.run(until=40.0)
        # The mid operator (stateless) recovers from its own (empty)
        # checkpoint if one exists; the counter's backup died with mid.
        events = {k for _t, k, _d in system.metrics.events}
        assert "failure" in events

    def test_recovery_of_stateless_operator(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a"])
        gen.feed_at(6.0, "later")
        system.injector.fail_target_at(lambda: system.vm_of("mid"), 4.0)
        system.run(until=30.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        counter = system.instances_of("counter")[0]
        assert counter.state["later"] == 1


class TestHeartbeatMonitor:
    def test_monitor_detects_failure(self):
        from repro.fault.detector import HeartbeatMonitor

        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.detection_delay = 1e9  # disable the default path
        monitor = HeartbeatMonitor(system, period=0.5, missed_beats=2)
        monitor.start()
        feed_many(gen, ["a"])
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 4.0)
        system.run(until=30.0)
        assert monitor.detections == 1
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1

    def test_monitor_ignores_healthy(self):
        from repro.fault.detector import HeartbeatMonitor

        system, gen, _col = small_system()
        monitor = HeartbeatMonitor(system)
        monitor.start()
        system.run(until=10.0)
        assert monitor.detections == 0


class TestRetryBackoff:
    """Config-driven capped exponential backoff for recovery retries."""

    def _capture(self, system, kind):
        rows = []
        system.metrics.on_event(
            lambda t, k, d, fields: rows.append((t, dict(fields)))
            if k == kind
            else None
        )
        return rows

    def test_delays_grow_exponentially_and_cap(self):
        system, _gen, _col = small_system()
        cfg = system.config.fault
        cfg.retry_base, cfg.retry_multiplier = 1.0, 3.0
        cfg.retry_cap, cfg.retry_jitter = 5.0, 0.0
        uid = system.query_manager.slots_of("counter")[0].uid
        instance = system.instances[uid]
        retries = self._capture(system, "recovery_retry")
        for _ in range(4):
            system.recovery.schedule_retry(instance, failure_time=0.0)
        delays = [fields["delay"] for _t, fields in retries]
        assert delays == [1.0, 3.0, 5.0, 5.0]  # base, x3, capped, capped
        attempts = [fields["attempt"] for _t, fields in retries]
        assert attempts == [1, 2, 3, 4]

    def test_jitter_scales_delay_within_band_deterministically(self):
        def delays_for(jitter):
            system, _gen, _col = small_system()
            cfg = system.config.fault
            cfg.retry_base, cfg.retry_multiplier = 2.0, 1.0
            cfg.retry_cap, cfg.retry_jitter = 2.0, jitter
            uid = system.query_manager.slots_of("counter")[0].uid
            instance = system.instances[uid]
            retries = self._capture(system, "recovery_retry")
            for _ in range(5):
                system.recovery.schedule_retry(instance, failure_time=0.0)
            return [fields["delay"] for _t, fields in retries]

        jittered = delays_for(0.5)
        assert all(1.0 <= d <= 3.0 for d in jittered)
        assert len(set(jittered)) > 1  # actually perturbed
        assert jittered == delays_for(0.5)  # seeded: reproducible
        assert delays_for(0.0) == [2.0] * 5  # zero jitter consumes no RNG

    def test_gives_up_after_max_retries(self):
        system, _gen, _col = small_system()
        cfg = system.config.fault
        cfg.retry_jitter = 0.0
        cfg.max_retries = 2
        uid = system.query_manager.slots_of("counter")[0].uid
        instance = system.instances[uid]
        giveups = self._capture(system, "recovery_giveup")
        for _ in range(4):
            system.recovery.schedule_retry(instance, failure_time=0.0)
        assert system.recovery.giveups == 2
        assert len(system.metrics.events_of_kind("recovery_retry")) == 2
        assert giveups and giveups[0][1]["attempts"] == 2

    def test_gives_up_past_deadline(self):
        system, _gen, _col = small_system()
        cfg = system.config.fault
        cfg.retry_jitter = 0.0
        cfg.retry_deadline = 4.0
        uid = system.query_manager.slots_of("counter")[0].uid
        instance = system.instances[uid]
        system.run(until=10.0)  # now - failure_time exceeds the deadline
        system.recovery.schedule_retry(instance, failure_time=0.0)
        assert system.recovery.giveups == 1
        assert len(system.metrics.events_of_kind("recovery_giveup")) == 1

    def test_backup_outage_retries_until_recovery_completes(self):
        """End to end: kill the worker *and* its backup VM together, so
        the first recovery attempt finds no backup and must retry."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.retry_jitter = 0.0
        feed_many(gen, ["a", "b"])
        uid = system.query_manager.slots_of("counter")[0].uid

        def kill_both():
            backup_vm = system.backup_locations.get(uid)
            system.injector.fail_now(system.vm_of("counter"))
            if backup_vm is not None and backup_vm.alive:
                system.injector.fail_now(backup_vm)

        system.sim.schedule_at(5.0, kill_both)
        system.run(until=40.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) >= 1
        counter = system.instances_of("counter")[0]
        assert counter.state["a"] == 1
