"""Tests for the active-replication strategy (§7 comparison point)."""

import pytest

from tests.conftest import small_system


def feed_many(gen, keys):
    for key in keys:
        gen.feed(key)


def ar_system(**overrides):
    return small_system(strategy="active_replication", **overrides)


class TestReplication:
    def test_stateful_operators_replicated(self):
        system, _gen, _col = ar_system()
        counter = system.instances_of("counter")[0]
        mid = system.instances_of("mid")[0]
        assert system.replication.replica_of(counter.uid) is not None
        assert system.replication.replica_of(mid.uid) is None  # stateless

    def test_replica_doubles_vm_footprint(self):
        system, _gen, _col = ar_system()
        # 2 workers + src + sink + 1 replica + pool of 3
        assert system.replication.replica_vm_count() == 1
        plain, _g, _c = small_system(strategy="rsm")
        assert (
            system.provider.vm_count_allocated()
            == plain.provider.vm_count_allocated() + 1
        )

    def test_replica_mirrors_state(self):
        system, gen, _col = ar_system()
        feed_many(gen, ["a", "b", "a"])
        system.run(until=2.0)
        counter = system.instances_of("counter")[0]
        replica = system.replication.replica_of(counter.uid)
        assert replica.state.entries == counter.state.entries

    def test_replica_emits_nothing(self):
        system, gen, _col = ar_system()
        feed_many(gen, ["a"])
        system.run(until=2.0)
        counter = system.instances_of("counter")[0]
        replica = system.replication.replica_of(counter.uid)
        assert replica.emitted_weight == 0
        assert replica.processed_weight == 1

    def test_no_checkpoints_under_ar(self):
        system, gen, _col = ar_system()
        feed_many(gen, ["a"])
        system.run(until=5.0)
        assert system.counter("checkpoints_stored") == 0


class TestPromotion:
    def run_failover(self, fail_at=5.0, until=30.0):
        system, gen, col = ar_system()
        feed_many(gen, [f"k{i}" for i in range(15)])
        gen.feed_at(fail_at + 2.0, "after")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), fail_at)
        system.run(until=until)
        return system, gen

    def test_promotion_recovers_state_exactly(self):
        system, _gen = self.run_failover()
        counter = system.instances_of("counter")[0]
        assert all(counter.state[f"k{i}"] == 1 for i in range(15))
        assert counter.state["after"] == 1
        assert system.replication.promotions == 1

    def test_recovery_is_near_instant(self):
        system, _gen = self.run_failover()
        duration = system.recovery.recovery_durations[-1][1]
        detection = system.config.fault.detection_delay
        assert duration < detection + 1.0  # no state transfer, no VM wait

    def test_ar_faster_than_rsm(self):
        system, _gen = self.run_failover()
        ar_time = system.recovery.recovery_durations[-1][1]
        rsm, gen, _col = small_system(strategy="rsm", checkpoint_interval=1.0)
        feed_many(gen, [f"k{i}" for i in range(15)])
        rsm.injector.fail_target_at(lambda: rsm.vm_of("counter"), 5.0)
        rsm.run(until=30.0)
        rsm_time = rsm.recovery.recovery_durations[-1][1]
        assert ar_time < rsm_time

    def test_promoted_replica_emits(self):
        system, gen = self.run_failover(until=40.0)
        counter = system.instances_of("counter")[0]
        assert not counter.is_replica

    def test_new_replica_rearmed_after_promotion(self):
        system, gen = self.run_failover(until=40.0)
        counter = system.instances_of("counter")[0]
        new_replica = system.replication.replica_of(counter.uid)
        assert new_replica is not None
        # The re-armed replica received a state snapshot.
        assert all(new_replica.state[f"k{i}"] == 1 for i in range(15))

    def test_second_failure_also_survived(self):
        system, gen = self.run_failover(until=40.0)
        gen.feed_at(41.0, "second_round")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 45.0)
        system.run(until=70.0)
        counter = system.instances_of("counter")[0]
        assert counter.state["second_round"] == 1
        assert system.replication.promotions == 2

    def test_replica_lost_means_unrecoverable(self):
        system, gen, _col = ar_system()
        feed_many(gen, ["a"])
        counter = system.instances_of("counter")[0]
        replica = system.replication.replica_of(counter.uid)
        replica.vm.fail()
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=20.0)
        assert system.metrics.events_of_kind("unrecoverable")
