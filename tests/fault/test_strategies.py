"""Tests for the upstream-backup and source-replay baselines."""

from repro.runtime.instance import REPLAY_DROP
from tests.conftest import small_system


def feed_many(gen, keys):
    for key in keys:
        gen.feed(key)


class TestUpstreamBackup:
    def run_ub(self, fail_at=5.0, until=40.0):
        system, gen, col = small_system(strategy="upstream_backup")
        system.config.fault.buffer_horizon = 60.0
        feed_many(gen, [f"k{i}" for i in range(15)])
        gen.feed_at(fail_at + 3.0, "after")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), fail_at)
        system.run(until=until)
        return system

    def test_rebuilds_state_from_upstream_buffers(self):
        system = self.run_ub()
        counter = system.instances_of("counter")[0]
        for i in range(15):
            assert counter.state[f"k{i}"] == 1
        assert counter.state["after"] == 1

    def test_new_slot_uid_assigned(self):
        system, gen, _col = small_system(strategy="upstream_backup")
        feed_many(gen, ["a"])
        uid_before = system.query_manager.slots_of("counter")[0].uid
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 4.0)
        system.run(until=30.0)
        assert system.query_manager.slots_of("counter")[0].uid != uid_before

    def test_recovery_recorded(self):
        system = self.run_ub()
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        assert system.recovery.recovery_durations

    def test_replay_mode_cleared_after_recovery(self):
        system = self.run_ub()
        counter = system.instances_of("counter")[0]
        assert counter.replay_mode == REPLAY_DROP

    def test_no_checkpoints_under_ub(self):
        system = self.run_ub()
        assert system.counter("checkpoints_stored") == 0

    def test_buffers_age_trimmed(self):
        system, gen, _col = small_system(strategy="upstream_backup")
        system.config.fault.buffer_horizon = 2.0
        # Re-arm trimming with the short horizon used by this test.
        mid = system.instances_of("mid")[0]
        mid._age_trim_task.stop()
        mid._age_trim_task = None
        mid.start_age_trimming(2.0, period=1.0)
        gen.feed("old")
        system.run(until=10.0)
        assert mid.buffers["counter"].tuple_count() == 0


class TestSourceReplay:
    def run_sr(self, fail_at=5.0, until=40.0):
        system, gen, col = small_system(strategy="source_replay")
        system.config.fault.buffer_horizon = 60.0
        feed_many(gen, [f"k{i}" for i in range(15)])
        system.injector.fail_target_at(lambda: system.vm_of("counter"), fail_at)
        system.run(until=until)
        return system

    def test_rebuilds_state_via_pipeline(self):
        system = self.run_sr()
        counter = system.instances_of("counter")[0]
        for i in range(15):
            assert counter.state[f"k{i}"] == 1

    def test_source_paused_then_resumed(self):
        system = self.run_sr()
        assert system.source_controllers["source"].emitting

    def test_intermediates_only_buffer_at_source(self):
        system, gen, _col = small_system(strategy="source_replay")
        feed_many(gen, ["a", "b"])
        system.run(until=1.0)
        mid = system.instances_of("mid")[0]
        source = system.instances_of("source")[0]
        assert mid.buffers["counter"].tuple_count() == 0
        assert source.buffers["mid"].tuple_count() == 2

    def test_healthy_operators_drop_foreign_rederivations(self):
        """A healthy same-operator partition never double-counts SR replays."""
        system = self.run_sr()
        mid = system.instances_of("mid")[0]
        # mid re-processed the replay (accept mode during recovery) but is
        # back to drop mode afterwards.
        assert mid.replay_mode == REPLAY_DROP

    def test_recovery_recorded(self):
        system = self.run_sr()
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
