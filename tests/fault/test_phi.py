"""Tests for phi-accrual failure estimation and the phi detector.

The estimator tests pin the pure math (window statistics, monotone
suspicion growth under silence, clamping); the detector tests pin the
end-to-end message path: deterministic detection under a fixed seed,
gray failures via muting, and the latency/false-positive tradeoff the
bench sweep reports.
"""

import pytest

from repro.config import SystemConfig
from repro.fault.phi import PHI_MAX, PhiEstimator
from repro.runtime.system import StreamProcessingSystem
from tests.conftest import ManualGenerator, tiny_query


class TestPhiEstimator:
    def test_window_statistics(self):
        est = PhiEstimator(window=8, min_stddev=0.01)
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            est.heartbeat(t)
        assert est.sample_count == 4
        assert est.mean() == pytest.approx(1.0)
        # perfectly regular arrivals hit the stddev floor
        assert est.stddev() == pytest.approx(0.01)

    def test_window_evicts_oldest_sample(self):
        est = PhiEstimator(window=2, min_stddev=0.01)
        est.heartbeat(0.0)
        est.heartbeat(1.0)  # interval 1
        est.heartbeat(3.0)  # interval 2
        est.heartbeat(6.0)  # interval 3 evicts interval 1
        assert est.sample_count == 2
        assert est.mean() == pytest.approx(2.5)

    def test_backwards_clock_sample_ignored(self):
        est = PhiEstimator()
        est.heartbeat(5.0)
        est.heartbeat(4.0)
        assert est.sample_count == 0

    def test_phi_zero_without_history_or_silence(self):
        est = PhiEstimator()
        assert est.phi(10.0) == 0.0
        est.heartbeat(10.0)
        assert est.phi(10.0) == 0.0  # no elapsed silence yet
        assert est.phi(9.0) == 0.0  # queried in the past

    def test_phi_monotone_under_growing_silence(self):
        est = PhiEstimator(min_stddev=0.2)
        for t in (0.0, 0.5, 1.0, 1.5, 2.0):
            est.heartbeat(t)
        values = [est.phi(2.0 + dt) for dt in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)]
        assert values == sorted(values)
        assert values[0] < 1.0 < values[-1]
        assert all(v <= PHI_MAX for v in values)

    def test_phi_clamped_deep_in_the_tail(self):
        est = PhiEstimator(min_stddev=0.01)
        est.heartbeat(0.0)
        est.heartbeat(0.5)
        assert est.phi(1000.0) == PHI_MAX

    def test_bootstrap_interval_makes_first_silence_meaningful(self):
        # A peer that never sends a single heartbeat must still accrue
        # suspicion from the moment monitoring starts.
        est = PhiEstimator(bootstrap_interval=0.5)
        est.heartbeat(0.0)
        assert est.phi(10.0) == PHI_MAX
        cold = PhiEstimator()  # no bootstrap, no samples: phi stays flat
        cold.heartbeat(0.0)
        assert cold.phi(10.0) == 0.0


def phi_system(**fault_overrides):
    """A tiny pipeline monitored by the message-based phi detector."""
    config = SystemConfig()
    config.scaling.enabled = False
    config.fault.detector = "phi"
    for key, value in fault_overrides.items():
        setattr(config.fault, key, value)
    graph, collector = tiny_query()
    system = StreamProcessingSystem(config)
    generator = ManualGenerator()
    system.deploy(graph, generators={"source": generator})
    return system, generator, collector


class TestPhiFailureDetector:
    def test_crash_detected_and_recovered(self):
        system, gen, _col = phi_system()
        gen.feed("a")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=30.0)
        detector = system.phi_detector
        assert detector is not None
        assert detector.detections == 1
        assert detector.false_detections == 0
        events = system.metrics.events_of_kind("phi_detection")
        assert len(events) == 1
        assert events[0][0] > 5.0  # detection strictly follows the crash
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1

    def test_detection_time_deterministic_under_fixed_seed(self):
        times = []
        for _ in range(2):
            system, gen, _col = phi_system()
            gen.feed("a")
            system.injector.fail_target_at(
                lambda: system.vm_of("counter"), 5.0
            )
            system.run(until=30.0)
            events = system.metrics.events_of_kind("phi_detection")
            assert len(events) == 1
            times.append(events[0][0])
        assert times[0] == times[1]

    def test_lifecycle_walks_suspect_confirm_dead(self):
        # A wide stddev floor slows phi growth so the lifecycle states
        # are observable between checks (the sharp default floor jumps
        # from alive to dead within one check interval).
        system, gen, _col = phi_system(phi_min_stddev=0.35)
        gen.feed("a")
        uid = system.query_manager.slots_of("counter")[0].uid
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        detector = system.phi_detector
        states = []
        system.sim.every(0.05, lambda: states.append(detector.state_of(uid)))
        system.run(until=12.0)
        seen = [s for s in states if s is not None]
        # escalation order is preserved: alive before suspect before dead
        assert seen.index("alive") < seen.index("suspect") < seen.index("dead")
        assert detector.suspicions >= 1

    def test_muted_reporter_manufactures_false_detection(self):
        """Gray failure: a healthy instance whose heartbeats stop must be
        falsely declared dead — and counted as a false detection."""
        system, gen, _col = phi_system()
        gen.feed("a")
        uid = system.query_manager.slots_of("counter")[0].uid
        detector = system.phi_detector
        system.sim.schedule_at(5.0, detector.mute, uid, 30.0)
        system.run(until=30.0)
        # The mute is keyed by slot uid, so replacements reusing the uid
        # stay muted and are falsely declared dead again — every one of
        # these detections is a false positive.
        assert detector.detections >= 1
        assert detector.false_detections == detector.detections
        assert detector.heartbeats_muted > 0

    def test_higher_threshold_detects_later(self):
        latencies = []
        for phi_dead in (2.0, 8.0):
            system, gen, _col = phi_system(
                phi_dead=phi_dead,
                phi_confirm=min(phi_dead, 2.0),
                phi_suspect=1.0,
                phi_min_stddev=0.35,
            )
            gen.feed("a")
            system.injector.fail_target_at(
                lambda: system.vm_of("counter"), 5.0
            )
            system.run(until=30.0)
            events = system.metrics.events_of_kind("phi_detection")
            assert len(events) == 1
            latencies.append(events[0][0] - 5.0)
        assert latencies[0] < latencies[1]

    def test_default_config_runs_without_heartbeats(self):
        """The omniscient default must not change: no detector object, no
        heartbeat messages, no epochs — bit-identical control plane."""
        config = SystemConfig()
        config.scaling.enabled = False
        graph, _col = tiny_query()
        system = StreamProcessingSystem(config)
        gen = ManualGenerator()
        system.deploy(graph, generators={"source": gen})
        gen.feed("a")
        system.run(until=10.0)
        assert system.phi_detector is None
        assert system.slot_epochs == {}
        assert system.fence_floors == {}
        assert not system.metrics.events_of_kind("phi_detection")
