"""Tests for failure detection paths.

Two detectors can observe the same crash: the modelled
``detection_delay`` (the default path wired through
``notify_instance_failed``) and the explicit :class:`HeartbeatMonitor`.
Recovery dispatch must be idempotent when both fire, and the monitor's
bookkeeping must reset once the slot is redeployed.
"""

from repro.fault.detector import HeartbeatMonitor
from tests.conftest import small_system


def _counter_uid(system) -> int:
    return system.query_manager.slots_of("counter")[0].uid


class TestHeartbeatMonitor:
    def test_detects_after_missed_beats(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        # Push the default detection path far out so only the monitor
        # can trigger the recovery.
        system.config.fault.detection_delay = 1000.0
        monitor = HeartbeatMonitor(system, period=0.5, missed_beats=2)
        monitor.start()
        gen.feed("a")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=30.0)
        assert monitor.detections == 1
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1

    def test_both_paths_firing_dispatch_one_recovery(self):
        """detection_delay and the heartbeat monitor race on the same
        crash; the recovery coordinator must dispatch exactly once."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.detection_delay = 1.0
        monitor = HeartbeatMonitor(system, period=0.5, missed_beats=2)
        monitor.start()
        gen.feed("a")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=30.0)
        assert monitor.detections == 1
        assert len(system.metrics.events_of_kind("recovery_started")) == 1
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1

    def test_bookkeeping_clears_after_redeploy(self):
        """Once the slot's replacement is live, ``_reported``/``_missed``
        reset, so a second crash of the same slot is detected again."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.detection_delay = 1000.0
        monitor = HeartbeatMonitor(system, period=0.5, missed_beats=2)
        monitor.start()
        gen.feed("a")
        uid = _counter_uid(system)
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=20.0)
        assert uid not in monitor._reported
        assert monitor._missed.get(uid, 0) == 0
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 25.0)
        system.run(until=45.0)
        assert monitor.detections == 2
        assert len(system.metrics.events_of_kind("recovery_complete")) == 2

    def test_stop_clears_accrued_misses_and_restart_detects(self):
        """Regression: ``stop()`` must forget ``_missed`` so a restarted
        monitor starts from a clean slate instead of instantly crossing
        its threshold on counts accrued in a previous life."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.detection_delay = 1000.0
        monitor = HeartbeatMonitor(system, period=0.5, missed_beats=50)
        monitor.start()
        gen.feed("a")
        uid = _counter_uid(system)
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 2.0)
        system.run(until=6.0)
        assert monitor._missed.get(uid, 0) > 0  # accrued, unreported
        monitor.stop()
        assert monitor._missed == {}
        assert monitor._reported == set()
        monitor.missed_beats = 2
        monitor.start()
        system.run(until=15.0)
        assert monitor.detections == 1
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1

    def test_stop_clears_reported_slots(self):
        """With recovery disabled a reported slot stays reported; a
        stop/start pair must still reset that memory."""
        system, gen, _col = small_system(
            strategy="none", checkpoint_interval=1.0
        )
        system.config.fault.detection_delay = 1000.0
        monitor = HeartbeatMonitor(system, period=0.5, missed_beats=2)
        monitor.start()
        gen.feed("a")
        uid = _counter_uid(system)
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 2.0)
        system.run(until=6.0)
        assert uid in monitor._reported
        monitor.stop()
        assert monitor._reported == set()
        assert monitor._missed == {}

    def test_stale_entries_pruned_after_parallel_recovery(self):
        """Parallel recovery replaces the slot with new uids; the
        monitor's entries for the retired uid must not accumulate."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        system.config.fault.detection_delay = 1000.0
        system.config.fault.recovery_parallelism = 2
        monitor = HeartbeatMonitor(system, period=0.5, missed_beats=2)
        monitor.start()
        for i in range(10):
            gen.feed(f"k{i}")
        old_uid = _counter_uid(system)
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=30.0)
        assert system.query_manager.parallelism_of("counter") == 2
        assert old_uid not in monitor._missed
        assert old_uid not in monitor._reported
