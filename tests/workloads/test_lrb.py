"""Tests for the Linear Road Benchmark workload: model, generator,
operators (semantic validation) and query assembly."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.lrb.generator import LRBGenerator
from repro.workloads.lrb.model import (
    CONGESTION_SPEED_MPH,
    CONGESTION_VEHICLES,
    KIND_BALANCE_QUERY,
    KIND_POSITION,
    band_of,
    toll_for,
)
from repro.workloads.lrb.query import build_lrb_query, manual_parallelism
from repro.workloads.lrb.validation import TollCalculatorHarness


class TestTollModel:
    def test_no_toll_free_flow(self):
        assert toll_for(200, 60.0, accident=False) == 0.0

    def test_no_toll_light_traffic(self):
        assert toll_for(100, 20.0, accident=False) == 0.0

    def test_no_toll_during_accident(self):
        assert toll_for(500, 10.0, accident=True) == 0.0

    def test_congestion_toll_quadratic(self):
        toll = toll_for(CONGESTION_VEHICLES + 10, CONGESTION_SPEED_MPH - 1, False)
        assert toll == 2.0 * 10**2

    def test_band_of(self):
        assert band_of(0, 4) == 0
        assert band_of(99, 4) == 3
        assert band_of(50, 2) == 1


class TestGenerator:
    def make(self, xways=4, **kwargs):
        return LRBGenerator(xways, duration=100.0, **kwargs)

    def test_rate_ramps_exponentially(self):
        generator = self.make()
        assert generator.profile(0.0) == pytest.approx(15.0 * 4)
        assert generator.profile(100.0) == pytest.approx(1700.0 * 4)

    def test_tuples_cover_all_xways(self):
        generator = self.make(xways=3)
        rng = np.random.default_rng(0)
        triples = generator.make_tuples(rng, 0.0, 300, 0)
        xways = {key[0] for key, _p, _w in triples}
        assert xways == {0, 1, 2}

    def test_weights_conserved(self):
        generator = self.make(xways=5, bands=2)
        rng = np.random.default_rng(0)
        triples = generator.make_tuples(rng, 0.0, 500, 0)
        assert sum(w for _k, _p, w in triples) == 500

    def test_balance_query_fraction(self):
        generator = self.make(xways=2, balance_query_fraction=0.1)
        rng = np.random.default_rng(0)
        triples = generator.make_tuples(rng, 0.0, 1000, 0)
        balance = sum(
            w for _k, p, w in triples if p[0] == KIND_BALANCE_QUERY
        )
        assert balance == pytest.approx(100, abs=2)

    def test_accidents_flag_stopped_reports(self):
        generator = self.make(xways=1, accident_probability_per_s=1.0)
        rng = np.random.default_rng(0)
        generator.make_tuples(rng, 0.0, 100, 0)
        assert generator.active_accidents()
        triples = generator.make_tuples(rng, 1.0, 100, 0)
        stopped = [
            p for _k, p, _w in triples if p[0] == KIND_POSITION and p[4]
        ]
        assert stopped

    def test_accidents_clear(self):
        generator = self.make(
            xways=1, accident_probability_per_s=1.0, accident_duration=5.0
        )
        rng = np.random.default_rng(0)
        generator.make_tuples(rng, 0.0, 10, 0)
        generator.accident_probability_per_s = 0.0
        generator.make_tuples(rng, 10.0, 10, 0)
        assert not generator.active_accidents()

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            LRBGenerator(0, duration=10.0)
        with pytest.raises(WorkloadError):
            LRBGenerator(1, duration=10.0, balance_query_fraction=1.5)


class TestTollCalculatorSemantics:
    def test_toll_charged_only_under_congestion(self):
        harness = TollCalculatorHarness()
        key = (0, 0)
        # Light, fast traffic: no toll.
        harness.feed(0.0, key, speed=60.0, weight=10)
        assert harness.last_toll() == 0.0
        # Heavy, slow traffic in the same minute: toll appears.
        harness.feed(1.0, key, speed=10.0, weight=500)
        assert harness.last_toll() > 0.0
        assert harness.outputs.charges

    def test_accident_detection_and_clearing(self):
        harness = TollCalculatorHarness()
        key = (1, 0)
        harness.feed(0.0, key, speed=30.0, weight=200, stopped=True)
        assert harness.accident_active(key, now=1.0)
        assert harness.outputs.accidents
        # No toll while the accident is active.
        harness.feed(2.0, key, speed=10.0, weight=500)
        assert harness.last_toll() == 0.0
        # After the accident clears, congestion tolls resume.
        assert not harness.accident_active(key, now=100.0)
        harness.feed(100.0, key, speed=10.0, weight=500)
        assert harness.last_toll() > 0.0

    def test_vehicle_count_resets_each_minute(self):
        harness = TollCalculatorHarness()
        key = (2, 1)
        harness.feed(0.0, key, speed=10.0, weight=500)
        toll_minute_0 = harness.last_toll()
        harness.feed(61.0, key, speed=10.0, weight=10)
        toll_minute_1 = harness.last_toll()
        assert toll_minute_0 > 0
        assert toll_minute_1 == 0.0  # only 10 vehicles so far this minute

    def test_keys_isolated(self):
        harness = TollCalculatorHarness()
        harness.feed(0.0, (0, 0), speed=10.0, weight=500)
        harness.feed(0.0, (0, 1), speed=10.0, weight=5)
        assert harness.state.get((0, 1))["count"] == 5


class TestQueryAssembly:
    def test_seven_operators(self):
        lrb = build_lrb_query(num_xways=2, duration=50.0)
        assert len(lrb.graph.operators) == 7
        lrb.graph.validate()
        assert lrb.graph.sources == ["feeder"]
        assert lrb.graph.sinks == ["sink"]

    def test_stateful_operators(self):
        lrb = build_lrb_query(num_xways=2, duration=50.0)
        assert set(lrb.graph.stateful_operators()) == {
            "toll_calc",
            "toll_assess",
            "balance",
        }

    def test_manual_parallelism_sums_to_budget(self):
        for budget in (5, 10, 20, 30):
            allocation = manual_parallelism(budget)
            assert sum(allocation.values()) == budget
            assert all(v >= 1 for v in allocation.values())

    def test_manual_parallelism_favours_toll_calculator(self):
        allocation = manual_parallelism(25)
        assert allocation["toll_calc"] == max(allocation.values())
        assert allocation["toll_calc"] > allocation["forwarder"]

    def test_manual_parallelism_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            manual_parallelism(3)
