"""Tests for rate profiles and the rate-driven generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.synthetic import (
    RateDrivenGenerator,
    constant_rate,
    exponential_ramp,
    linear_ramp,
    step_profile,
    zipf_weights,
)
from tests.conftest import small_system


class TestProfiles:
    def test_constant(self):
        profile = constant_rate(42.0)
        assert profile(0) == 42.0
        assert profile(100) == 42.0

    def test_negative_constant_rejected(self):
        with pytest.raises(WorkloadError):
            constant_rate(-1.0)

    def test_linear_ramp(self):
        profile = linear_ramp(0.0, 100.0, 10.0)
        assert profile(0.0) == 0.0
        assert profile(5.0) == 50.0
        assert profile(10.0) == 100.0
        assert profile(20.0) == 100.0

    def test_exponential_ramp_endpoints(self):
        profile = exponential_ramp(15.0, 1700.0, 2000.0)
        assert profile(0.0) == pytest.approx(15.0)
        assert profile(2000.0) == pytest.approx(1700.0)
        assert profile(1000.0) == pytest.approx((15.0 * 1700.0) ** 0.5)

    def test_exponential_ramp_monotone(self):
        profile = exponential_ramp(10.0, 1000.0, 100.0)
        values = [profile(t) for t in range(0, 100, 10)]
        assert values == sorted(values)

    def test_step_profile(self):
        profile = step_profile([(0.0, 10.0), (5.0, 50.0)])
        assert profile(1.0) == 10.0
        assert profile(5.0) == 50.0
        assert profile(-1.0) == 0.0

    def test_empty_steps_rejected(self):
        with pytest.raises(WorkloadError):
            step_profile([])


class CountingGenerator(RateDrivenGenerator):
    def make_tuples(self, rng, now, count, instance_index):
        return [(f"k{i}", None, 1) for i in range(count)]


class TestRateDrivenGenerator:
    def test_injects_at_configured_rate(self):
        system, _gen, _col = small_system()
        # Attach a second generator manually to the already-deployed source.
        generator = CountingGenerator(constant_rate(100.0), quantum=0.1)
        generator.attach(system, system.instances_of("source"))
        system.run(until=2.0)
        assert generator.injected_weight == pytest.approx(200, abs=15)

    def test_fractional_rates_carried(self):
        system, _gen, _col = small_system()
        generator = CountingGenerator(constant_rate(2.5), quantum=0.1)
        generator.attach(system, system.instances_of("source"))
        system.run(until=4.0)
        assert generator.injected_weight == pytest.approx(10, abs=2)

    def test_stop_at_halts_injection(self):
        system, _gen, _col = small_system()
        generator = CountingGenerator(constant_rate(100.0), quantum=0.1, stop_at=1.0)
        generator.attach(system, system.instances_of("source"))
        system.run(until=5.0)
        assert generator.injected_weight <= 110

    def test_paused_controller_skips(self):
        system, _gen, _col = small_system()
        generator = CountingGenerator(constant_rate(100.0), quantum=0.1)
        generator.attach(system, system.instances_of("source"))
        system.source_controllers["source"].pause()
        system.run(until=1.0)
        assert generator.injected_weight == 0
        assert generator.skipped_weight > 0

    def test_split_shares(self):
        assert RateDrivenGenerator._split(10, 3) == [4, 3, 3]
        assert RateDrivenGenerator._split(2, 3) == [1, 1, 0]

    def test_attach_without_instances_rejected(self):
        generator = CountingGenerator(constant_rate(1.0))
        with pytest.raises(WorkloadError):
            generator.attach(None, [])

    def test_bad_quantum_rejected(self):
        with pytest.raises(WorkloadError):
            CountingGenerator(constant_rate(1.0), quantum=0.0)


class TestZipf:
    def test_normalised(self):
        weights = zipf_weights(100)
        assert weights.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_weights(10, s=1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_single_rank(self):
        assert zipf_weights(1)[0] == pytest.approx(1.0)

    def test_invalid_rejected(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)
