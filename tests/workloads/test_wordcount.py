"""Tests for the word-count workload and its generator."""

import numpy as np
import pytest

from repro.core.operator import OperatorContext
from repro.core.state import ProcessingState
from repro.core.tuples import Tuple
from repro.errors import WorkloadError
from repro.workloads.text import SentenceGenerator, make_vocabulary
from repro.workloads.synthetic import constant_rate
from repro.workloads.wordcount import WordSplitter, build_word_count_query


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = make_vocabulary(1000)
        assert len(vocab) == 1000
        assert len(set(vocab)) == 1000

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            make_vocabulary(0)


class TestSentenceGenerator:
    def test_sentences_have_configured_length(self):
        generator = SentenceGenerator(
            constant_rate(10), vocabulary_size=50, words_per_sentence=5
        )
        rng = np.random.default_rng(0)
        triples = generator.make_tuples(rng, 0.0, 4, 0)
        assert len(triples) == 4
        for _key, words, weight in triples:
            assert len(words) == 5
            assert weight == 1
            assert all(w.startswith("w") for w in words)

    def test_sentence_ids_unique(self):
        generator = SentenceGenerator(constant_rate(10), vocabulary_size=50)
        rng = np.random.default_rng(0)
        keys = [k for k, _p, _w in generator.make_tuples(rng, 0.0, 10, 0)]
        assert len(set(keys)) == 10

    def test_zipf_skew_visible(self):
        generator = SentenceGenerator(
            constant_rate(10), vocabulary_size=100, words_per_sentence=10,
            zipf_exponent=1.3,
        )
        rng = np.random.default_rng(0)
        counts: dict[str, int] = {}
        for _k, words, _w in generator.make_tuples(rng, 0.0, 200, 0):
            for word in words:
                counts[word] = counts.get(word, 0) + 1
        top = max(counts.values())
        assert top > 2 * (sum(counts.values()) / len(counts))

    def test_bad_words_per_sentence(self):
        with pytest.raises(WorkloadError):
            SentenceGenerator(constant_rate(1), words_per_sentence=0)


class TestWordSplitter:
    def test_splits_and_aggregates_repeats(self):
        splitter = WordSplitter()
        emitted = []
        ctx = OperatorContext(
            ProcessingState(),
            lambda k, p, w, c, to: emitted.append((k, w)),
        )
        splitter.on_tuple(Tuple(1, 0, ("a", "b", "a"), weight=2, slot=0), ctx)
        assert sorted(emitted) == [("a", 4), ("b", 2)]


class TestQueryBuilder:
    def test_structure(self):
        wc = build_word_count_query(rate=100)
        wc.graph.validate()
        assert wc.graph.sources == ["source"]
        assert wc.graph.sinks == ["sink"]
        assert wc.graph.stateful_operators() == ["counter"]
        assert "source" in wc.generators

    def test_rate_profile_accepted(self):
        wc = build_word_count_query(rate=lambda t: 5.0)
        assert wc.generators["source"].profile(0) == 5.0

    def test_window_configures_counter(self):
        wc = build_word_count_query(window=12.0)
        assert wc.graph.operator("counter").timer_interval == 12.0
