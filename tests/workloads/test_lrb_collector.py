"""Tests for the LRB result collector and query bundle metadata."""

from repro.core.tuples import Tuple
from repro.workloads.lrb.model import (
    KIND_ACCIDENT,
    KIND_BALANCE_RESPONSE,
    KIND_TOLL,
)
from repro.workloads.lrb.query import LRBResultCollector, build_lrb_query


class TestLRBResultCollector:
    def test_counts_by_kind(self):
        collector = LRBResultCollector()
        collector(Tuple(1, (0, 0), (KIND_TOLL, 4.0), weight=10, slot=0), 0.0)
        collector(Tuple(2, (0, 0), (KIND_ACCIDENT, 1.0), weight=2, slot=0), 0.0)
        collector(Tuple(3, (0, 0), (KIND_BALANCE_RESPONSE, 9.0), weight=3, slot=0), 0.0)
        assert collector.toll_notifications == 10
        assert collector.accident_alerts == 2
        assert collector.balance_responses == 3
        assert collector.total() == 15

    def test_unknown_kind_ignored(self):
        collector = LRBResultCollector()
        collector(Tuple(1, (0, 0), ("other", 1), slot=0), 0.0)
        assert collector.total() == 0


class TestQueryBundle:
    def test_metadata(self):
        lrb = build_lrb_query(num_xways=3, duration=60.0)
        assert lrb.num_xways == 3
        assert lrb.duration == 60.0
        assert lrb.latency_target == 5.0
        assert len(lrb.operator_names) == 7

    def test_generator_rate_override(self):
        lrb = build_lrb_query(
            num_xways=2, duration=100.0, rate_start=10.0, rate_end=100.0
        )
        generator = lrb.generators["feeder"]
        assert generator.profile(0.0) == 20.0  # 10 t/s × 2 xways
        assert generator.profile(100.0) == 200.0
