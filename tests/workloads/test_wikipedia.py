"""Tests for the map/reduce top-k Wikipedia workload."""

import numpy as np

from repro.core.operator import OperatorContext
from repro.core.state import ProcessingState
from repro.core.tuples import Tuple
from repro.workloads.synthetic import constant_rate
from repro.workloads.wikipedia import (
    LanguageTopKOperator,
    VisitMapOperator,
    VisitTraceGenerator,
    build_wikipedia_topk_query,
    language_editions,
)


class TestTraceGenerator:
    def test_weights_approximate_count(self):
        generator = VisitTraceGenerator(constant_rate(1000), languages=20)
        rng = np.random.default_rng(0)
        triples = generator.make_tuples(rng, 0.0, 10_000, 0)
        total = sum(w for _k, _p, w in triples)
        assert abs(total - 10_000) < 500

    def test_zipf_head_heavier(self):
        generator = VisitTraceGenerator(constant_rate(1000), languages=20)
        rng = np.random.default_rng(0)
        by_lang: dict[str, int] = {}
        for key, _p, w in generator.make_tuples(rng, 0.0, 10_000, 0):
            lang = key[0]
            by_lang[lang] = by_lang.get(lang, 0) + w
        assert by_lang["lang000"] > by_lang.get("lang019", 0)

    def test_keys_are_language_stripe(self):
        generator = VisitTraceGenerator(constant_rate(100), languages=5, stripes=3)
        rng = np.random.default_rng(0)
        for key, payload, _w in generator.make_tuples(rng, 0.0, 1000, 0):
            lang, stripe = key
            assert lang in language_editions(5)
            assert 0 <= stripe < 3
            assert payload["lang"] == lang


class TestOperators:
    def drive(self, operator, tuples, now=0.0):
        state = operator.initial_state()
        emitted = []
        ctx = OperatorContext(
            state, lambda k, p, w, c, to: emitted.append((k, p, w)), now=now
        )
        for tup in tuples:
            operator.on_tuple(tup, ctx)
        return state, emitted, ctx

    def test_map_strips_payload(self):
        op = VisitMapOperator()
        _state, emitted, _ctx = self.drive(
            op, [Tuple(1, ("en", 0), {"lang": "en", "page": 5}, weight=7, slot=0)]
        )
        assert emitted == [(("en", 0), "en", 7)]

    def test_reduce_counts_per_stripe(self):
        op = LanguageTopKOperator(k=3)
        state, _emitted, _ctx = self.drive(
            op,
            [
                Tuple(1, ("en", 0), "en", weight=5, slot=0),
                Tuple(2, ("en", 1), "en", weight=3, slot=0),
                Tuple(3, ("de", 0), "de", weight=4, slot=0),
            ],
        )
        assert state[("en", 0)] == 5
        assert state[("en", 1)] == 3

    def test_reduce_timer_merges_stripes(self):
        op = LanguageTopKOperator(k=2)
        state, emitted, ctx = self.drive(
            op,
            [
                Tuple(1, ("en", 0), "en", weight=5, slot=0),
                Tuple(2, ("en", 1), "en", weight=3, slot=0),
                Tuple(3, ("de", 0), "de", weight=4, slot=0),
            ],
        )
        op.on_timer(ctx)
        key, ranking, _w = emitted[-1]
        assert key == "topk"
        assert ranking == (("en", 8), ("de", 4))


class TestQueryAssembly:
    def test_structure_and_parallelism(self):
        query, parallelism = build_wikipedia_topk_query(rate=1000, sources=18)
        query.graph.validate()
        assert parallelism == {"sources": 18}
        assert query.graph.stateful_operators() == ["reduce"]

    def test_end_to_end_small(self):
        from repro.config import SystemConfig
        from repro.runtime.system import StreamProcessingSystem

        query, parallelism = build_wikipedia_topk_query(
            rate=2000.0, sources=2, quantum=0.5, emit_interval=5.0
        )
        config = SystemConfig()
        config.scaling.enabled = False
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, parallelism=parallelism, generators=query.generators)
        system.run(until=12.0)
        ranking = query.collector.ranking()
        assert ranking
        # Zipf head should rank first.
        assert ranking[0][0] == "lang000"
