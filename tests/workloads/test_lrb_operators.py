"""Direct semantic tests for the remaining LRB operators."""

import pytest

from repro.core.operator import OperatorContext
from repro.core.state import ProcessingState
from repro.core.tuples import Tuple
from repro.errors import WorkloadError
from repro.workloads.lrb.model import (
    KIND_BALANCE_QUERY,
    KIND_BALANCE_RESPONSE,
    KIND_CHARGE,
    KIND_POSITION,
)
from repro.workloads.lrb.operators import (
    BalanceAccountOperator,
    ForwarderOperator,
    TollAssessmentOperator,
    TollCollectorOperator,
)


class Driver:
    def __init__(self, operator):
        self.operator = operator
        self.state = (
            operator.initial_state() if operator.stateful else ProcessingState()
        )
        self.emitted = []
        self._ts = 0

    def feed(self, key, payload, weight=1, now=0.0):
        self._ts += 1
        tup = Tuple(self._ts, key, payload, weight=weight, slot=0)
        ctx = OperatorContext(self.state, self._collect, now=now)
        self.operator.on_tuple(tup, ctx)

    def _collect(self, key, payload, weight, created_at, to):
        self.emitted.append((key, payload, weight, to))


class TestForwarder:
    def test_positions_to_calculator(self):
        driver = Driver(ForwarderOperator())
        payload = (KIND_POSITION, 1, 50.0, 10, False)
        driver.feed((0, 0), payload, weight=5)
        assert driver.emitted == [((0, 0), payload, 5, "toll_calc")]

    def test_balance_queries_to_assessment(self):
        driver = Driver(ForwarderOperator())
        payload = (KIND_BALANCE_QUERY, 77)
        driver.feed((0, 1), payload)
        assert driver.emitted == [((0, 1), payload, 1, "toll_assess")]

    def test_unknown_kind_rejected(self):
        driver = Driver(ForwarderOperator())
        with pytest.raises(WorkloadError):
            driver.feed((0, 0), ("bogus",))

    def test_stateless(self):
        assert not ForwarderOperator().stateful


class TestTollAssessment:
    def test_charges_accumulate_per_group(self):
        driver = Driver(TollAssessmentOperator())
        driver.feed((1, 0), (KIND_CHARGE, 2.5), weight=4)
        driver.feed((1, 0), (KIND_CHARGE, 1.0), weight=2)
        driver.feed((2, 0), (KIND_CHARGE, 3.0))
        assert driver.state[(1, 0)]["balance"] == pytest.approx(12.0)
        assert driver.state[(1, 0)]["charges"] == 6
        assert driver.state[(2, 0)]["balance"] == pytest.approx(3.0)
        assert driver.emitted == []  # charges produce no output

    def test_balance_query_answered(self):
        driver = Driver(TollAssessmentOperator())
        driver.feed((1, 0), (KIND_CHARGE, 5.0), weight=2)
        driver.feed((1, 0), (KIND_BALANCE_QUERY, 9))
        key, payload, weight, to = driver.emitted[0]
        assert payload == (KIND_BALANCE_RESPONSE, 10.0)
        assert to == "balance"

    def test_query_before_any_charge(self):
        driver = Driver(TollAssessmentOperator())
        driver.feed((5, 1), (KIND_BALANCE_QUERY, 9))
        assert driver.emitted[0][1] == (KIND_BALANCE_RESPONSE, 0.0)

    def test_merge_values_sums(self):
        op = TollAssessmentOperator()
        merged = op.merge_values(
            {"balance": 2.0, "charges": 1}, {"balance": 3.0, "charges": 4}
        )
        assert merged == {"balance": 5.0, "charges": 5}


class TestBalanceAccount:
    def test_keeps_latest_and_forwards(self):
        driver = Driver(BalanceAccountOperator())
        driver.feed((1, 0), (KIND_BALANCE_RESPONSE, 10.0))
        driver.feed((1, 0), (KIND_BALANCE_RESPONSE, 25.0))
        assert driver.state[(1, 0)] == 25.0
        assert len(driver.emitted) == 2

    def test_merge_takes_max(self):
        assert BalanceAccountOperator().merge_values(3.0, 7.0) == 7.0


class TestTollCollector:
    def test_passes_through(self):
        driver = Driver(TollCollectorOperator())
        driver.feed((0, 0), ("toll", 8.0), weight=3)
        assert driver.emitted == [((0, 0), ("toll", 8.0), 3, None)]

    def test_stateless_and_cheap(self):
        op = TollCollectorOperator()
        assert not op.stateful
        assert op.cost_per_tuple < ForwarderOperator().cost_per_tuple
