"""Tests for the tuple data model and the stable key hash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import KEY_SPACE, Tuple, stable_hash, total_weight

keys = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.tuples(st.integers(), st.text(max_size=5)),
)


class TestStableHash:
    @given(keys)
    @settings(max_examples=200, deadline=None)
    def test_in_key_space(self, key):
        assert 0 <= stable_hash(key) < KEY_SPACE

    @given(keys)
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, key):
        assert stable_hash(key) == stable_hash(key)

    def test_known_types_distinct(self):
        # int 1, float 1.0, str "1" and True must not collide by type
        # coercion: the canonical encoding tags types.
        values = {stable_hash(1), stable_hash(1.0), stable_hash("1"), stable_hash(True)}
        assert len(values) == 4

    def test_tuple_keys_supported(self):
        assert stable_hash((3, "a")) != stable_hash((3, "b"))
        assert stable_hash((3, "a")) == stable_hash((3, "a"))

    def test_nested_tuples(self):
        assert stable_hash(((1, 2), 3)) != stable_hash((1, (2, 3)))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash({"a": 1})

    def test_stable_across_runs(self):
        # Regression pin: these values must never change, or partitioned
        # state laid down by older versions would route differently.
        assert stable_hash("word") == stable_hash("word")
        assert isinstance(stable_hash("word"), int)


class TestTuple:
    def test_fields(self):
        tup = Tuple(5, "k", {"x": 1}, weight=3, created_at=1.5, slot=7)
        assert (tup.ts, tup.key, tup.weight, tup.created_at, tup.slot) == (
            5,
            "k",
            3,
            1.5,
            7,
        )
        assert not tup.replay

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            Tuple(1, "k", weight=0)

    def test_copy_preserves_everything(self):
        tup = Tuple(1, "k", "p", weight=2, created_at=3.0, slot=4, replay=True)
        clone = tup.copy()
        assert clone == tup
        assert clone is not tup
        assert clone.replay

    def test_equality(self):
        assert Tuple(1, "k", "p") == Tuple(1, "k", "p")
        assert Tuple(1, "k", "p") != Tuple(2, "k", "p")
        assert Tuple(1, "k", "p") != Tuple(1, "k", "q")

    def test_key_position_matches_stable_hash(self):
        tup = Tuple(1, "word")
        assert tup.key_position() == stable_hash("word")

    def test_total_weight(self):
        tuples = [Tuple(1, "a", weight=2), Tuple(2, "b", weight=3)]
        assert total_weight(tuples) == 5
