"""Tests for the sliding-window accumulator and CSV export helper."""

import pytest

from repro.core.window import SlidingWindowAccumulator
from repro.errors import ConfigurationError


class TestSlidingWindowAccumulator:
    def make(self, width=10.0):
        return SlidingWindowAccumulator(width)

    def test_add_and_aggregate(self):
        acc = self.make()
        entries: list = []
        acc.add(entries, 1.0, 5)
        acc.add(entries, 3.0, 7)
        total = acc.aggregate(entries, now=5.0, fold=lambda a, b: a + b, zero=0)
        assert total == 12

    def test_window_slides(self):
        acc = self.make(width=10.0)
        entries: list = []
        acc.add(entries, 0.0, 100)
        acc.add(entries, 9.0, 1)
        # At t=15 the first sample is outside the window.
        total = acc.aggregate(entries, now=15.0, fold=lambda a, b: a + b, zero=0)
        assert total == 1

    def test_add_prunes_eagerly(self):
        acc = self.make(width=5.0)
        entries: list = []
        acc.add(entries, 0.0, "old")
        acc.add(entries, 10.0, "new")
        assert entries == [(10.0, "new")]

    def test_prune_returns_dropped_count(self):
        acc = self.make(width=5.0)
        entries = [(0.0, 1), (1.0, 2), (8.0, 3)]
        assert acc.prune(entries, now=10.0) == 2
        assert entries == [(8.0, 3)]

    def test_aggregate_with_custom_fold(self):
        acc = self.make()
        entries = [(1.0, 4), (2.0, 9)]
        biggest = acc.aggregate(entries, 5.0, fold=max, zero=float("-inf"))
        assert biggest == 9

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowAccumulator(0.0)


class TestFigureCsvExport:
    def test_rows_and_series_written(self, tmp_path):
        import numpy as np

        from repro.experiments.harness import FigureResult

        result = FigureResult(
            "Fig. T",
            "test",
            ["a", "b"],
            [[1, 2.5], [3, None]],
            series={"input rate": (np.array([0.5, 1.5]), np.array([10.0, 20.0]))},
        )
        path = tmp_path / "fig.csv"
        result.to_csv(str(path))
        rows = path.read_text().strip().splitlines()
        assert rows[0] == "a,b"
        assert rows[1] == "1,2.5"
        series_path = tmp_path / "fig.input_rate.csv"
        series = series_path.read_text().strip().splitlines()
        assert series[0] == "time,input rate"
        assert series[1] == "0.5,10.0"
