"""Tests for incremental checkpointing (§3.2, [17])."""

import pytest

from repro.core.checkpoint import Checkpoint, materialize_increment
from repro.core.state import ProcessingState
from repro.errors import CheckpointError
from tests.conftest import small_system


class TestDirtyTracking:
    def test_off_by_default(self):
        state = ProcessingState()
        state["a"] = 1
        assert state.dirty is None
        assert state.consume_dirty() == set()

    def test_writes_tracked(self):
        state = ProcessingState()
        state.enable_dirty_tracking()
        state["a"] = 1
        state["b"] = 2
        assert state.consume_dirty() == {"a", "b"}
        assert state.consume_dirty() == set()

    def test_mutable_reads_tracked_conservatively(self):
        state = ProcessingState({"buckets": {0: 1}, "count": 5})
        state.enable_dirty_tracking()
        state.consume_dirty()
        _ = state["buckets"]  # caller may mutate the dict in place
        _ = state["count"]  # immutable value: a pure read
        assert state.consume_dirty() == {"buckets"}

    def test_setdefault_tracked(self):
        state = ProcessingState()
        state.enable_dirty_tracking()
        state.setdefault("a", {})
        assert "a" in state.consume_dirty()

    def test_pop_tracked(self):
        state = ProcessingState({"a": 1})
        state.enable_dirty_tracking()
        state.consume_dirty()
        state.pop("a")
        assert state.consume_dirty() == {"a"}

    def test_get_on_mutable_tracked(self):
        state = ProcessingState({"a": [1]})
        state.enable_dirty_tracking()
        state.consume_dirty()
        state.get("a")
        assert state.consume_dirty() == {"a"}


class TestMaterializeIncrement:
    def base(self, entries, seq=1):
        return Checkpoint("op", 7, ProcessingState(entries, {0: 3}, 2), seq=seq)

    def delta(self, entries, deleted=(), base_seq=1, seq=2):
        return Checkpoint(
            "op",
            7,
            ProcessingState(entries, {0: 9}, 5),
            seq=seq,
            incremental=True,
            base_seq=base_seq,
            deleted_keys=frozenset(deleted),
        )

    def test_applies_updates_and_deletes(self):
        merged = materialize_increment(
            self.base({"a": 1, "b": 2, "c": 3}),
            self.delta({"b": 20, "d": 4}, deleted=["c"]),
        )
        assert merged.state.entries == {"a": 1, "b": 20, "d": 4}
        assert merged.positions == {0: 9}
        assert merged.out_clock == 5
        assert merged.seq == 2
        assert not merged.incremental

    def test_wrong_base_seq_rejected(self):
        with pytest.raises(CheckpointError):
            materialize_increment(self.base({}, seq=5), self.delta({}, base_seq=1))

    def test_full_checkpoint_rejected(self):
        with pytest.raises(CheckpointError):
            materialize_increment(self.base({}), self.base({}, seq=2))

    def test_mismatched_slot_rejected(self):
        other = Checkpoint("op", 9, ProcessingState(), seq=1)
        with pytest.raises(CheckpointError):
            materialize_increment(other, self.delta({}))

    def test_base_not_mutated(self):
        base = self.base({"a": 1})
        materialize_increment(base, self.delta({"a": 99}))
        assert base.state.entries == {"a": 1}


class TestIncrementalEndToEnd:
    def incremental_system(self):
        system, gen, col = small_system(checkpoint_interval=1.0)
        system.config.checkpoint.incremental = True
        return system, gen

    def test_backup_materialized_correctly(self):
        system, gen = self.incremental_system()
        gen.feed("a")
        system.run(until=2.5)  # full checkpoint stored
        gen.feed("b")
        gen.feed("a")
        system.run(until=5.5)  # deltas stored and materialised
        counter = system.instances_of("counter")[0]
        ckpt = system.backup_of(counter.uid)
        assert ckpt is not None
        assert not ckpt.incremental
        assert ckpt.state.entries == {"a": 2, "b": 1}

    def test_recovery_from_incremental_backups_exact(self):
        system, gen = self.incremental_system()
        for i in range(10):
            gen.feed(f"k{i}")
        system.run(until=3.0)
        for i in range(10, 20):
            gen.feed(f"k{i}")
        system.run(until=6.0)
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 7.0)
        system.run(until=30.0)
        counter = system.instances_of("counter")[0]
        assert all(counter.state[f"k{i}"] == 1 for i in range(20))

    def test_delta_cheaper_than_full(self):
        """With large mostly-cold state, incremental checkpoints consume
        far less CPU than full ones."""

        def busy_after_checkpoints(incremental):
            system, gen, _col = small_system(checkpoint_interval=1.0)
            system.config.checkpoint.incremental = incremental
            counter = system.instances_of("counter")[0]
            for i in range(50_000):
                counter.state[f"cold{i}"] = 1
            gen.feed("hot")
            system.run(until=6.5)
            return counter.vm.busy_seconds_total()

        full = busy_after_checkpoints(False)
        incremental = busy_after_checkpoints(True)
        assert incremental < full / 2

    def test_base_missing_falls_back_to_full(self):
        system, gen = self.incremental_system()
        gen.feed("a")
        system.run(until=2.5)
        counter = system.instances_of("counter")[0]
        # Drop the stored base: the next delta cannot materialise.
        system.drop_backup(counter.uid)
        vm = system.backup_locations.get(counter.uid)
        gen.feed("b")
        system.run(until=6.5)
        # A later full checkpoint re-established the backup.
        ckpt = system.backup_of(counter.uid)
        assert ckpt is not None
        assert ckpt.state.entries == {"a": 1, "b": 1}
        assert system.counter("incremental_base_missing") >= 1
