"""Tests for the operator model and the built-in operator library."""

import pytest

from repro.core.operator import LambdaOperator, Operator, OperatorContext
from repro.core.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyedCounter,
    KeyedReducer,
    MapOperator,
    TopKOperator,
    WindowedKeyedCounter,
    merge_topk,
)
from repro.core.state import ProcessingState
from repro.core.tuples import Tuple
from repro.errors import ConfigurationError


class Harness:
    """Drives an operator outside the runtime."""

    def __init__(self, operator):
        self.operator = operator
        self.state = operator.initial_state() if operator.stateful else ProcessingState()
        self.emitted = []

    def feed(self, key, payload=None, weight=1, ts=None, now=0.0, created_at=0.0):
        ts = ts if ts is not None else len(self.emitted) + 1
        tup = Tuple(ts, key, payload, weight=weight, created_at=created_at, slot=0)
        ctx = OperatorContext(self.state, self._collect, now=now)
        self.operator.on_tuple(tup, ctx)

    def timer(self, now):
        ctx = OperatorContext(self.state, self._collect, now=now)
        self.operator.on_timer(ctx)

    def _collect(self, key, payload, weight, created_at, to):
        self.emitted.append((key, payload, weight, to))


class TestOperatorBase:
    def test_name_required(self):
        with pytest.raises(ConfigurationError):
            Operator("")

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            Operator("x", cost_per_tuple=-1.0)

    def test_bad_timer_rejected(self):
        with pytest.raises(ConfigurationError):
            Operator("x", timer_interval=0.0)

    def test_on_tuple_abstract(self):
        with pytest.raises(NotImplementedError):
            Operator("x").on_tuple(Tuple(1, "k"), None)

    def test_merge_values_default_raises(self):
        with pytest.raises(NotImplementedError):
            Operator("x").merge_values(1, 2)

    def test_lambda_operator(self):
        harness = Harness(
            LambdaOperator("f", lambda tup, ctx: ctx.emit(tup.key, "out"))
        )
        harness.feed("k")
        assert harness.emitted == [("k", "out", 1, None)]


class TestStatelessOperators:
    def test_map(self):
        harness = Harness(MapOperator("m", lambda k, p: (k.upper(), p * 2)))
        harness.feed("a", 3, weight=5)
        assert harness.emitted == [("A", 6, 5, None)]

    def test_filter(self):
        harness = Harness(FilterOperator("f", lambda k, p: p > 2))
        harness.feed("a", 1)
        harness.feed("b", 5)
        assert harness.emitted == [("b", 5, 1, None)]

    def test_flat_map(self):
        harness = Harness(
            FlatMapOperator("fm", lambda k, p: [(c, None) for c in p])
        )
        harness.feed("s", "abc", weight=2)
        assert harness.emitted == [
            ("a", None, 2, None),
            ("b", None, 2, None),
            ("c", None, 2, None),
        ]


class TestKeyedCounter:
    def test_counts_weights(self):
        harness = Harness(KeyedCounter("c"))
        harness.feed("a", weight=2)
        harness.feed("a", weight=3)
        harness.feed("b")
        assert harness.state["a"] == 5
        assert harness.state["b"] == 1
        assert harness.emitted == []

    def test_merge_values(self):
        assert KeyedCounter("c").merge_values(2, 3) == 5


class TestKeyedReducer:
    def test_reduces_with_zero(self):
        harness = Harness(
            KeyedReducer(
                "r",
                reduce_fn=lambda acc, payload, weight: acc + payload * weight,
                zero=lambda: 0,
            )
        )
        harness.feed("a", 2, weight=3)
        harness.feed("a", 1)
        assert harness.state["a"] == 7


class TestWindowedKeyedCounter:
    def test_counts_by_event_time(self):
        op = WindowedKeyedCounter("w", window=10.0, grace=0.0)
        harness = Harness(op)
        harness.feed("a", created_at=1.0, weight=2)
        harness.feed("a", created_at=9.0)
        harness.feed("a", created_at=11.0)
        assert harness.state["a"] == {0: 3, 1: 1}

    def test_timer_flushes_closed_windows(self):
        op = WindowedKeyedCounter("w", window=10.0, grace=0.0)
        harness = Harness(op)
        harness.feed("a", created_at=1.0)
        harness.feed("b", created_at=12.0)
        harness.timer(now=20.0)
        assert ("a", (0, 1), 1, None) in harness.emitted
        assert ("b", (1, 1), 1, None) in harness.emitted
        assert "a" not in harness.state  # empty key cleaned up

    def test_grace_delays_flush(self):
        op = WindowedKeyedCounter("w", window=10.0, grace=5.0)
        harness = Harness(op)
        harness.feed("a", created_at=1.0)
        harness.timer(now=12.0)  # window 0 closed at 10, grace until 15
        assert harness.emitted == []
        harness.timer(now=16.0)
        assert harness.emitted == [("a", (0, 1), 1, None)]

    def test_merge_values_sums_windows(self):
        op = WindowedKeyedCounter("w")
        assert op.merge_values({0: 1, 1: 2}, {1: 3}) == {0: 1, 1: 5}

    def test_timer_interval_defaults_to_window(self):
        assert WindowedKeyedCounter("w", window=7.0).timer_interval == 7.0


class TestTopK:
    def test_counts_and_ranks(self):
        op = TopKOperator("t", k=2, emit_interval=30.0)
        harness = Harness(op)
        harness.feed("en", weight=10)
        harness.feed("de", weight=5)
        harness.feed("fr", weight=1)
        harness.timer(now=30.0)
        key, ranking, _weight, _to = harness.emitted[0]
        assert key == "topk"
        assert ranking == (("en", 10), ("de", 5))

    def test_merge_topk_takes_union(self):
        merged = merge_topk([(("en", 10), ("de", 5)), (("fr", 7),)], k=2)
        assert merged == [("en", 10), ("fr", 7)]

    def test_empty_state_emits_nothing(self):
        harness = Harness(TopKOperator("t"))
        harness.timer(now=30.0)
        assert harness.emitted == []


class TestOperatorContextEmitDefaults:
    def test_created_at_passthrough(self):
        captured = []

        def sink(key, payload, weight, created_at, to):
            captured.append(created_at)

        ctx = OperatorContext(None, sink, now=5.0)
        ctx.emit("k", created_at=2.5)
        assert captured == [2.5]
