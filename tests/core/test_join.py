"""Tests for the windowed stream-stream join."""

import pytest

from repro.core.join import (
    SIDE_LEFT,
    SIDE_RIGHT,
    SideTagger,
    WindowedJoinOperator,
    tag_left,
    tag_right,
)
from repro.core.operator import OperatorContext
from repro.core.state import KeyInterval, ProcessingState
from repro.core.tuples import Tuple, stable_hash
from repro.errors import ConfigurationError


class JoinHarness:
    def __init__(self, window=10.0, combine=None):
        self.operator = WindowedJoinOperator("join", window=window, combine=combine)
        self.state = self.operator.initial_state()
        self.emitted = []
        self._ts = 0

    def feed(self, key, payload, at=0.0, weight=1):
        self._ts += 1
        tup = Tuple(self._ts, key, payload, weight=weight, created_at=at, slot=0)
        ctx = OperatorContext(self.state, self._collect, now=at)
        self.operator.on_tuple(tup, ctx)

    def timer(self, now):
        ctx = OperatorContext(self.state, self._collect, now=now)
        self.operator.on_timer(ctx)

    def _collect(self, key, payload, weight, created_at, to):
        self.emitted.append((key, payload, weight))


class TestWindowedJoin:
    def test_matching_key_within_window_joins(self):
        harness = JoinHarness(window=10.0)
        harness.feed("k", tag_left("l1"), at=0.0)
        harness.feed("k", tag_right("r1"), at=5.0)
        assert harness.emitted == [("k", ("l1", "r1"), 1)]

    def test_order_of_sides_preserved(self):
        harness = JoinHarness(window=10.0)
        harness.feed("k", tag_right("r1"), at=0.0)
        harness.feed("k", tag_left("l1"), at=5.0)
        assert harness.emitted == [("k", ("l1", "r1"), 1)]

    def test_different_keys_do_not_join(self):
        harness = JoinHarness()
        harness.feed("a", tag_left("l1"), at=0.0)
        harness.feed("b", tag_right("r1"), at=1.0)
        assert harness.emitted == []

    def test_outside_window_does_not_join(self):
        harness = JoinHarness(window=10.0)
        harness.feed("k", tag_left("old"), at=0.0)
        harness.feed("k", tag_right("new"), at=15.0)
        assert harness.emitted == []

    def test_multiple_matches_fan_out(self):
        harness = JoinHarness(window=10.0)
        harness.feed("k", tag_left("l1"), at=0.0)
        harness.feed("k", tag_left("l2"), at=1.0)
        harness.feed("k", tag_right("r1"), at=2.0)
        assert sorted(p for _k, p, _w in harness.emitted) == [
            ("l1", "r1"),
            ("l2", "r1"),
        ]

    def test_custom_combine(self):
        harness = JoinHarness(combine=lambda l, r: l + r)
        harness.feed("k", tag_left(2), at=0.0)
        harness.feed("k", tag_right(3), at=1.0)
        assert harness.emitted == [("k", 5, 1)]

    def test_weight_of_probe_side_carries(self):
        harness = JoinHarness()
        harness.feed("k", tag_left("l"), at=0.0)
        harness.feed("k", tag_right("r"), at=1.0, weight=4)
        assert harness.emitted[0][2] == 4

    def test_lazy_pruning_on_probe(self):
        harness = JoinHarness(window=10.0)
        harness.feed("k", tag_left("old"), at=0.0)
        harness.feed("k", tag_right("probe"), at=20.0)
        assert harness.state["k"][SIDE_LEFT] == []

    def test_timer_prunes_and_cleans(self):
        harness = JoinHarness(window=10.0)
        harness.feed("k", tag_left("old"), at=0.0)
        harness.timer(now=100.0)
        assert "k" not in harness.state

    def test_bad_side_rejected(self):
        harness = JoinHarness()
        with pytest.raises(ConfigurationError):
            harness.feed("k", ("X", "oops"))

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedJoinOperator("j", window=0.0)

    def test_merge_values_for_scale_in(self):
        op = WindowedJoinOperator("j")
        left = {SIDE_LEFT: [(1.0, "a")], SIDE_RIGHT: []}
        right = {SIDE_LEFT: [(0.5, "b")], SIDE_RIGHT: [(2.0, "c")]}
        merged = op.merge_values(left, right)
        assert merged[SIDE_LEFT] == [(0.5, "b"), (1.0, "a")]
        assert merged[SIDE_RIGHT] == [(2.0, "c")]

    def test_state_partitionable_by_key(self):
        harness = JoinHarness()
        for i in range(20):
            harness.feed(f"k{i}", tag_left(i), at=0.0)
        parts = harness.state.partition(KeyInterval.full().split(3))
        assert sum(len(p) for p in parts) == 20


class TestSideTagger:
    def test_tags_payloads(self):
        tagger = SideTagger("t", SIDE_RIGHT)
        emitted = []
        ctx = OperatorContext(
            ProcessingState(), lambda k, p, w, c, to: emitted.append((k, p, w))
        )
        tagger.on_tuple(Tuple(1, "k", "v", weight=2, slot=0), ctx)
        assert emitted == [("k", (SIDE_RIGHT, "v"), 2)]

    def test_invalid_side_rejected(self):
        with pytest.raises(ConfigurationError):
            SideTagger("t", "middle")


class TestJoinEndToEnd:
    def test_join_through_runtime_with_recovery(self):
        """A two-source join query survives a failure of the join operator
        with exact results."""
        from repro.config import SystemConfig
        from repro.core.query import QueryGraph
        from repro.runtime.sink import RecordingCollector, SinkOperator
        from repro.runtime.source import SourceOperator
        from repro.runtime.system import StreamProcessingSystem
        from tests.conftest import ManualGenerator

        def build():
            graph = QueryGraph()
            graph.add_operator(SourceOperator("left_src"), source=True)
            graph.add_operator(SourceOperator("right_src"), source=True)
            graph.add_operator(SideTagger("tag_l", SIDE_LEFT))
            graph.add_operator(SideTagger("tag_r", SIDE_RIGHT))
            graph.add_operator(WindowedJoinOperator("join", window=30.0))
            collector = RecordingCollector()
            graph.add_operator(SinkOperator("sink", collector), sink=True)
            graph.connect("left_src", "tag_l")
            graph.connect("right_src", "tag_r")
            graph.connect("tag_l", "join")
            graph.connect("tag_r", "join")
            graph.connect("join", "sink")
            graph.validate()
            config = SystemConfig()
            config.scaling.enabled = False
            config.checkpoint.interval = 1.0
            config.checkpoint.stagger = False
            system = StreamProcessingSystem(config)
            left, right = ManualGenerator(), ManualGenerator()
            system.deploy(
                graph, generators={"left_src": left, "right_src": right}
            )
            return system, left, right, collector

        def drive(system, left, right, fail=False):
            for i in range(5):
                left.feed_at(1.0 + i, f"k{i}", f"l{i}")
            if fail:
                system.injector.fail_target_at(lambda: system.vm_of("join"), 7.0)
            for i in range(5):
                right.feed_at(12.0 + i, f"k{i}", f"r{i}")
            system.run(until=40.0)

        base_system, bl, br, base_collector = build()
        drive(base_system, bl, br)
        fail_system, fl, fr, fail_collector = build()
        drive(fail_system, fl, fr, fail=True)
        assert len(fail_system.metrics.events_of_kind("recovery_complete")) == 1

        def results(collector):
            return sorted((t.key, t.payload) for t in collector.tuples)

        assert results(base_collector) == results(fail_collector)
        assert len(base_collector.tuples) == 5  # every key joined once
