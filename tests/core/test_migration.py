"""Unit tests for the StateMover layer (planning, wire slicing) and the
state primitives fluid migration leans on (extract, shared adoption).

The copy-on-write lineage matters here: a chunk's value objects travel
snapshot → extract → ship → absorb *without copying*, so the frozen
pre-migration checkpoint, the in-flight chunk and the absorbing target
all alias the same containers.  Adoption must therefore never claim
private ownership — the regression tests at the bottom pin that down.
"""

from repro.config import MigrationConfig
from repro.core.checkpoint import Checkpoint
from repro.core.migration import StateMover, _slice_checkpoint
from repro.core.state import KeyInterval, ProcessingState
from repro.core.tuples import KEY_SPACE, stable_hash


def mover() -> StateMover:
    return StateMover(system=None)  # planning paths never touch the system


def state_with(n: int) -> ProcessingState:
    state = ProcessingState(positions={1: 100}, out_clock=7)
    for i in range(n):
        state[f"key-{i}"] = {0: i}
    return state


class TestChunkCount:
    def test_empty_transfer_is_one_message(self):
        assert mover().chunk_count(0, MigrationConfig(max_chunks=8)) == 1

    def test_default_config_is_all_at_once(self):
        assert mover().chunk_count(100_000, MigrationConfig()) == 1

    def test_never_more_chunks_than_entries(self):
        assert mover().chunk_count(3, MigrationConfig(max_chunks=8)) == 3

    def test_chunk_entries_targets_a_size(self):
        cfg = MigrationConfig(chunk_entries=10, max_chunks=100)
        assert mover().chunk_count(95, cfg) == 10  # ceil(95/10)

    def test_max_chunks_caps_chunk_entries(self):
        cfg = MigrationConfig(chunk_entries=10, max_chunks=4)
        assert mover().chunk_count(95, cfg) == 4


class TestPlanFluidChunks:
    def test_all_at_once_returns_the_range_unchanged(self):
        intervals = [KeyInterval.full()]
        groups = mover().plan_fluid_chunks(
            intervals, state_with(50), MigrationConfig()
        )
        assert groups == [intervals]

    def test_groups_tile_the_range_and_partition_the_entries(self):
        state = state_with(200)
        groups = mover().plan_fluid_chunks(
            [KeyInterval.full()], state, MigrationConfig(max_chunks=6)
        )
        assert 1 < len(groups) <= 6
        # Disjoint, sorted, full coverage.
        flat = [iv for group in groups for iv in group]
        flat.sort(key=lambda iv: iv.lo)
        assert flat[0].lo == 0 and flat[-1].hi == KEY_SPACE
        for lhs, rhs in zip(flat, flat[1:]):
            assert lhs.hi == rhs.lo
        # Every entry falls in exactly one group; the guided split keeps
        # the per-chunk entry counts roughly balanced.
        counts = []
        for group in groups:
            keys = [
                k
                for k in state.entries
                if any(stable_hash(k) in iv for iv in group)
            ]
            counts.append(len(keys))
        assert sum(counts) == len(state)
        assert min(counts) >= 1

    def test_sub_range_migration_only_cuts_the_owned_intervals(self):
        left, right = KeyInterval.full().split(2)
        state = state_with(100)
        groups = mover().plan_fluid_chunks(
            [left], state, MigrationConfig(max_chunks=4)
        )
        for group in groups:
            for iv in group:
                assert iv.lo >= left.lo and iv.hi <= left.hi


class TestSliceCheckpoint:
    def make_checkpoint(self, n: int) -> Checkpoint:
        return Checkpoint(
            op_name="counter",
            slot_uid=3,
            state=state_with(n),
            buffers={"down": object()},
            taken_at=1.0,
            seq=5,
        )

    def test_slices_partition_the_entries(self):
        ckpt = self.make_checkpoint(10)
        slices = _slice_checkpoint(ckpt, 3)
        assert [len(s.state) for s in slices] == [4, 3, 3]
        seen = set()
        for s in slices:
            assert not (seen & set(s.state.entries))
            seen |= set(s.state.entries)
        assert seen == set(ckpt.state.entries)

    def test_values_are_shared_not_copied(self):
        ckpt = self.make_checkpoint(6)
        slices = _slice_checkpoint(ckpt, 2)
        for s in slices:
            for key, value in s.state.entries.items():
                assert value is ckpt.state.entries[key]

    def test_buffers_ride_the_final_slice_only(self):
        ckpt = self.make_checkpoint(6)
        slices = _slice_checkpoint(ckpt, 3)
        assert [s.buffers for s in slices[:-1]] == [{}, {}]
        assert slices[-1].buffers is ckpt.buffers

    def test_positions_and_clock_ride_every_slice(self):
        ckpt = self.make_checkpoint(4)
        for s in _slice_checkpoint(ckpt, 2):
            assert s.state.positions == {1: 100}
            assert s.state.out_clock == 7
            assert (s.op_name, s.slot_uid, s.seq) == ("counter", 3, 5)

    def test_more_chunks_than_entries_clamps(self):
        ckpt = self.make_checkpoint(2)
        assert len(_slice_checkpoint(ckpt, 10)) == 2


class TestExtract:
    def test_extract_moves_exactly_the_in_range_entries(self):
        state = state_with(60)
        left, right = KeyInterval.full().split(2)
        taken = state.extract([left])
        for key in taken.entries:
            assert stable_hash(key) in left
        for key in state.entries:
            assert stable_hash(key) in right
        assert len(taken) + len(state) == 60
        assert taken.positions == {1: 100} and taken.out_clock == 7

    def test_extracted_keys_are_dirty_marked_as_deletions(self):
        state = state_with(40)
        state.enable_dirty_tracking()
        state.consume_dirty()
        taken = state.extract([KeyInterval.full()])
        assert state.consume_dirty() == set(taken.entries)


class TestSharedAdoption:
    """Regression: an absorbed chunk's values alias the frozen
    pre-migration checkpoint, so the target must copy on first mutation
    — a plain write would claim ownership and corrupt the rollback
    backups cut from that frozen state."""

    def test_adopted_value_mutation_does_not_reach_the_frozen_snapshot(self):
        live = ProcessingState()
        live["w1"] = {3: 1}
        frozen = live.snapshot()  # pre-migration checkpoint (CoW)
        chunk = live.extract([KeyInterval.full()])  # ship the chunk

        target = ProcessingState()
        for key, value in chunk.share_all().items():
            target.adopt(key, value)
        target["w1"][3] = 99  # in-place mutation at the target

        assert frozen.entries["w1"] == {3: 1}
        assert target.entries["w1"] == {3: 99}

    def test_reabsorbed_value_mutation_does_not_reach_the_frozen_snapshot(self):
        live = ProcessingState()
        live["w1"] = {3: 1}
        frozen = live.snapshot()
        chunk = live.extract([KeyInterval.full()])

        # Abort path: the source adopts the chunk back, then keeps
        # processing — its mutations must not leak into the backup.
        for key, value in chunk.share_all().items():
            live.adopt(key, value)
        live["w1"][3] = 42

        assert frozen.entries["w1"] == {3: 1}
        assert live.entries["w1"] == {3: 42}

    def test_plain_write_claims_ownership_but_adopt_does_not(self):
        state = ProcessingState()
        owned = {0: 1}
        state["mine"] = owned
        assert state["mine"] is owned  # private: no copy on access
        shared = {0: 2}
        state.adopt("theirs", shared)
        assert state["theirs"] is not shared  # shared: copied on access
        assert state["theirs"] == {0: 2}
