"""Tests for state partitioning and merging (Algorithm 2, scale in)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import Checkpoint
from repro.core.partition import (
    merge_checkpoints,
    partition_checkpoint,
    partition_processing_state,
    position_in_groups,
    split_interval_groups,
)
from repro.core.state import KeyInterval, OutputBuffer, ProcessingState
from repro.core.tuples import KEY_SPACE, Tuple, stable_hash
from repro.errors import PartitionError


class TestSplitIntervalGroups:
    def test_single_interval_even_split(self):
        groups = split_interval_groups([KeyInterval.full()], 4)
        assert len(groups) == 4
        assert all(len(g) == 1 for g in groups)
        total = sum(interval.width for g in groups for interval in g)
        assert total == KEY_SPACE

    def test_guided_split_used_for_single_interval(self):
        positions = list(range(0, 1000))
        groups = split_interval_groups([KeyInterval(0, 10_000)], 2, positions)
        assert groups[0][0].hi <= 1000

    def test_multiple_intervals_split_proportionally(self):
        owned = [KeyInterval(0, 100), KeyInterval(200, 300)]
        groups = split_interval_groups(owned, 2)
        widths = [sum(i.width for i in g) for g in groups]
        assert widths == [100, 100]
        # groups tile the original intervals exactly
        tiles = sorted((i.lo, i.hi) for g in groups for i in g)
        assert tiles[0][0] == 0 and tiles[-1][1] == 300

    def test_empty_owned_rejected(self):
        with pytest.raises(PartitionError):
            split_interval_groups([], 2)

    def test_zero_parts_rejected(self):
        with pytest.raises(PartitionError):
            split_interval_groups([KeyInterval.full()], 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=6, unique=True),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_groups_tile_owned_width(self, starts, parts):
        owned = [KeyInterval(s * 1000, s * 1000 + 500) for s in sorted(starts)]
        groups = split_interval_groups(owned, parts)
        assert len(groups) == parts
        assert all(group for group in groups)
        total = sum(i.width for g in groups for i in g)
        assert total == sum(i.width for i in owned)
        # no overlaps
        spans = sorted((i.lo, i.hi) for g in groups for i in g)
        for (l0, h0), (l1, _h1) in zip(spans, spans[1:]):
            assert h0 <= l1

    def test_guided_split_honoured_for_multiple_intervals(self):
        # Regression: multi-interval owners (left over from scale-in
        # merges) used to silently drop guide_positions and fall back to
        # the width split, so a skewed slot kept splitting at dead-even
        # boundaries.  All observed keys live in the second interval, so
        # the guided cut must land inside it — the first group takes all
        # of [0, 100) plus the second interval's light prefix.
        owned = [KeyInterval(0, 100), KeyInterval(200, 300)]
        positions = list(range(250, 300))
        groups = split_interval_groups(owned, 2, positions)
        first_width = sum(i.width for i in groups[0])
        assert first_width > 100  # strictly more than the width split's 100
        # The cut sits at the guide's median, not the width midpoint.
        assert groups[1][0].lo >= 250

    def test_guided_split_falls_back_when_guide_too_sparse(self):
        owned = [KeyInterval(0, 100), KeyInterval(200, 300)]
        # One usable position for two parts: fall back to the width split.
        groups = split_interval_groups(owned, 2, [250])
        widths = [sum(i.width for i in g) for g in groups]
        assert widths == [100, 100]

    def test_guided_split_ignores_positions_outside_owned(self):
        owned = [KeyInterval(0, 100), KeyInterval(200, 300)]
        # Positions in the gap [100, 200) are not owned; only the two
        # usable ones remain, enough for 2 parts.
        groups = split_interval_groups(owned, 2, [150, 160, 170, 20, 80])
        total = sum(i.width for g in groups for i in g)
        assert total == 200
        assert all(group for group in groups)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=2,
            max_size=5,
            unique=True,
        ),
        st.integers(min_value=2, max_value=4),
        st.lists(st.integers(min_value=0, max_value=10_000), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_guided_multi_interval_split_upholds_tiling(
        self, starts, parts, positions
    ):
        """Whatever the guide, a multi-interval split still tiles owned:
        ``parts`` non-empty disjoint groups of unchanged total width."""
        owned = [KeyInterval(s * 1000, s * 1000 + 500) for s in sorted(starts)]
        groups = split_interval_groups(owned, parts, positions)
        assert len(groups) == parts
        assert all(group for group in groups)
        total = sum(i.width for g in groups for i in g)
        assert total == sum(i.width for i in owned)
        spans = sorted((i.lo, i.hi) for g in groups for i in g)
        for (l0, h0), (l1, _h1) in zip(spans, spans[1:]):
            assert h0 <= l1
        # Every emitted interval is inside some originally owned interval.
        for _g in groups:
            for i in _g:
                assert any(i.lo >= o.lo and i.hi <= o.hi for o in owned)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        st.integers(min_value=2, max_value=3),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_guided_multi_interval_split_balances_entries(
        self, starts, parts, data
    ):
        """With a dense in-range guide, every group receives at least one
        guide position — the load-balance property the guide exists for."""
        owned = [KeyInterval(s * 1000, s * 1000 + 500) for s in sorted(starts)]
        positions = [
            data.draw(
                st.integers(min_value=iv.lo, max_value=iv.hi - 1),
                label=f"pos{j}",
            )
            for iv in owned
            for j in range(6)
        ]
        groups = split_interval_groups(owned, parts, positions)
        counts = [
            sum(
                1
                for p in positions
                if any(p in i for i in group)
            )
            for group in groups
        ]
        # Quantile cuts: no group is starved of observed keys unless the
        # guide itself collapsed (duplicate cut positions).
        if len(set(positions)) >= parts:
            assert all(count >= 1 for count in counts)

    def test_position_in_groups(self):
        groups = split_interval_groups([KeyInterval(0, 100)], 2)
        assert position_in_groups(10, groups) == 0
        assert position_in_groups(60, groups) == 1
        with pytest.raises(PartitionError):
            position_in_groups(500, groups)


class TestPartitionCheckpoint:
    def make(self, n_entries=30, buffered=5):
        state = ProcessingState(
            {f"key{i}": i for i in range(n_entries)}, positions={0: 7}, out_clock=9
        )
        buf = OutputBuffer()
        for ts in range(buffered):
            buf.append(99, Tuple(ts + 1, "k", slot=1))
        return Checkpoint("op", 1, state, {"down": buf}, taken_at=2.0, seq=4)

    def test_state_split_and_tau_copied(self):
        ckpt = self.make()
        groups = split_interval_groups([KeyInterval.full()], 3)
        parts = partition_checkpoint(ckpt, groups, [10, 11, 12])
        assert [p.slot_uid for p in parts] == [10, 11, 12]
        assert sum(len(p.state) for p in parts) == 30
        for part in parts:
            assert part.positions == {0: 7}
            assert part.out_clock == 9
            assert part.seq == 4

    def test_buffers_go_to_first_partition_only(self):
        ckpt = self.make(buffered=5)
        groups = split_interval_groups([KeyInterval.full()], 2)
        first, second = partition_checkpoint(ckpt, groups, [10, 11])
        assert first.buffers["down"].tuple_count() == 5
        assert not second.buffers

    def test_slot_count_mismatch_rejected(self):
        ckpt = self.make()
        groups = split_interval_groups([KeyInterval.full()], 2)
        with pytest.raises(PartitionError):
            partition_checkpoint(ckpt, groups, [10])

    def test_partition_respects_group_membership(self):
        ckpt = self.make(n_entries=100)
        groups = split_interval_groups([KeyInterval.full()], 4)
        parts = partition_checkpoint(ckpt, groups, [1, 2, 3, 4])
        for part, group in zip(parts, groups):
            for key in part.state.keys():
                assert any(stable_hash(key) in interval for interval in group)


class TestMergeCheckpoints:
    def test_merge_reverses_partition(self):
        state = ProcessingState({f"k{i}": i for i in range(20)}, positions={0: 3})
        ckpt = Checkpoint("op", 1, state, {}, seq=2)
        groups = split_interval_groups([KeyInterval.full()], 2)
        left, right = partition_checkpoint(ckpt, groups, [10, 11])
        merged = merge_checkpoints(left, right)
        assert merged.state.entries == state.entries
        assert merged.positions == {0: 3}

    def test_merge_different_ops_rejected(self):
        a = Checkpoint("op_a", 1, ProcessingState())
        b = Checkpoint("op_b", 2, ProcessingState())
        with pytest.raises(PartitionError):
            merge_checkpoints(a, b)

    def test_merge_combines_buffers(self):
        buf_a = OutputBuffer()
        buf_a.append(9, Tuple(1, "x", slot=1))
        buf_b = OutputBuffer()
        buf_b.append(9, Tuple(2, "y", slot=2))
        a = Checkpoint("op", 1, ProcessingState({"a": 1}), {"d": buf_a}, seq=1)
        b = Checkpoint("op", 2, ProcessingState({"b": 2}), {"d": buf_b}, seq=3)
        merged = merge_checkpoints(a, b)
        assert merged.buffers["d"].tuple_count() == 2
        assert merged.seq == 3

    @given(
        st.dictionaries(st.text(min_size=1, max_size=6), st.integers(), max_size=30),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_then_merge_roundtrip(self, entries, parts):
        """partition followed by pairwise merge restores the original θ."""
        state = ProcessingState(entries, positions={1: 4}, out_clock=2)
        groups = split_interval_groups([KeyInterval.full()], parts)
        pieces = partition_processing_state(state, groups)
        merged = pieces[0]
        for piece in pieces[1:]:
            merged = merged.merge(piece)
        assert merged.entries == entries
        assert merged.positions == {1: 4}
