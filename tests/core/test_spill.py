"""Tests for state spilling and external persistence (§3.3 extensions)."""

import pytest

from repro.core.spill import ExternalStateStore, SpillableState
from repro.core.state import KeyInterval
from repro.errors import StateError


class TestSpillableState:
    def test_spills_over_hot_limit(self):
        state = SpillableState(max_hot_entries=3)
        for i in range(5):
            state[f"k{i}"] = i
        assert state.hot_entries == 3
        assert state.spilled_entries == 2
        assert len(state) == 5

    def test_lru_entries_spill_first(self):
        state = SpillableState(max_hot_entries=2)
        state["a"] = 1
        state["b"] = 2
        _ = state["a"]  # touch a; b becomes the LRU entry
        state["c"] = 3
        assert "b" in state._spilled

    def test_read_faults_entry_back(self):
        state = SpillableState(max_hot_entries=2)
        for key in "abc":
            state[key] = key
        spilled_key = next(iter(state._spilled))
        assert state[spilled_key] == spilled_key
        assert state.fault_count == 1

    def test_contains_and_get_cover_both_tiers(self):
        state = SpillableState(max_hot_entries=1)
        state["a"] = 1
        state["b"] = 2
        assert "a" in state and "b" in state
        assert state.get("a") == 1
        assert state.get("missing", 9) == 9

    def test_setdefault_and_pop(self):
        state = SpillableState(max_hot_entries=1)
        state["a"] = 1
        state["b"] = 2  # spills a
        assert state.setdefault("a", 99) == 1
        assert state.pop("b") == 2
        assert len(state) == 1

    def test_io_cost_charged(self):
        charged = []
        state = SpillableState(
            max_hot_entries=2, io_seconds_per_entry=1e-3, io_cost=charged.append
        )
        for i in range(4):
            state[f"k{i}"] = i
        assert sum(charged) == pytest.approx(2e-3)

    def test_manual_spill(self):
        state = SpillableState(max_hot_entries=100)
        for i in range(10):
            state[f"k{i}"] = i
        moved = state.spill(4)
        assert moved == 4
        assert state.spilled_entries == 4

    def test_snapshot_flattens_tiers(self):
        state = SpillableState(max_hot_entries=2, positions={1: 5}, out_clock=3)
        for i in range(5):
            state[f"k{i}"] = i
        snap = state.snapshot()
        assert len(snap) == 5
        assert snap.positions == {1: 5}
        assert snap.out_clock == 3
        # Snapshot is isolated and a plain ProcessingState (partitionable).
        parts = snap.partition(KeyInterval.full().split(2))
        assert sum(len(p) for p in parts) == 5

    def test_estimated_bytes_covers_both_tiers(self):
        state = SpillableState(max_hot_entries=1)
        state["a"] = 1
        state["b"] = 2
        assert state.estimated_bytes(10.0) == 20.0

    def test_bad_limit_rejected(self):
        with pytest.raises(StateError):
            SpillableState(max_hot_entries=0)

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            SpillableState()["missing"]


class TestSpillableStateInOperator:
    def test_counter_with_spillable_state_end_to_end(self):
        """A stateful operator backed by SpillableState works through the
        full runtime, including checkpoint-based recovery."""
        from repro.core.operators import KeyedCounter
        from tests.conftest import small_system

        class SpillingCounter(KeyedCounter):
            def initial_state(self):
                return SpillableState(max_hot_entries=5)

        system, gen, _col = small_system(checkpoint_interval=1.0)
        # Swap the counter operator for the spilling variant post-hoc is
        # invasive; instead drive a fresh deployment.
        from repro.config import SystemConfig
        from repro.core.query import QueryGraph
        from repro.runtime.sink import SinkOperator
        from repro.runtime.source import SourceOperator
        from repro.runtime.system import StreamProcessingSystem
        from tests.conftest import ManualGenerator

        graph = QueryGraph()
        graph.add_operator(SourceOperator("source"), source=True)
        graph.add_operator(SpillingCounter("counter", cost_per_tuple=1e-4))
        graph.add_operator(SinkOperator("sink"), sink=True)
        graph.chain("source", "counter", "sink")
        config = SystemConfig()
        config.scaling.enabled = False
        config.checkpoint.stagger = False
        config.checkpoint.interval = 1.0
        sps = StreamProcessingSystem(config)
        generator = ManualGenerator()
        sps.deploy(graph, generators={"source": generator})
        for i in range(20):
            generator.feed(f"k{i}")
        sps.run(until=3.0)
        counter = sps.instances_of("counter")[0]
        assert counter.state.spilled_entries > 0
        # Kill and recover: the checkpoint covered both tiers.
        sps.injector.fail_target_at(lambda: sps.vm_of("counter"), 4.0)
        sps.run(until=20.0)
        restored = sps.instances_of("counter")[0]
        assert all(restored.state[f"k{i}"] == 1 for i in range(20))


class TestExternalStateStore:
    def test_write_through_and_lookup(self):
        store = ExternalStateStore()
        store.persist("op", "k", {"v": 1})
        assert store.lookup("op", "k") == {"v": 1}
        assert store.lookup("op", "missing") is None
        assert len(store) == 1

    def test_values_copied_on_persist(self):
        store = ExternalStateStore()
        value = {"v": 1}
        store.persist("op", "k", value)
        value["v"] = 2
        assert store.lookup("op", "k") == {"v": 1}

    def test_restore_all_filters_by_operator(self):
        store = ExternalStateStore()
        store.persist("a", "k1", 1)
        store.persist("a", "k2", 2)
        store.persist("b", "k1", 3)
        assert store.restore_all("a") == {"k1": 1, "k2": 2}

    def test_write_cost_charged(self):
        charged = []
        store = ExternalStateStore(
            write_seconds_per_entry=1e-4, write_cost=charged.append
        )
        store.persist("op", "k", 1)
        assert charged == [1e-4]
