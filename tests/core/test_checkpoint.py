"""Tests for checkpoints and the backup store (Algorithm 1 structures)."""

import pytest

from repro.core.checkpoint import BackupStore, Checkpoint
from repro.core.state import OutputBuffer, ProcessingState
from repro.core.tuples import Tuple
from repro.errors import CheckpointError


def make_checkpoint(slot_uid=1, seq=1, entries=None, buffered=0):
    state = ProcessingState(entries or {"a": 1}, positions={0: 10}, out_clock=5)
    buffers = {}
    if buffered:
        buf = OutputBuffer()
        for ts in range(buffered):
            buf.append(9, Tuple(ts + 1, "k", slot=slot_uid))
        buffers["down"] = buf
    return Checkpoint("op", slot_uid, state, buffers, taken_at=3.0, seq=seq)


class TestCheckpoint:
    def test_positions_exposed(self):
        ckpt = make_checkpoint()
        assert ckpt.positions == {0: 10}
        assert ckpt.out_clock == 5

    def test_size_includes_buffers(self):
        plain = make_checkpoint(buffered=0)
        buffered = make_checkpoint(buffered=10)
        assert buffered.size_bytes(64, 64) == plain.size_bytes(64, 64) + 640

    def test_entry_count(self):
        assert make_checkpoint(entries={"a": 1, "b": 2}).entry_count() == 2


class TestBackupStore:
    def test_store_and_retrieve(self):
        store = BackupStore()
        ckpt = make_checkpoint()
        store.store(ckpt)
        assert store.retrieve(1) is ckpt
        assert store.has(1)
        assert len(store) == 1

    def test_newer_seq_replaces(self):
        store = BackupStore()
        store.store(make_checkpoint(seq=1))
        newer = make_checkpoint(seq=2)
        store.store(newer)
        assert store.retrieve(1) is newer

    def test_stale_seq_rejected(self):
        store = BackupStore()
        store.store(make_checkpoint(seq=5))
        with pytest.raises(CheckpointError):
            store.store(make_checkpoint(seq=3))

    def test_missing_slot_raises(self):
        with pytest.raises(CheckpointError):
            BackupStore().retrieve(42)

    def test_delete_is_idempotent(self):
        store = BackupStore()
        store.store(make_checkpoint())
        store.delete(1)
        store.delete(1)
        assert not store.has(1)

    def test_owners(self):
        store = BackupStore()
        store.store(make_checkpoint(slot_uid=1))
        store.store(make_checkpoint(slot_uid=2))
        assert sorted(store.owners()) == [1, 2]

    def test_separate_slots_independent(self):
        store = BackupStore()
        store.store(make_checkpoint(slot_uid=1, seq=5))
        store.store(make_checkpoint(slot_uid=2, seq=1))
        assert store.retrieve(2).seq == 1
