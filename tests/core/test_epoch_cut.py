"""The EpochCut descriptor and the unified Checkpointer seam."""

import inspect
import random
import warnings

import pytest

from repro.core.backend import (
    ExternalBackend,
    MemoryBackend,
    SpillBackend,
    StateBackend,
)
from repro.core.checkpoint import (
    Checkpoint,
    EpochCut,
    RestorePlan,
    as_checkpoint,
    materialize_increment,
)
from repro.core.state import ProcessingState


def make_checkpoint(entries=None, seq=4):
    return Checkpoint(
        "op", 7, ProcessingState(entries or {"a": 1}, {0: 3}, 2), seq=seq
    )


class TestEpochCutDescriptor:
    def test_wraps_and_delegates(self):
        ckpt = make_checkpoint()
        cut = EpochCut(ckpt, epoch=9, fence_epoch=2)
        assert cut.checkpoint is ckpt
        assert cut.epoch == 9
        assert cut.fence_epoch == 2
        assert cut.op_name == "op"
        assert cut.slot_uid == 7
        assert cut.state.entries == {"a": 1}
        assert cut.positions == {0: 3}
        assert cut.out_clock == 2
        assert cut.seq == 4
        assert not cut.incremental
        assert cut.fence_floor == cut.out_clock

    def test_size_delegates_to_checkpoint(self):
        ckpt = make_checkpoint(entries={"a": 1, "b": 2})
        cut = EpochCut(ckpt)
        assert cut.entry_count() == ckpt.entry_count()
        assert cut.size_bytes(64.0, 64.0) == ckpt.size_bytes(64.0, 64.0)

    def test_legacy_keyword_construction_warns_and_builds(self):
        with pytest.warns(DeprecationWarning):
            cut = EpochCut(
                op_name="op", slot_uid=7, state=ProcessingState({"a": 1}), seq=3
            )
        assert isinstance(cut.checkpoint, Checkpoint)
        assert cut.op_name == "op"
        assert cut.slot_uid == 7
        assert cut.seq == 3
        assert cut.epoch == 0

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError):
            EpochCut(op_name="op", slot_uid=7, state=ProcessingState(), bogus=1)

    def test_checkpoint_plus_legacy_fields_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                EpochCut(make_checkpoint(), op_name="op")

    def test_empty_construction_rejected(self):
        with pytest.raises(TypeError):
            EpochCut()

    def test_as_checkpoint_unwraps(self):
        ckpt = make_checkpoint()
        assert as_checkpoint(EpochCut(ckpt)) is ckpt
        assert as_checkpoint(ckpt) is ckpt

    def test_restore_plan_fence_floor(self):
        plan = RestorePlan(slot_uid=7, checkpoint=make_checkpoint())
        assert plan.fence_floor == 2
        assert not plan.external
        empty = RestorePlan(slot_uid=7, checkpoint=None)
        assert empty.fence_floor == 0


class TestBackendOnCheckpointConformance:
    """Every backend consumes the same EpochCut-shaped hook."""

    def test_signature_unified_across_backends(self):
        expected = list(
            inspect.signature(StateBackend.on_checkpoint).parameters
        )
        for cls in (MemoryBackend, SpillBackend, ExternalBackend):
            assert (
                list(inspect.signature(cls.on_checkpoint).parameters)
                == expected
            ), cls.__name__

    def test_memory_backend_hook_is_a_noop(self):
        MemoryBackend().on_checkpoint(EpochCut(make_checkpoint(), epoch=3))

    def test_external_backend_consumes_epoch_cut(self):
        from repro.config import StateBackendConfig
        from repro.core.spill import ExternalStateStore

        store = ExternalStateStore()
        backend = ExternalBackend(
            StateBackendConfig(), store, "op", 7, io_cost=None
        )
        backend.on_checkpoint(EpochCut(make_checkpoint(), epoch=5))
        meta = store.load_meta("op", 7)
        assert meta is not None


class TestDeltaComposition:
    """base + deltas == full, over random write/delete sequences."""

    def _delta_from(self, state, seq):
        touched = state.consume_dirty()
        entries, deleted = {}, set()
        for key in touched:
            if key in state.entries:
                entries[key] = state.entries[key]
            else:
                deleted.add(key)
        return Checkpoint(
            "op",
            7,
            ProcessingState(entries, {0: seq}, seq),
            seq=seq,
            incremental=True,
            base_seq=seq - 1,
            deleted_keys=frozenset(deleted),
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_base_plus_deltas_equal_full(self, seed):
        rng = random.Random(seed)
        keys = [f"k{i}" for i in range(15)]
        state = ProcessingState()
        state.enable_dirty_tracking()
        for _ in range(rng.randint(1, 25)):
            state[rng.choice(keys)] = rng.randint(0, 99)
        state.consume_dirty()
        materialized = Checkpoint(
            "op", 7, ProcessingState(dict(state.entries), {0: 1}, 1), seq=1
        )
        seq = 1
        for _ in range(rng.randint(1, 5)):
            for _ in range(rng.randint(0, 12)):
                if state.entries and rng.random() < 0.3:
                    state.pop(rng.choice(sorted(state.entries)))
                else:
                    state[rng.choice(keys)] = rng.randint(0, 99)
            seq += 1
            materialized = materialize_increment(
                materialized, self._delta_from(state, seq)
            )
        assert materialized.state.entries == dict(state.entries)
        assert not materialized.incremental
