"""Tests for key intervals, routing state, processing state and buffers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import KeyInterval, OutputBuffer, ProcessingState, RoutingState
from repro.core.tuples import KEY_SPACE, Tuple, stable_hash
from repro.errors import KeySpaceError, PartitionError, StateError


class TestKeyInterval:
    def test_contains(self):
        interval = KeyInterval(10, 20)
        assert 10 in interval
        assert 19 in interval
        assert 20 not in interval
        assert 9 not in interval

    def test_invalid_bounds_rejected(self):
        with pytest.raises(KeySpaceError):
            KeyInterval(10, 10)
        with pytest.raises(KeySpaceError):
            KeyInterval(-1, 5)
        with pytest.raises(KeySpaceError):
            KeyInterval(0, KEY_SPACE + 1)

    def test_full_covers_space(self):
        full = KeyInterval.full()
        assert full.lo == 0 and full.hi == KEY_SPACE

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_split_tiles_interval(self, parts):
        interval = KeyInterval(100, 10_000)
        pieces = interval.split(parts)
        assert len(pieces) == parts
        assert pieces[0].lo == interval.lo
        assert pieces[-1].hi == interval.hi
        for left, right in zip(pieces, pieces[1:]):
            assert left.hi == right.lo

    def test_split_too_many_parts_rejected(self):
        with pytest.raises(PartitionError):
            KeyInterval(0, 2).split(3)

    def test_split_by_positions_balances_load(self):
        interval = KeyInterval(0, 1000)
        # All observed keys in [0, 100): the cut should land inside there.
        positions = list(range(0, 100))
        left, right = interval.split_by_positions(2, positions)
        assert left.hi <= 100
        assert left.hi > 0

    def test_split_by_positions_falls_back_when_sparse(self):
        interval = KeyInterval(0, 1000)
        pieces = interval.split_by_positions(4, [5])
        assert [p.width for p in pieces] == [250, 250, 250, 250]

    def test_split_by_positions_duplicate_cuts_do_not_collapse(self):
        # A hot key observed many times yields identical cut candidates;
        # every resulting interval must still be non-empty and tile.
        interval = KeyInterval(0, 1000)
        pieces = interval.split_by_positions(4, [50] * 100)
        assert len(pieces) == 4
        assert pieces[0].lo == 0 and pieces[-1].hi == 1000
        for left, right in zip(pieces, pieces[1:]):
            assert left.hi == right.lo
        assert all(p.width >= 1 for p in pieces)
        assert pieces[0].hi == 50  # the cut still lands at the hot key

    def test_split_by_positions_all_positions_outside(self):
        # Guide positions from other partitions' keys are ignored; with
        # nothing usable the split falls back to even widths.
        interval = KeyInterval(100, 200)
        pieces = interval.split_by_positions(2, [0, 5, 99, 200, 1000])
        assert [p.width for p in pieces] == [50, 50]

    def test_split_by_positions_parts_equal_width(self):
        # Splitting an interval into exactly width-many unit intervals.
        interval = KeyInterval(0, 4)
        pieces = interval.split_by_positions(4, [0, 1, 2, 3])
        assert [p.width for p in pieces] == [1, 1, 1, 1]
        assert pieces[0].lo == 0 and pieces[-1].hi == 4

    def test_split_by_positions_hot_key_at_upper_bound_falls_back(self):
        # Duplicate-cut bumping would push a bound past hi; the split
        # must fall back to even widths instead of failing.
        interval = KeyInterval(0, 1000)
        pieces = interval.split_by_positions(3, [999] * 10)
        assert len(pieces) == 3
        assert sum(p.width for p in pieces) == 1000

    def test_merge_adjacent(self):
        merged = KeyInterval(0, 10).merge(KeyInterval(10, 30))
        assert merged == KeyInterval(0, 30)
        merged = KeyInterval(10, 30).merge(KeyInterval(0, 10))
        assert merged == KeyInterval(0, 30)

    def test_merge_non_adjacent_rejected(self):
        with pytest.raises(KeySpaceError):
            KeyInterval(0, 10).merge(KeyInterval(20, 30))

    def test_contains_key(self):
        interval = KeyInterval.full()
        assert interval.contains_key("anything")


class TestRoutingState:
    def test_single_routes_everything(self):
        routing = RoutingState.single(7)
        assert routing.route_key("a") == 7
        assert routing.route_position(0) == 7
        assert routing.route_position(KEY_SPACE - 1) == 7

    def test_gap_rejected(self):
        with pytest.raises(KeySpaceError):
            RoutingState([(KeyInterval(0, 10), 1), (KeyInterval(20, KEY_SPACE), 2)])

    def test_overlap_rejected(self):
        with pytest.raises(KeySpaceError):
            RoutingState([(KeyInterval(0, 20), 1), (KeyInterval(10, KEY_SPACE), 2)])

    def test_incomplete_coverage_rejected(self):
        with pytest.raises(KeySpaceError):
            RoutingState([(KeyInterval(0, 10), 1)])

    def test_route_position_binary_search(self):
        half = KEY_SPACE // 2
        routing = RoutingState(
            [(KeyInterval(0, half), 1), (KeyInterval(half, KEY_SPACE), 2)]
        )
        assert routing.route_position(0) == 1
        assert routing.route_position(half - 1) == 1
        assert routing.route_position(half) == 2
        assert routing.route_position(KEY_SPACE - 1) == 2

    def test_replace_target_splits(self):
        routing = RoutingState.single(1)
        pieces = KeyInterval.full().split(2)
        updated = routing.replace_target(1, [(pieces[0], 2), (pieces[1], 3)])
        assert updated.route_position(0) == 2
        assert updated.route_position(KEY_SPACE - 1) == 3
        assert 1 not in updated.targets

    def test_replace_target_repeated_splits(self):
        # Scale out the busiest partition four times in a row, as the
        # detector does; the routing table must stay a valid tiling and
        # keep routing every position to a live target.
        routing = RoutingState.single(0)
        next_uid = 1
        for _round in range(4):
            target = routing.targets[0]
            owned = routing.intervals_of(target)
            replacements = []
            for interval in owned:
                if interval.width >= 2:
                    left, right = interval.split(2)
                    replacements.append((left, next_uid))
                    replacements.append((right, next_uid + 1))
                else:
                    replacements.append((interval, next_uid))
            routing = routing.replace_target(target, replacements)
            next_uid += 2
            assert target not in routing.targets
        # Full coverage survives every round.
        entries = list(routing)
        assert entries[0][0].lo == 0
        assert entries[-1][0].hi == KEY_SPACE
        for (left_iv, _), (right_iv, _) in zip(entries, entries[1:]):
            assert left_iv.hi == right_iv.lo
        for position in [0, 1, KEY_SPACE // 3, KEY_SPACE // 2, KEY_SPACE - 1]:
            assert routing.route_position(position) in routing.targets

    def test_replace_target_width_mismatch_rejected(self):
        routing = RoutingState.single(1)
        with pytest.raises(KeySpaceError):
            routing.replace_target(1, [(KeyInterval(0, 5), 2)])

    def test_replace_unknown_target_rejected(self):
        with pytest.raises(KeySpaceError):
            RoutingState.single(1).replace_target(9, [])

    def test_reassign(self):
        routing = RoutingState.single(1).reassign(1, 5)
        assert routing.route_key("x") == 5

    def test_merge_targets_coalesces(self):
        pieces = KeyInterval.full().split(2)
        routing = RoutingState([(pieces[0], 1), (pieces[1], 2)])
        merged = routing.merge_targets(survivor=1, removed=2)
        assert merged.targets == [1]
        assert len(merged) == 1

    def test_intervals_of(self):
        pieces = KeyInterval.full().split(3)
        routing = RoutingState(
            [(pieces[0], 1), (pieces[1], 2), (pieces[2], 1)]
        )
        assert len(routing.intervals_of(1)) == 2
        assert len(routing.intervals_of(2)) == 1

    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=50, deadline=None)
    def test_every_key_routes_somewhere(self, parts, data):
        pieces = KeyInterval.full().split(parts)
        routing = RoutingState([(piece, i) for i, piece in enumerate(pieces)])
        key = data.draw(st.text(max_size=10))
        target = routing.route_key(key)
        assert 0 <= target < parts
        position = stable_hash(key)
        assert position in pieces[target]


class TestProcessingState:
    def test_mapping_interface(self):
        state = ProcessingState()
        state["a"] = 1
        assert "a" in state
        assert state["a"] == 1
        assert state.get("b", 5) == 5
        assert state.setdefault("c", 3) == 3
        assert state.pop("c") == 3
        assert len(state) == 1

    def test_advance_tracks_max(self):
        state = ProcessingState()
        state.advance(7, 5)
        state.advance(7, 3)
        state.advance(8, 1)
        assert state.positions == {7: 5, 8: 1}

    def test_snapshot_is_isolated(self):
        state = ProcessingState({"a": {"x": 1}}, positions={1: 5}, out_clock=9)
        snap = state.snapshot()
        state["a"]["x"] = 2
        state["b"] = 1
        state.advance(1, 10)
        assert snap["a"] == {"x": 1}
        assert "b" not in snap
        assert snap.positions == {1: 5}
        assert snap.out_clock == 9

    def test_partition_by_interval(self):
        state = ProcessingState({f"k{i}": i for i in range(50)}, positions={1: 3})
        intervals = KeyInterval.full().split(3)
        parts = state.partition(intervals)
        assert sum(len(p) for p in parts) == 50
        for part in parts:
            assert part.positions == {1: 3}

    def test_merge_disjoint(self):
        left = ProcessingState({"a": 1}, positions={1: 5}, out_clock=2)
        right = ProcessingState({"b": 2}, positions={1: 9, 2: 1}, out_clock=7)
        merged = left.merge(right)
        assert merged.entries == {"a": 1, "b": 2}
        assert merged.positions == {1: 9, 2: 1}
        assert merged.out_clock == 7

    def test_merge_overlap_needs_function(self):
        left = ProcessingState({"a": 1})
        right = ProcessingState({"a": 2})
        with pytest.raises(StateError):
            left.merge(right)
        merged = left.merge(right, merge_value=lambda x, y: x + y)
        assert merged["a"] == 3

    def test_estimated_bytes(self):
        state = ProcessingState({"a": 1, "b": 2})
        assert state.estimated_bytes(100.0) == 200.0

    @given(
        st.dictionaries(st.text(min_size=1, max_size=8), st.integers(), max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_is_a_partition(self, entries, parts):
        """Partitioning: disjoint, exhaustive, and re-mergeable (Alg. 2)."""
        state = ProcessingState(entries, positions={0: 1})
        intervals = KeyInterval.full().split(parts)
        pieces = state.partition(intervals)
        seen = {}
        for piece, interval in zip(pieces, intervals):
            for key, value in piece.items():
                assert key not in seen  # disjoint
                assert stable_hash(key) in interval  # respects intervals
                seen[key] = value
        assert seen == entries  # exhaustive


class TestCopyOnWriteSnapshots:
    """snapshot() defers value copies to first mutation (data-plane fast
    path): both sides may touch shared containers in any order and never
    observe each other's writes."""

    def test_snapshot_shares_values_until_first_touch(self):
        state = ProcessingState({"a": {"x": 1}})
        snap = state.snapshot()
        # Shared until someone reaches a container through a mutating
        # accessor — that is the whole point of the CoW fast path.
        assert snap.entries["a"] is state.entries["a"]
        _ = state["a"]
        assert snap.entries["a"] is not state.entries["a"]

    def test_mutating_snapshot_does_not_leak_into_live_state(self):
        state = ProcessingState({"a": {"x": 1}, "b": [1, 2]})
        snap = state.snapshot()
        snap["a"]["x"] = 99
        snap["b"].append(3)
        assert state["a"] == {"x": 1}
        assert state["b"] == [1, 2]

    def test_two_snapshots_and_live_writes_stay_isolated(self):
        state = ProcessingState({"a": {"n": 0}})
        first = state.snapshot()
        state["a"]["n"] = 1
        second = state.snapshot()
        state["a"]["n"] = 2
        assert first["a"] == {"n": 0}
        assert second["a"] == {"n": 1}
        assert state["a"] == {"n": 2}

    def test_pop_of_shared_key_hands_back_a_copy(self):
        state = ProcessingState({"a": {"x": 1}})
        snap = state.snapshot()
        popped = state.pop("a")
        popped["x"] = 99
        assert snap["a"] == {"x": 1}

    def test_rebinding_never_copies_or_leaks(self):
        state = ProcessingState({"a": {"x": 1}})
        snap = state.snapshot()
        state["a"] = {"x": 2}
        assert snap["a"] == {"x": 1}
        assert state["a"] == {"x": 2}

    def test_items_hands_out_owned_values(self):
        """Operators mutate values while iterating (window flush); the
        iterator must privatise containers exactly like __getitem__."""
        state = ProcessingState({"a": {1: 10}, "b": {2: 20}})
        snap = state.snapshot()
        for _key, buckets in state.items():
            buckets.clear()
        assert snap["a"] == {1: 10}
        assert snap["b"] == {2: 20}

    def test_items_marks_dirty_for_incremental_checkpoints(self):
        state = ProcessingState({"a": {1: 10}, "b": 5})
        state.enable_dirty_tracking()
        state.consume_dirty()
        for _key, _value in state.items():
            pass
        # Mutable values count as touched (conservative superset);
        # immutable ones do not.
        assert state.consume_dirty() == {"a"}

    def test_partitioned_parts_do_not_alias_source_writes(self):
        state = ProcessingState({f"k{i}": {"n": i} for i in range(20)})
        intervals = KeyInterval.full().split(2)
        parts = state.partition(intervals)
        for key, _value in list(state.items()):
            state[key]["n"] = -1
        recovered = {}
        for part in parts:
            for key, value in part.items():
                recovered[key] = dict(value)
        assert recovered == {f"k{i}": {"n": i} for i in range(20)}

    def test_snapshot_positions_are_copied_eagerly(self):
        state = ProcessingState({"a": 1}, positions={1: 5})
        snap = state.snapshot()
        state.advance(1, 10)
        state.advance(2, 1)
        assert snap.positions == {1: 5}


class TestOutputBuffer:
    def make_tuple(self, ts, key="k", created=0.0):
        return Tuple(ts, key, None, created_at=created, slot=1)

    def test_append_and_read(self):
        buf = OutputBuffer()
        buf.append(5, self.make_tuple(1))
        buf.append(5, self.make_tuple(2))
        buf.append(6, self.make_tuple(3))
        assert len(buf.tuples_for(5)) == 2
        assert buf.destinations() == [5, 6]
        assert buf.tuple_count() == 3

    def test_trim_drops_prefix(self):
        buf = OutputBuffer()
        for ts in range(1, 6):
            buf.append(5, self.make_tuple(ts))
        dropped = buf.trim(5, 3)
        assert dropped == 3
        assert [t.ts for t in buf.tuples_for(5)] == [4, 5]

    def test_trim_empty_destination(self):
        assert OutputBuffer().trim(9, 100) == 0

    def test_tuples_after(self):
        buf = OutputBuffer()
        for ts in range(1, 6):
            buf.append(5, self.make_tuple(ts))
        assert [t.ts for t in buf.tuples_after(5, 3)] == [4, 5]

    def test_trim_by_age(self):
        buf = OutputBuffer()
        buf.append(1, self.make_tuple(1, created=0.0))
        buf.append(1, self.make_tuple(2, created=10.0))
        dropped = buf.trim_by_age(5.0)
        assert dropped == 1
        assert [t.ts for t in buf.tuples_for(1)] == [2]

    def test_repartition_moves_tuples_by_key(self):
        buf = OutputBuffer()
        buf.append(1, self.make_tuple(1, key="a"))
        buf.append(1, self.make_tuple(2, key="b"))
        buf.repartition(lambda tup: 10 if tup.key == "a" else 20)
        assert [t.key for t in buf.tuples_for(10)] == ["a"]
        assert [t.key for t in buf.tuples_for(20)] == ["b"]

    def test_snapshot_isolated(self):
        buf = OutputBuffer()
        buf.append(1, self.make_tuple(1))
        snap = buf.snapshot()
        buf.append(1, self.make_tuple(2))
        assert snap.tuple_count() == 1

    def test_weight_total(self):
        buf = OutputBuffer()
        buf.append(1, Tuple(1, "k", weight=4))
        assert buf.weight_total() == 4

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3), st.text(max_size=4)),
            max_size=40,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_repartition_preserves_multiset(self, items, parts):
        """Re-bucketing never loses or duplicates tuples (Alg. 2)."""
        buf = OutputBuffer()
        for ts, (dest, key) in enumerate(items):
            buf.append(dest, Tuple(ts + 1, key, slot=0))
        before = sorted(
            (t.ts, t.key) for d in buf.destinations() for t in buf.tuples_for(d)
        )
        buf.repartition(lambda tup: stable_hash(tup.key) % parts)
        after = sorted(
            (t.ts, t.key) for d in buf.destinations() for t in buf.tuples_for(d)
        )
        assert before == after
        for dest in buf.destinations():
            for tup in buf.tuples_for(dest):
                assert stable_hash(tup.key) % parts == dest
