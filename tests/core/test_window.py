"""Tests for the windowing helpers."""

import pytest

from repro.core.window import WindowAccumulator, window_index, window_start
from repro.errors import ConfigurationError


class TestWindowIndex:
    def test_basic(self):
        assert window_index(0.0, 10.0) == 0
        assert window_index(9.999, 10.0) == 0
        assert window_index(10.0, 10.0) == 1
        assert window_index(25.0, 10.0) == 2

    def test_negative_time(self):
        assert window_index(-0.5, 10.0) == -1

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            window_index(1.0, 0.0)

    def test_window_start(self):
        assert window_start(3, 10.0) == 30.0


class TestWindowAccumulator:
    def make(self):
        return WindowAccumulator(
            10.0, add=lambda acc, value, weight: acc + value * weight, zero=lambda: 0
        )

    def test_accumulates_into_correct_window(self):
        acc = self.make()
        buckets = {}
        acc.accumulate(buckets, 5.0, 2, weight=3)
        acc.accumulate(buckets, 15.0, 1)
        assert buckets == {0: 6, 1: 1}

    def test_flush_closed_removes_and_returns_sorted(self):
        acc = self.make()
        buckets = {2: 5, 0: 1, 1: 3}
        flushed = acc.flush_closed(buckets, now=25.0)
        assert flushed == [(0, 1), (1, 3)]
        assert buckets == {2: 5}

    def test_flush_nothing_when_all_open(self):
        acc = self.make()
        buckets = {0: 1}
        assert acc.flush_closed(buckets, now=5.0) == []
        assert buckets == {0: 1}


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        import inspect

        import repro.errors as errors

        for _name, cls in inspect.getmembers(errors, inspect.isclass):
            if cls.__module__ == "repro.errors" and cls is not errors.ReproError:
                assert issubclass(cls, errors.ReproError), cls
