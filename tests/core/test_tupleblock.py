"""Property tests for the columnar :class:`TupleBlock` record.

The block is the unit the columnar data plane ships and slices: rows in
emission order (strictly ascending ``ts`` per origin slot), fixed-width
columns in ``array`` storage, keys/payloads as object lists.  Every
slicing operation the runtime performs — prefix dedup (``suffix``),
routing carve-outs and fluid-migration splits (``split_by_intervals``) —
must preserve each row's ``(slot, ts)`` identity and the ascending-``ts``
order the receivers rely on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import KeyInterval
from repro.core.tuples import KEY_SPACE, Tuple, TupleBlock, stable_hash

# Rows as (key, payload, weight, created_at); ts is assigned strictly
# ascending, as the output batcher does.
rows_strategy = st.lists(
    st.tuples(
        st.text(max_size=8),
        st.one_of(st.none(), st.integers(-100, 100)),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def make_tuples(rows, slot=7, replay=False):
    return [
        Tuple(ts + 1, key, payload, weight, created_at, slot, replay)
        for ts, (key, payload, weight, created_at) in enumerate(rows)
    ]


def ids(block: TupleBlock) -> list[tuple[int, int]]:
    return [(block.slot, ts) for ts in block.ts]


class TestRoundtrip:
    @given(rows_strategy)
    @settings(max_examples=100, deadline=None)
    def test_from_tuples_to_tuples_identity(self, rows):
        tuples = make_tuples(rows)
        back = TupleBlock.from_tuples(tuples).to_tuples()
        assert back == tuples
        assert [t.created_at for t in back] == [t.created_at for t in tuples]
        assert [t.replay for t in back] == [t.replay for t in tuples]

    @given(rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_key_pos_matches_stable_hash(self, rows):
        block = TupleBlock.from_tuples(make_tuples(rows))
        assert list(block.key_pos) == [stable_hash(k) for k in block.keys]

    @given(rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_total_weight_and_rows(self, rows):
        tuples = make_tuples(rows)
        block = TupleBlock.from_tuples(tuples)
        assert block.total_weight() == sum(t.weight for t in tuples)
        assert [block.row(i) for i in range(len(block))] == tuples

    def test_replay_flag_is_block_scalar(self):
        tuples = make_tuples([("a", None, 1, 0.0)], replay=True)
        block = TupleBlock.from_tuples(tuples)
        assert block.replay is True
        assert all(t.replay for t in block.to_tuples())


class TestSuffix:
    @given(rows_strategy, st.integers(min_value=0, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_suffix_preserves_identities(self, rows, start):
        block = TupleBlock.from_tuples(make_tuples(rows))
        start = min(start, len(block))
        tail = block.suffix(start)
        assert ids(tail) == ids(block)[start:]
        assert tail.to_tuples() == block.to_tuples()[start:]
        assert tail.total_weight() == sum(tail.weight)
        assert tail.slot == block.slot and tail.replay == block.replay


class TestSplitByIntervals:
    @given(
        rows_strategy,
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=KEY_SPACE - 1),
                st.integers(min_value=1, max_value=KEY_SPACE),
            ),
            max_size=3,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_partitions_every_identity(self, rows, raw_intervals):
        block = TupleBlock.from_tuples(make_tuples(rows))
        intervals = [
            KeyInterval(lo, hi) for lo, hi in raw_intervals if lo < hi
        ]
        inside, outside = block.split_by_intervals(intervals)
        # Every (slot, ts) id lands in exactly one half.
        assert sorted(ids(inside) + ids(outside)) == sorted(ids(block))
        # Membership is decided by the key position.
        for half, want in ((inside, True), (outside, False)):
            for pos in half.key_pos:
                assert any(pos in span for span in intervals) is want
        # Ascending-ts order survives in both halves.
        for half in (inside, outside):
            assert list(half.ts) == sorted(half.ts)
            assert half.total_weight() == sum(half.weight)

    @given(rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_full_interval_takes_everything(self, rows):
        block = TupleBlock.from_tuples(make_tuples(rows))
        inside, outside = block.split_by_intervals([KeyInterval.full()])
        assert len(outside) == 0
        assert inside.to_tuples() == block.to_tuples()
