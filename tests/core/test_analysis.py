"""Tests for the static cost model and query-graph analysis."""

import pytest

from repro.core.analysis import (
    CostModel,
    critical_path,
    to_dot,
    to_networkx,
)
from repro.errors import QueryError
from repro.workloads.lrb import build_lrb_query
from repro.workloads.wordcount import build_word_count_query


@pytest.fixture(scope="module")
def lrb_graph():
    return build_lrb_query(num_xways=4, duration=60.0).graph


@pytest.fixture(scope="module")
def wc_graph():
    return build_word_count_query(rate=100).graph


class TestNetworkxBridge:
    def test_nodes_and_edges_match(self, lrb_graph):
        graph = to_networkx(lrb_graph)
        assert set(graph.nodes) == set(lrb_graph.operators)
        assert set(graph.edges) == set(lrb_graph.edges)

    def test_node_attributes(self, lrb_graph):
        graph = to_networkx(lrb_graph)
        assert graph.nodes["toll_calc"]["stateful"]
        assert graph.nodes["feeder"]["source"]
        assert graph.nodes["sink"]["sink"]


class TestCostModel:
    def model(self, graph, **kwargs):
        return CostModel(graph, **kwargs)

    def test_rates_propagate_with_selectivity(self, wc_graph):
        model = self.model(
            wc_graph, selectivity={("splitter", "counter"): 6.0}
        )
        rates = model.input_rates({"source": 100.0})
        assert rates["splitter"] == 100.0
        assert rates["counter"] == 600.0

    def test_fanout_rates_sum(self, lrb_graph):
        model = self.model(
            lrb_graph,
            selectivity={
                ("forwarder", "toll_calc"): 0.99,
                ("forwarder", "toll_assess"): 0.01,
            },
        )
        rates = model.input_rates({"feeder": 1000.0})
        assert rates["toll_calc"] == pytest.approx(990.0)
        # toll_assess gets forwarder queries plus toll_calc charges.
        assert rates["toll_assess"] > 10.0

    def test_unknown_source_rejected(self, wc_graph):
        with pytest.raises(QueryError):
            self.model(wc_graph).input_rates({"counter": 1.0})

    def test_predicted_bottleneck_is_toll_calculator(self, lrb_graph):
        model = self.model(
            lrb_graph,
            selectivity={
                ("forwarder", "toll_calc"): 0.99,
                ("forwarder", "toll_assess"): 0.01,
            },
        )
        assert model.predicted_bottleneck({"feeder": 100_000.0}) == "toll_calc"

    def test_partitions_needed_scale_with_rate(self, wc_graph):
        model = self.model(wc_graph, selectivity={("splitter", "counter"): 6.0})
        low = {e.name: e for e in model.estimate({"source": 100.0})}
        high = {e.name: e for e in model.estimate({"source": 20_000.0})}
        assert high["counter"].partitions_needed > low["counter"].partitions_needed
        assert low["counter"].partitions_needed >= 1

    def test_static_allocation_budgeted(self, lrb_graph):
        model = self.model(lrb_graph)
        plan = model.static_allocation({"feeder": 200_000.0}, budget=20)
        assert sum(plan.values()) == 20
        assert all(v >= 1 for v in plan.values())
        assert plan["toll_calc"] == max(plan.values())

    def test_budget_below_operator_count_rejected(self, lrb_graph):
        with pytest.raises(QueryError):
            self.model(lrb_graph).static_allocation({"feeder": 1.0}, budget=2)


class TestCriticalPath:
    def test_wordcount_path(self, wc_graph):
        assert critical_path(wc_graph) == ["source", "splitter", "counter", "sink"]

    def test_lrb_path_goes_through_toll_calculator(self, lrb_graph):
        path = critical_path(lrb_graph)
        assert path[0] == "feeder" and path[-1] == "sink"
        assert "toll_calc" in path


class TestDotExport:
    def test_contains_all_operators_and_edges(self, lrb_graph):
        dot = to_dot(lrb_graph)
        for name in lrb_graph.operators:
            assert f'"{name}"' in dot
        assert '"forwarder" -> "toll_calc"' in dot
        assert dot.startswith("digraph query {")

    def test_stateful_drawn_distinctly(self, wc_graph):
        dot = to_dot(wc_graph)
        assert 'doublecircle, label="counter"' in dot

    def test_parallelism_annotation(self, wc_graph):
        dot = to_dot(wc_graph, parallelism={"counter": 4})
        assert 'label="counter x4"' in dot
