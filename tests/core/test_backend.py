"""Tests for the pluggable tiered state backends (§3.3 unified)."""

import pytest

from repro.config import StateBackendConfig, SystemConfig
from repro.core.backend import (
    ExternalBackend,
    MemoryBackend,
    SpillBackend,
    backend_for,
)
from repro.core.checkpoint import Checkpoint, from_external_store
from repro.core.operators import KeyedCounter
from repro.core.spill import ExternalStateStore, SpillableState
from repro.core.state import KeyInterval, ProcessingState, stable_hash


def _checkpoint(entries, seq=1, slot_uid=7, **kwargs):
    return Checkpoint(
        op_name="counter",
        slot_uid=slot_uid,
        state=ProcessingState(dict(entries), positions={1: 5}, out_clock=3),
        seq=seq,
        **kwargs,
    )


class TestBackendSelection:
    def test_default_is_memory(self):
        backend = backend_for(StateBackendConfig(), op_name="op", slot_uid=1)
        assert isinstance(backend, MemoryBackend)

    def test_spill_kind_selects_spill(self):
        config = StateBackendConfig(kind="spill", max_hot_entries=4)
        backend = backend_for(config, op_name="op", slot_uid=1)
        assert isinstance(backend, SpillBackend)
        assert not isinstance(backend, ExternalBackend)

    def test_external_kind_selects_external(self):
        config = StateBackendConfig(kind="external")
        backend = backend_for(
            config, op_name="op", slot_uid=1, external_store=ExternalStateStore()
        )
        assert isinstance(backend, ExternalBackend)

    def test_external_without_store_rejected(self):
        with pytest.raises(ValueError):
            backend_for(
                StateBackendConfig(kind="external"), op_name="op", slot_uid=1
            )

    def test_sources_and_sinks_stay_in_memory(self):
        config = StateBackendConfig(kind="spill")
        for role in ("is_source", "is_sink"):
            backend = backend_for(
                config, op_name="op", slot_uid=1, **{role: True}
            )
            assert isinstance(backend, MemoryBackend)

    def test_operator_filter(self):
        config = StateBackendConfig(kind="spill", operators=("counter",))
        assert isinstance(
            backend_for(config, op_name="counter", slot_uid=1), SpillBackend
        )
        assert isinstance(
            backend_for(config, op_name="join", slot_uid=1), MemoryBackend
        )

    def test_config_validation(self):
        with pytest.raises(Exception):
            StateBackendConfig(kind="bogus").validate()
        with pytest.raises(Exception):
            StateBackendConfig(max_hot_entries=0).validate()
        config = SystemConfig()
        config.validate()  # default state_backend validates cleanly


class TestMemoryBackend:
    def test_initial_state_is_operator_state(self):
        backend = MemoryBackend()
        state = backend.initial_state(KeyedCounter("counter"))
        assert isinstance(state, ProcessingState)
        assert not isinstance(state, SpillableState)

    def test_restore_isolates_from_checkpoint(self):
        backend = MemoryBackend()
        ckpt_state = ProcessingState({"a": {"x": 1}}, positions={1: 5})
        restored = backend.restore(ckpt_state)
        restored["a"]["x"] = 2
        assert ckpt_state.entries["a"] == {"x": 1}
        assert restored.positions == {1: 5}

    def test_tier_stats_flat(self):
        backend = MemoryBackend()
        stats = backend.tier_stats(ProcessingState({"a": 1, "b": 2}))
        assert stats["hot_entries"] == 2
        assert stats["cold_entries"] == 0


class TestSpillBackend:
    def test_initial_state_is_bounded(self):
        config = StateBackendConfig(kind="spill", max_hot_entries=4)
        backend = SpillBackend(config)
        state = backend.initial_state(KeyedCounter("counter"))
        assert isinstance(state, SpillableState)
        assert state.max_hot_entries == 4

    def test_restore_respects_hot_bound_and_charges_io(self):
        charged = []
        config = StateBackendConfig(
            kind="spill", max_hot_entries=10, io_seconds_per_entry=1e-3
        )
        backend = SpillBackend(config, io_cost=charged.append)
        flat = ProcessingState(
            {f"k{i}": i for i in range(50)}, positions={1: 9}, out_clock=4
        )
        state = backend.restore(flat)
        assert len(state) == 50
        assert state.hot_entries <= 10
        assert state.spilled_entries == 40
        assert state.positions == {1: 9} and state.out_clock == 4
        # 40 entries spilled past the bound, each a charged disk write.
        assert sum(charged) == pytest.approx(40 * 1e-3)

    def test_tier_stats_spillable(self):
        config = StateBackendConfig(kind="spill", max_hot_entries=2)
        backend = SpillBackend(config)
        state = backend.restore(ProcessingState({f"k{i}": i for i in range(5)}))
        stats = backend.tier_stats(state)
        assert stats["hot_entries"] == 2
        assert stats["cold_entries"] == 3
        assert stats["peak_hot_entries"] <= 3


class TestSpillableStateIO:
    def test_snapshot_charges_cold_reads(self):
        charged = []
        state = SpillableState(
            max_hot_entries=2, io_seconds_per_entry=1e-3, io_cost=charged.append
        )
        for i in range(5):
            state[f"k{i}"] = i
        charged.clear()
        snap = state.snapshot()
        assert len(snap) == 5
        assert state.cold_read_count == 3
        assert sum(charged) == pytest.approx(3 * 1e-3)
        # The cold tier was streamed, not faulted into memory.
        assert state.fault_count == 0
        assert state.hot_entries == 2

    def test_extract_never_faults_unrelated_cold_keys(self):
        state = SpillableState(max_hot_entries=2)
        keys = [f"k{i}" for i in range(20)]
        for key in keys:
            state[key] = key
        halves = KeyInterval.full().split(2)
        matching = [k for k in keys if stable_hash(k) in halves[0]]
        cold_before = set(state._spilled)
        taken = state.extract([halves[0]])
        assert set(taken.entries) == set(matching)
        assert state.fault_count == 0
        assert state.hot_entries <= 2
        # Unrelated cold keys stayed exactly where they were.
        expected_left = {k for k in cold_before if stable_hash(k) not in halves[0]}
        assert expected_left <= set(state._spilled)
        assert len(state) == 20 - len(matching)

    def test_extract_charges_only_matching_cold_entries(self):
        charged = []
        state = SpillableState(
            max_hot_entries=1, io_seconds_per_entry=1e-3, io_cost=charged.append
        )
        for i in range(10):
            state[f"k{i}"] = i
        charged.clear()
        halves = KeyInterval.full().split(2)
        cold_matching = sum(
            1 for k in state._spilled if stable_hash(k) in halves[0]
        )
        state.extract([halves[0]])
        assert state.cold_read_count == cold_matching
        assert sum(charged) == pytest.approx(cold_matching * 1e-3)


class TestExternalStoreAccounting:
    def test_restore_all_charges_reads(self):
        charged = []
        store = ExternalStateStore(
            read_seconds_per_entry=1e-4, read_cost=charged.append
        )
        store.persist("op", "a", 1)
        store.persist("op", "b", 2)
        store.persist("other", "c", 3)
        assert store.reads == 0
        restored = store.restore_all("op")
        assert restored == {"a": 1, "b": 2}
        assert store.reads == 2
        assert sum(charged) == pytest.approx(2 * 1e-4)

    def test_lookup_charges_read(self):
        charged = []
        store = ExternalStateStore(
            read_seconds_per_entry=1e-4, read_cost=charged.append
        )
        store.persist("op", "a", 1)
        store.lookup("op", "a")
        assert store.reads == 1
        assert charged == [pytest.approx(1e-4)]

    def test_delete_respects_writer_ownership(self):
        store = ExternalStateStore()
        store.persist("op", "k", 1, slot_uid=7)
        assert not store.delete("op", "k", slot_uid=9)  # not the owner
        assert store.delete("op", "k", slot_uid=7)
        assert store.lookup("op", "k") is None


class TestExternalBackend:
    def _backend(self, store=None, slot_uid=7):
        store = store if store is not None else ExternalStateStore()
        config = StateBackendConfig(kind="external", max_hot_entries=100)
        return (
            ExternalBackend(config, store, "counter", slot_uid),
            store,
        )

    def test_full_flush_persists_cut_and_meta(self):
        backend, store = self._backend()
        backend.on_checkpoint(_checkpoint({"a": 1, "b": 2}, seq=3))
        assert store.lookup("counter", "a") == 1
        assert store.lookup("counter", "b") == 2
        positions, out_clock, seq = store.load_meta("counter", 7)
        assert positions == {1: 5} and out_clock == 3 and seq == 3

    def test_full_flush_reconciles_deletions(self):
        backend, store = self._backend()
        backend.on_checkpoint(_checkpoint({"a": 1, "b": 2}, seq=1))
        backend.on_checkpoint(_checkpoint({"a": 1}, seq=2))
        assert store.lookup("counter", "b") is None
        assert store.lookup("counter", "a") == 1

    def test_incremental_flush_applies_delta(self):
        backend, store = self._backend()
        backend.on_checkpoint(_checkpoint({"a": 1, "b": 2}, seq=1))
        backend.on_checkpoint(
            _checkpoint(
                {"a": 9},
                seq=2,
                incremental=True,
                base_seq=1,
                deleted_keys=frozenset({"b"}),
            )
        )
        assert store.lookup("counter", "a") == 9
        assert store.lookup("counter", "b") is None
        assert store.load_meta("counter", 7)[2] == 2

    def test_flush_charges_write_io(self):
        charged = []
        backend, store = self._backend()
        backend.io_cost = charged.append
        backend.on_checkpoint(_checkpoint({"a": 1, "b": 2}, seq=1))
        # 2 entry writes + 1 meta write.
        assert sum(charged) == pytest.approx(3 * store.write_seconds_per_entry)

    def test_stale_slot_cannot_delete_new_owners_key(self):
        store = ExternalStateStore()
        old, _ = self._backend(store, slot_uid=7)
        new, _ = self._backend(store, slot_uid=8)
        old.on_checkpoint(_checkpoint({"a": 1}, seq=1, slot_uid=7))
        # Key migrated: the new owner flushes it, then the old slot's
        # flush no longer covers it — but must not delete it either.
        new.on_checkpoint(_checkpoint({"a": 5}, seq=1, slot_uid=8))
        old.on_checkpoint(_checkpoint({}, seq=2, slot_uid=7))
        assert store.lookup("counter", "a") == 5


class TestFromExternalStore:
    def test_none_without_meta(self):
        store = ExternalStateStore()
        store.persist("counter", "a", 1)
        assert from_external_store(store, "counter", 7) is None

    def test_synthesises_replayable_checkpoint(self):
        backend_store = ExternalStateStore()
        backend, store = (
            ExternalBackend(
                StateBackendConfig(kind="external"), backend_store, "counter", 7
            ),
            backend_store,
        )
        backend.on_checkpoint(_checkpoint({"a": 1, "b": 2}, seq=4))
        ckpt = from_external_store(store, "counter", 7, taken_at=12.0)
        assert ckpt.seq == 4
        assert ckpt.positions == {1: 5} and ckpt.out_clock == 3
        assert ckpt.state.entries == {"a": 1, "b": 2}
        assert ckpt.taken_at == 12.0
        assert ckpt.buffers == {}

    def test_interval_filter_restricts_to_slot_range(self):
        store = ExternalStateStore()
        keys = [f"k{i}" for i in range(16)]
        for key in keys:
            store.persist("counter", key, 1)
        store.save_meta("counter", 7, {1: 5}, 3, seq=2)
        halves = KeyInterval.full().split(2)
        ckpt = from_external_store(store, "counter", 7, intervals=[halves[0]])
        expected = {k for k in keys if stable_hash(k) in halves[0]}
        assert set(ckpt.state.entries) == expected
