"""Tests for query graphs and execution graphs."""

import pytest

from repro.core.execution import ExecutionGraph
from repro.core.operator import LambdaOperator
from repro.core.operators import KeyedCounter
from repro.core.query import QueryGraph, linear_query
from repro.core.state import KeyInterval
from repro.core.tuples import KEY_SPACE
from repro.errors import QueryError


def op(name, stateful=False):
    if stateful:
        return KeyedCounter(name)
    return LambdaOperator(name, lambda tup, ctx: None)


def diamond() -> QueryGraph:
    graph = QueryGraph()
    graph.add_operator(op("src"), source=True)
    graph.add_operator(op("a"))
    graph.add_operator(op("b", stateful=True))
    graph.add_operator(op("snk"), sink=True)
    graph.connect("src", "a")
    graph.connect("src", "b")
    graph.connect("a", "snk")
    graph.connect("b", "snk")
    return graph


class TestQueryGraph:
    def test_duplicate_names_rejected(self):
        graph = QueryGraph()
        graph.add_operator(op("x"))
        with pytest.raises(QueryError):
            graph.add_operator(op("x"))

    def test_unknown_operator_in_connect(self):
        graph = QueryGraph()
        graph.add_operator(op("x"))
        with pytest.raises(QueryError):
            graph.connect("x", "missing")

    def test_self_loop_rejected(self):
        graph = QueryGraph()
        graph.add_operator(op("x"))
        with pytest.raises(QueryError):
            graph.connect("x", "x")

    def test_duplicate_edge_rejected(self):
        graph = diamond()
        with pytest.raises(QueryError):
            graph.connect("src", "a")

    def test_up_down(self):
        graph = diamond()
        assert sorted(graph.downstream_of("src")) == ["a", "b"]
        assert sorted(graph.upstream_of("snk")) == ["a", "b"]

    def test_topological_order(self):
        order = diamond().topological_order()
        assert order.index("src") < order.index("a") < order.index("snk")
        assert order.index("src") < order.index("b") < order.index("snk")

    def test_cycle_detected(self):
        graph = QueryGraph()
        for name in "abc":
            graph.add_operator(op(name))
        graph.connect("a", "b")
        graph.connect("b", "c")
        graph.connect("c", "a")
        with pytest.raises(QueryError):
            graph.topological_order()

    def test_validate_requires_source_and_sink(self):
        graph = QueryGraph()
        graph.add_operator(op("only"))
        with pytest.raises(QueryError):
            graph.validate()

    def test_validate_source_with_inputs_rejected(self):
        graph = QueryGraph()
        graph.add_operator(op("s"), source=True)
        graph.add_operator(op("x"))
        graph.add_operator(op("k"), sink=True)
        graph.connect("x", "s")
        graph.connect("s", "k")
        with pytest.raises(QueryError):
            graph.validate()

    def test_validate_disconnected_operator_rejected(self):
        graph = QueryGraph()
        graph.add_operator(op("s"), source=True)
        graph.add_operator(op("orphan"))
        graph.add_operator(op("k"), sink=True)
        graph.connect("s", "k")
        with pytest.raises(QueryError):
            graph.validate()

    def test_valid_diamond(self):
        diamond().validate()

    def test_stateful_operators_listed(self):
        assert diamond().stateful_operators() == ["b"]

    def test_linear_query_builder(self):
        graph = linear_query([op("a"), op("b"), op("c")])
        assert graph.sources == ["a"]
        assert graph.sinks == ["c"]

    def test_linear_query_too_short(self):
        with pytest.raises(QueryError):
            linear_query([op("only")])


class TestExecutionGraph:
    def make(self, parallelism=None):
        graph = diamond()
        graph.validate()
        execution = ExecutionGraph(graph)
        execution.initialise(parallelism)
        return execution

    def test_initialise_one_slot_each(self):
        execution = self.make()
        assert execution.total_slots() == 4
        assert execution.parallelism_of("b") == 1

    def test_initialise_with_parallelism(self):
        execution = self.make({"b": 3})
        assert execution.parallelism_of("b") == 3
        routing = execution.routing_to("b")
        assert len(routing) == 3

    def test_slot_uids_unique(self):
        execution = self.make({"a": 2, "b": 2})
        uids = [s.uid for slots in execution.slots.values() for s in slots]
        assert len(uids) == len(set(uids))

    def test_routing_covers_key_space(self):
        execution = self.make({"b": 4})
        routing = execution.routing_to("b")
        widths = sum(interval.width for interval, _t in routing)
        assert widths == KEY_SPACE

    def test_replace_slots(self):
        execution = self.make()
        old = execution.slots_of("b")[0]
        new = [execution.new_slot("b", i) for i in range(2)]
        execution.replace_slots("b", [old], new)
        assert execution.parallelism_of("b") == 2
        assert old.uid not in [s.uid for s in execution.slots_of("b")]

    def test_replace_unknown_slot_rejected(self):
        execution = self.make()
        bogus = execution.new_slot("b", 9)
        with pytest.raises(QueryError):
            execution.replace_slots("b", [bogus, bogus], [])

    def test_set_routing_validates_targets(self):
        execution = self.make()
        from repro.core.state import RoutingState

        with pytest.raises(QueryError):
            execution.set_routing("b", RoutingState.single(9999))

    def test_slot_by_uid(self):
        execution = self.make()
        slot = execution.slots_of("a")[0]
        assert execution.slot_by_uid(slot.uid) is slot
        with pytest.raises(QueryError):
            execution.slot_by_uid(424242)

    def test_zero_parallelism_rejected(self):
        graph = diamond()
        execution = ExecutionGraph(graph)
        with pytest.raises(QueryError):
            execution.initialise({"b": 0})
