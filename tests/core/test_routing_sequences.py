"""Property test: arbitrary sequences of routing mutations preserve the
key-space invariant (disjoint intervals, full coverage).

Scale out, scale in and recovery all rewrite routing state; no sequence
of those rewrites may ever leave a key unroutable or doubly routed —
this is the invariant the dispatcher's correctness rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import KeyInterval, RoutingState
from repro.core.tuples import KEY_SPACE


def apply_random_operations(draw_ops: list[tuple[str, int]]) -> RoutingState:
    routing = RoutingState.single(0)
    next_uid = 1
    for kind, selector in draw_ops:
        targets = sorted(set(routing.targets))
        target = targets[selector % len(targets)]
        if kind == "split":
            owned = routing.intervals_of(target)
            widest = max(owned, key=lambda i: i.width)
            if widest.width < 2:
                continue
            left, right = widest.split(2)
            replacements = [(i, target) for i in owned if i != widest]
            replacements += [(left, next_uid), (right, next_uid + 1)]
            routing = routing.replace_target(target, replacements)
            next_uid += 2
        elif kind == "reassign":
            routing = routing.reassign(target, next_uid)
            next_uid += 1
        elif kind == "merge" and len(targets) >= 2:
            survivor = targets[(selector + 1) % len(targets)]
            if survivor != target:
                routing = routing.merge_targets(survivor, target)
    return routing


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["split", "reassign", "merge"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=25,
    )
)
@settings(max_examples=80, deadline=None)
def test_mutation_sequences_preserve_coverage(ops):
    routing = apply_random_operations(ops)
    # The RoutingState constructor validates tiling on every rebuild, so
    # reaching here already proves the invariant; spot-check routing too.
    total = sum(interval.width for interval, _t in routing)
    assert total == KEY_SPACE
    for position in (0, 1, KEY_SPACE // 2, KEY_SPACE - 1):
        assert routing.route_position(position) in routing.targets


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["split", "reassign", "merge"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=25,
    ),
    st.text(max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_every_key_routes_to_exactly_one_target(ops, key):
    routing = apply_random_operations(ops)
    target = routing.route_key(key)
    owners = [
        t
        for interval, t in routing
        if interval.contains_key(key)
    ]
    assert owners == [target]


# --------------------------------------------------------------------------
# Partial swaps (fluid migration): split_off moves sub-intervals one chunk
# at a time, so routing passes through many intermediate states.  Every one
# of them must tile the key space, stay coalesced, and route each position
# to exactly the side of the migration that currently owns it.


def _assert_coalesced(routing: RoutingState) -> None:
    entries = list(routing)
    for (lhs, lt), (rhs, rt) in zip(entries, entries[1:]):
        assert not (lt == rt and lhs.hi == rhs.lo), (
            f"adjacent same-target entries not coalesced: {lhs}->{lt}, {rhs}->{rt}"
        )


@given(
    st.integers(min_value=2, max_value=12).flatmap(
        lambda k: st.permutations(list(range(k)))
    )
)
@settings(max_examples=60, deadline=None)
def test_chunked_split_off_commits_in_any_order(order):
    """Committing the chunks of a fluid migration in *any* order keeps
    routing consistent at every intermediate step and converges to the
    same fully-migrated state."""
    chunks = KeyInterval.full().split(len(order))
    routing = RoutingState.single(0)
    committed: list[KeyInterval] = []
    for index in order:
        routing = routing.split_off(0, [chunks[index]], 1)
        committed.append(chunks[index])
        _assert_coalesced(routing)
        assert sum(i.width for i, _t in routing) == KEY_SPACE
        for piece in chunks:
            probes = (piece.lo, piece.lo + piece.width // 2, piece.hi - 1)
            want = 1 if piece in committed else 0
            assert all(routing.route_position(p) == want for p in probes)
    # Old target fully evacuated; the survivor coalesces to one interval.
    assert routing.intervals_of(0) == []
    assert routing.intervals_of(1) == [KeyInterval.full()]
    assert len(routing) == 1


@given(
    st.integers(min_value=2, max_value=10),
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_interleaved_partial_swaps_route_every_position_once(parts, picks):
    """Repeated partial swaps between rotating targets: the key space
    stays fully covered, disjoint, and coalesced after every swap."""
    chunks = KeyInterval.full().split(parts)
    routing = RoutingState.single(0)
    next_uid = 1
    for pick in picks:
        piece = chunks[pick % len(chunks)]
        owner = routing.route_position(piece.lo)
        # The chunk may already be coalesced into a wider interval; move
        # it only if it still lies inside one interval of its owner.
        if not any(
            piece.lo >= i.lo and piece.hi <= i.hi
            for i in routing.intervals_of(owner)
        ):
            continue
        routing = routing.split_off(owner, [piece], next_uid)
        _assert_coalesced(routing)
        assert sum(i.width for i, _t in routing) == KEY_SPACE
        probes = (piece.lo, piece.hi - 1)
        assert all(routing.route_position(p) == next_uid for p in probes)
        next_uid += 1


def test_split_off_rejects_overlapping_pieces():
    routing = RoutingState.single(0)
    a, b = KeyInterval(0, 100), KeyInterval(50, 150)
    try:
        routing.split_off(0, [a, b], 1)
    except Exception as exc:
        assert "overlap" in str(exc)
    else:  # pragma: no cover - defends the assertion
        raise AssertionError("overlapping split_off pieces were accepted")


def test_split_off_rejects_straddling_piece():
    left, right = KeyInterval.full().split(2)
    routing = RoutingState([(left, 0), (right, 1)])
    straddler = KeyInterval(left.hi - 10, left.hi + 10)
    try:
        routing.split_off(0, [straddler], 2)
    except Exception as exc:
        assert "straddles" in str(exc) or "not owned" in str(exc)
    else:  # pragma: no cover - defends the assertion
        raise AssertionError("straddling split_off piece was accepted")
