"""Property test: arbitrary sequences of routing mutations preserve the
key-space invariant (disjoint intervals, full coverage).

Scale out, scale in and recovery all rewrite routing state; no sequence
of those rewrites may ever leave a key unroutable or doubly routed —
this is the invariant the dispatcher's correctness rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import KeyInterval, RoutingState
from repro.core.tuples import KEY_SPACE


def apply_random_operations(draw_ops: list[tuple[str, int]]) -> RoutingState:
    routing = RoutingState.single(0)
    next_uid = 1
    for kind, selector in draw_ops:
        targets = sorted(set(routing.targets))
        target = targets[selector % len(targets)]
        if kind == "split":
            owned = routing.intervals_of(target)
            widest = max(owned, key=lambda i: i.width)
            if widest.width < 2:
                continue
            left, right = widest.split(2)
            replacements = [(i, target) for i in owned if i != widest]
            replacements += [(left, next_uid), (right, next_uid + 1)]
            routing = routing.replace_target(target, replacements)
            next_uid += 2
        elif kind == "reassign":
            routing = routing.reassign(target, next_uid)
            next_uid += 1
        elif kind == "merge" and len(targets) >= 2:
            survivor = targets[(selector + 1) % len(targets)]
            if survivor != target:
                routing = routing.merge_targets(survivor, target)
    return routing


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["split", "reassign", "merge"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=25,
    )
)
@settings(max_examples=80, deadline=None)
def test_mutation_sequences_preserve_coverage(ops):
    routing = apply_random_operations(ops)
    # The RoutingState constructor validates tiling on every rebuild, so
    # reaching here already proves the invariant; spot-check routing too.
    total = sum(interval.width for interval, _t in routing)
    assert total == KEY_SPACE
    for position in (0, 1, KEY_SPACE // 2, KEY_SPACE - 1):
        assert routing.route_position(position) in routing.targets


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["split", "reassign", "merge"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=25,
    ),
    st.text(max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_every_key_routes_to_exactly_one_target(ops, key):
    routing = apply_random_operations(ops)
    target = routing.route_key(key)
    owners = [
        t
        for interval, t in routing
        if interval.contains_key(key)
    ]
    assert owners == [target]
