"""Tests for hot-key detection and fine-grained carve-out elasticity.

Interval splitting cannot relieve a slot whose load is one dominating
key; the HotKeyManager carves that key's singleton interval out into a
dedicated slot (a partial fluid migration) and re-absorbs it once it
cools.  These tests drive the whole loop end to end on the tiny
source → counter → sink pipeline with a manually flooded hot key.
"""

from repro.config import SystemConfig
from repro.core.tuples import stable_hash
from repro.runtime.system import StreamProcessingSystem
from repro.scaling.policy import ScaleOutDecision
from tests.conftest import ManualGenerator, small_system, tiny_query


def hot_system(**scaling_overrides):
    """A tiny pipeline with hot-key elasticity switched on."""
    config = SystemConfig()
    config.scaling.enabled = True
    config.scaling.hot_key_enabled = True
    config.checkpoint.interval = 1.0
    config.checkpoint.stagger = False
    for key, value in scaling_overrides.items():
        setattr(config.scaling, key, value)
    graph, collector = tiny_query(with_middle=False)
    system = StreamProcessingSystem(config)
    generator = ManualGenerator()
    system.deploy(graph, generators={"source": generator})
    return system, generator, collector


def flood(system, gen, hot_weight=900, light_weight=30, until=None):
    """Feed a dominating hot key plus background light keys every 100 ms."""

    def tick():
        if until is not None and system.sim.now >= until:
            return
        gen.feed("hot", weight=hot_weight)
        for i in range(3):
            gen.feed(f"light{int(system.sim.now * 10 + i) % 17}", weight=light_weight)

    system.sim.every(0.1, tick)


def counter_slots(system):
    return system.query_manager.slots_of("counter")


def owned_width(system, slot_uid):
    routing = system.query_manager.routing_to("counter")
    return sum(iv.width for iv in routing.intervals_of(slot_uid))


def total_count(system, key):
    total = 0
    for slot in counter_slots(system):
        instance = system.live_instance(slot.uid)
        if instance is not None:
            total += instance.state.get(key, 0)
    return total


class TestHotKeyDisabled:
    def test_default_config_attaches_no_sketches(self):
        system, gen, _col = small_system(scaling=True)
        gen.feed("a", weight=100)
        system.run(until=15.0)
        assert system.detector.hot_keys is None
        for instance in system.worker_instances():
            assert instance.key_sketch is None
        assert system.counter("scaling.hot_key_carveouts") == 0


class TestHotKeyCarveOut:
    def test_hot_key_carved_into_singleton_slot(self):
        system, gen, _col = hot_system()
        flood(system, gen)
        system.run(until=60.0)
        assert system.counter("scaling.hot_key_carveouts") >= 1
        assert system.detector.hot_keys.carve_outs_started >= 1
        assert system.metrics.events_of_kind("hot_key_carveout")
        # The hot key now lives alone in a width-1 slot.
        position = stable_hash("hot")
        routing = system.query_manager.routing_to("counter")
        owner = routing.route_position(position)
        assert owned_width(system, owner) == 1

    def test_carve_preserves_counts_exactly(self):
        system, gen, _col = hot_system()
        injected = {"n": 0}

        def tick():
            gen.feed("hot", weight=900)
            injected["n"] += 900

        system.sim.every(0.1, tick)
        system.run(until=60.0)
        assert system.counter("scaling.hot_key_carveouts") >= 1
        # Quiesce: stop injecting, let in-flight tuples drain.
        system.run(until=65.0)
        assert total_count(system, "hot") == injected["n"]

    def test_no_carve_without_vm_budget(self):
        system, gen, _col = hot_system()
        system.config.scaling.max_vms = system.worker_vm_count()
        flood(system, gen)
        system.run(until=60.0)
        assert system.counter("scaling.hot_key_carveouts") == 0

    def test_no_carve_below_share_threshold(self):
        # Even load across many keys: hot but never skewed.
        system, gen, _col = hot_system()

        def tick():
            for i in range(12):
                gen.feed(f"k{int(system.sim.now * 10 + i) % 97}", weight=90)

        system.sim.every(0.1, tick)
        system.run(until=60.0)
        assert system.counter("scaling.hot_key_carveouts") == 0

    def test_narrow_slot_split_skipped(self):
        system, gen, _col = hot_system()
        flood(system, gen)
        system.run(until=60.0)
        position = stable_hash("hot")
        routing = system.query_manager.routing_to("counter")
        owner = routing.route_position(position)
        assert owned_width(system, owner) == 1
        # The threshold policy must never try to split a singleton: the
        # detector skips it and counts the skip.
        before = system.counter("scaling.split_skipped_narrow")
        system.detector._apply(ScaleOutDecision("counter", owner, 0.99))
        assert system.counter("scaling.split_skipped_narrow") == before + 1


class TestHotKeyReabsorb:
    def test_cooled_singleton_reabsorbed(self):
        system, gen, _col = hot_system(
            hot_key_cool_reports=2, cooldown=5.0
        )
        flood(system, gen, until=60.0)
        system.run(until=200.0)
        assert system.counter("scaling.hot_key_carveouts") >= 1
        assert system.counter("scaling.hot_key_reabsorbs") >= 1
        # The hot key's position is back inside a wide slot.
        position = stable_hash("hot")
        routing = system.query_manager.routing_to("counter")
        owner = routing.route_position(position)
        assert owned_width(system, owner) > 1
