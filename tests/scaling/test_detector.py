"""Tests for the bottleneck detector end to end."""

from tests.conftest import small_system


class TestBottleneckDetector:
    def overload_counter(self, max_vms=None, threshold=0.7):
        system, gen, col = small_system(
            scaling=True, checkpoint_interval=1.0
        )
        system.config.scaling.threshold = threshold
        system.config.scaling.max_vms = max_vms
        # Saturate the counter (cost 1e-4 per unit weight, capacity 1.0)
        # with a steady stream of heavy tuples.
        def flood():
            gen.feed(f"k{int(system.sim.now * 10) % 97}", weight=1200)

        system.sim.every(0.1, flood)
        return system

    def test_detects_and_scales_bottleneck(self):
        # Both mid and counter saturate; their scale-outs contend for the
        # pool and for each other's backup VMs, so give the system time to
        # ride through an aborted attempt plus a pool refill.
        system = self.overload_counter()
        system.run(until=200.0)
        assert system.query_manager.parallelism_of("counter") >= 2
        assert system.detector.decisions_made >= 1
        assert len(system.metrics.events_of_kind("scale_out_complete")) >= 1

    def test_max_vms_caps_growth(self):
        system = self.overload_counter(max_vms=2)
        system.run(until=60.0)
        assert system.worker_vm_count() <= 2

    def test_reports_collected(self):
        system, gen, _col = small_system(scaling=True)
        system.run(until=12.0)
        assert system.detector.reports_collected > 0

    def test_idle_system_never_scales(self):
        system, gen, _col = small_system(scaling=True)
        gen.feed("a")
        system.run(until=60.0)
        assert system.query_manager.parallelism_of("counter") == 1
        assert system.detector.decisions_made == 0

    def test_utilization_series_recorded(self):
        system = self.overload_counter()
        system.run(until=15.0)
        assert any(
            name.startswith("util:counter") for name in system.metrics.time_series
        )
