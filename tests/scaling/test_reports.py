"""Tests for utilisation report tracking and the heavy-hitter sketch."""

import pytest

from repro.scaling.reports import SpaceSavingSketch, UtilizationTracker


class TestUtilizationTracker:
    def test_first_sample_returns_none(self):
        tracker = UtilizationTracker()
        assert tracker.sample(5.0, "op", 1, 1, busy_total=2.0) is None

    def test_delta_utilization(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, busy_total=0.0)
        report = tracker.sample(5.0, "op", 1, 1, busy_total=2.5)
        assert report is not None
        assert report.utilization == 0.5
        assert report.window == 5.0

    def test_clamped_to_unit_range(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, busy_total=0.0)
        report = tracker.sample(5.0, "op", 1, 1, busy_total=10.0)
        assert report.utilization == 1.0

    def test_zero_window_skipped(self):
        tracker = UtilizationTracker()
        tracker.sample(5.0, "op", 1, 1, 0.0)
        assert tracker.sample(5.0, "op", 1, 1, 1.0) is None

    def test_forget_resets(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, 0.0)
        tracker.forget(1)
        assert tracker.sample(5.0, "op", 1, 1, 1.0) is None

    def test_slots_tracked_independently(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, 0.0)
        tracker.sample(0.0, "op", 2, 2, 0.0)
        a = tracker.sample(5.0, "op", 1, 1, 1.0)
        b = tracker.sample(5.0, "op", 2, 2, 4.0)
        assert a.utilization == 0.2
        assert b.utilization == 0.8

    def test_negative_window_skipped(self):
        # Time never goes backwards in the simulator, but a report round
        # racing a slot hand-over can resample at an earlier tracker
        # timestamp; the sample must be dropped, not divide negatively.
        tracker = UtilizationTracker()
        tracker.sample(5.0, "op", 1, 1, 2.0)
        assert tracker.sample(4.0, "op", 1, 1, 3.0) is None

    def test_busy_total_regression_clamped_to_zero(self):
        # A replacement VM restarts busy-time accounting at zero; the
        # first delta after hand-over clamps at 0 instead of going
        # negative.
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, 10.0)
        report = tracker.sample(5.0, "op", 1, 2, 1.0)
        assert report.utilization == 0.0


class TestSpaceSavingSketch:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(0)

    def test_exact_below_capacity(self):
        sketch = SpaceSavingSketch(4)
        for key, weight in (("a", 5.0), ("b", 3.0), ("a", 2.0), ("c", 1.0)):
            sketch.offer(key, weight)
        assert sketch.top(3) == [("a", 7.0), ("b", 3.0), ("c", 1.0)]
        assert sketch.total == 11.0
        assert len(sketch) == 3

    def test_eviction_inherits_minimum_count(self):
        sketch = SpaceSavingSketch(2)
        sketch.offer("a", 10.0)
        sketch.offer("b", 1.0)
        sketch.offer("c", 1.0)  # evicts b, inherits its count
        assert len(sketch) == 2
        top = dict(sketch.top(2))
        assert top["c"] == 2.0  # over-estimate: floor(b) + weight(c)
        assert "b" not in top

    def test_heavy_hitter_survives_churn(self):
        # Any key with true weight > total/capacity is guaranteed present
        # no matter how many light keys churn through the sketch.
        sketch = SpaceSavingSketch(8)
        for i in range(200):
            sketch.offer(f"light{i}", 1.0)
            if i % 2 == 0:
                sketch.offer("heavy", 3.0)
        top_keys = [key for key, _w in sketch.top(8)]
        assert "heavy" in top_keys
        # Estimated weight never under-counts the true weight.
        assert dict(sketch.top(8))["heavy"] >= 300.0

    def test_top_ties_break_deterministically(self):
        sketch = SpaceSavingSketch(4)
        sketch.offer("b", 2.0)
        sketch.offer("a", 2.0)
        assert sketch.top(2) == [("a", 2.0), ("b", 2.0)]

    def test_reset_clears_counts_and_total(self):
        sketch = SpaceSavingSketch(4)
        sketch.offer("a", 5.0)
        sketch.reset()
        assert sketch.top(1) == []
        assert sketch.total == 0.0
        assert len(sketch) == 0

    def test_total_is_exact_despite_evictions(self):
        sketch = SpaceSavingSketch(2)
        for i in range(10):
            sketch.offer(f"k{i}", 2.0)
        assert sketch.total == 20.0
