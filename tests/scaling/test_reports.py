"""Tests for utilisation report tracking."""

from repro.scaling.reports import UtilizationTracker


class TestUtilizationTracker:
    def test_first_sample_returns_none(self):
        tracker = UtilizationTracker()
        assert tracker.sample(5.0, "op", 1, 1, busy_total=2.0) is None

    def test_delta_utilization(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, busy_total=0.0)
        report = tracker.sample(5.0, "op", 1, 1, busy_total=2.5)
        assert report is not None
        assert report.utilization == 0.5
        assert report.window == 5.0

    def test_clamped_to_unit_range(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, busy_total=0.0)
        report = tracker.sample(5.0, "op", 1, 1, busy_total=10.0)
        assert report.utilization == 1.0

    def test_zero_window_skipped(self):
        tracker = UtilizationTracker()
        tracker.sample(5.0, "op", 1, 1, 0.0)
        assert tracker.sample(5.0, "op", 1, 1, 1.0) is None

    def test_forget_resets(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, 0.0)
        tracker.forget(1)
        assert tracker.sample(5.0, "op", 1, 1, 1.0) is None

    def test_slots_tracked_independently(self):
        tracker = UtilizationTracker()
        tracker.sample(0.0, "op", 1, 1, 0.0)
        tracker.sample(0.0, "op", 2, 2, 0.0)
        a = tracker.sample(5.0, "op", 1, 1, 1.0)
        b = tracker.sample(5.0, "op", 2, 2, 4.0)
        assert a.utilization == 0.2
        assert b.utilization == 0.8
