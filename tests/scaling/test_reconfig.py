"""Tests for the phase-driven reconfiguration engine.

The paper's claim — recovery is "scale out of a failed operator" — is
checked literally here: both operations on the same slot must walk the
identical phase sequence through the single engine, and every kind of
topology change must leave a queryable phase timeline behind.
"""

from repro.scaling.reconfig import (
    PHASE_ABORTED,
    PHASE_DONE,
    PHASE_ORDER,
    PHASE_PLAN,
    PHASE_REPLAY_DRAIN,
    PHASE_TRANSFER,
)
from tests.conftest import small_system


FULL_SEQUENCE = list(PHASE_ORDER) + [PHASE_DONE]


def feed_many(gen, keys, weight=1):
    for key in keys:
        gen.feed(key, weight=weight)


def warmed_system(**kwargs):
    system, gen, col = small_system(checkpoint_interval=1.0, **kwargs)
    feed_many(gen, [f"k{i}" for i in range(30)])
    system.run(until=3.0)  # at least one checkpoint stored
    return system, gen, col


class TestPhaseSequences:
    def test_scale_out_walks_every_phase(self):
        system, _gen, _col = warmed_system()
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        [timeline] = system.metrics.timelines(kind="scale_out")
        assert timeline.phases == FULL_SEQUENCE
        assert timeline.outcome == "done"

    def test_recovery_and_scale_out_share_the_phase_sequence(self):
        """Recovery of a slot IS scale out of that slot: same phases."""
        system_a, _gen_a, _col_a = warmed_system()
        uid_a = system_a.query_manager.slots_of("counter")[0].uid
        assert system_a.scale_out.scale_out_slot(uid_a, 2)
        system_a.run(until=20.0)

        system_b, _gen_b, _col_b = warmed_system()
        system_b.vm_of("counter").fail()
        system_b.run(until=20.0)

        [scale_out] = system_a.metrics.timelines(kind="scale_out")
        [recovery] = system_b.metrics.timelines(kind="recovery")
        assert recovery.phases == scale_out.phases == FULL_SEQUENCE

    def test_parallel_recovery_same_sequence(self):
        system, _gen, _col = warmed_system()
        system.config.fault.recovery_parallelism = 2
        system.vm_of("counter").fail()
        system.run(until=20.0)
        [timeline] = system.metrics.timelines(kind="recovery")
        assert timeline.phases == FULL_SEQUENCE
        assert system.query_manager.parallelism_of("counter") == 2

    def test_scale_in_walks_every_phase(self):
        system, gen, _col = warmed_system()
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        assert system.scale_in.scale_in("counter")
        system.run(until=40.0)
        [timeline] = system.metrics.timelines(kind="scale_in")
        assert timeline.phases == FULL_SEQUENCE
        assert timeline.outcome == "done"

    def test_upstream_backup_recovery_same_sequence(self):
        system, gen, _col = small_system(
            strategy="upstream_backup", with_middle=True
        )
        feed_many(gen, [f"k{i}" for i in range(20)])
        system.run(until=3.0)
        system.vm_of("counter").fail()
        system.run(until=20.0)
        [timeline] = system.metrics.timelines(kind="recovery")
        assert timeline.phases == FULL_SEQUENCE

    def test_source_replay_recovery_same_sequence(self):
        system, gen, _col = small_system(
            strategy="source_replay", with_middle=True
        )
        feed_many(gen, [f"k{i}" for i in range(20)])
        system.run(until=3.0)
        system.vm_of("counter").fail()
        system.run(until=20.0)
        [timeline] = system.metrics.timelines(kind="recovery")
        assert timeline.phases == FULL_SEQUENCE


class TestTimelineContents:
    def test_spans_are_contiguous_and_monotonic(self):
        system, _gen, _col = warmed_system()
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        [timeline] = system.metrics.timelines(kind="scale_out")
        rows = timeline.as_rows()
        assert len(rows) == len(FULL_SEQUENCE)
        for (_, start, end), (_, next_start, _) in zip(rows, rows[1:]):
            assert end == next_start  # each phase ends where the next begins
            assert end >= start

    def test_slot_uids_cover_old_and_new_partitions(self):
        system, _gen, _col = warmed_system()
        old_uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(old_uid, 2)
        system.run(until=20.0)
        new_uids = {s.uid for s in system.query_manager.slots_of("counter")}
        [timeline] = system.metrics.timelines(kind="scale_out")
        assert old_uid in timeline.slot_uids
        assert new_uids <= set(timeline.slot_uids)
        # Queryable by any involved slot.
        assert system.metrics.timelines(slot_uid=old_uid) == [timeline]

    def test_recovery_attributes_time_to_phases(self):
        """The phase breakdown must account for the whole operation."""
        system, _gen, _col = warmed_system()
        system.vm_of("counter").fail()
        system.run(until=20.0)
        [timeline] = system.metrics.timelines(kind="recovery")
        total = timeline.total_duration()
        assert total is not None and total > 0
        parts = sum(
            timeline.phase_duration(phase) for phase in FULL_SEQUENCE
        )
        assert abs(parts - total) < 1e-9
        # State transfer over the network dominates serial recovery; the
        # replay drain may be instantaneous when buffers were just trimmed.
        assert timeline.phase_duration(PHASE_TRANSFER) > 0
        assert timeline.phase_duration(PHASE_REPLAY_DRAIN) >= 0

    def test_scale_in_timeline_records_both_old_slots(self):
        system, _gen, _col = warmed_system()
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        olds = {s.uid for s in system.query_manager.slots_of("counter")}
        assert system.scale_in.scale_in("counter")
        system.run(until=40.0)
        [timeline] = system.metrics.timelines(kind="scale_in")
        assert olds <= set(timeline.slot_uids)


class TestPhaseDeadlines:
    def test_transfer_deadline_aborts_the_operation(self):
        system, _gen, _col = warmed_system()
        system.reconfig.default_phase_timeouts[PHASE_TRANSFER] = 1e-6
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        assert system.reconfig.operations_aborted == 1
        assert system.metrics.events_of_kind("scale_out_aborted")
        [timeline] = system.metrics.timelines(kind="scale_out")
        assert timeline.outcome == "aborted"
        assert timeline.phases[-1] == PHASE_ABORTED
        # The frozen operator resumed; the system still works.
        assert not system.scale_out.is_busy("counter")
        current = system.instances_of("counter")[0]
        assert current.alive and not current.vm.paused

    def test_plan_timeouts_override_engine_defaults(self):
        system, _gen, _col = warmed_system()
        # A generous engine-wide default must not abort anything when the
        # plan itself does not override it with something tighter.
        system.reconfig.default_phase_timeouts[PHASE_TRANSFER] = 300.0
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        assert system.reconfig.operations_aborted == 0
        assert system.reconfig.operations_completed == 1

    def test_timers_disarmed_on_abort_and_late_fire_is_a_noop(self):
        """ABORTED cancels every outstanding deadline/watchdog timer, and
        even a timer that somehow fires late must not touch the dead
        operation (no double abort, no phase change)."""
        system, _gen, _col = warmed_system()
        system.reconfig.default_phase_timeouts[PHASE_TRANSFER] = 1e-6
        captured = []
        system.reconfig.on_phase_change(
            lambda op, phase: captured.append(op) if not captured else None
        )
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        [op] = captured[:1]
        assert op.aborted
        # Every timer was cancelled and dropped when the op aborted.
        assert op.timers == []
        # A late deadline or watchdog event against the dead operation is
        # a no-op: no second abort, no phase transition, no exception.
        aborted_before = system.reconfig.operations_aborted
        system.reconfig._phase_deadline(op, PHASE_TRANSFER)
        system.reconfig._watchdog(op)
        system.run(until=25.0)
        assert system.reconfig.operations_aborted == aborted_before
        assert op.phase == PHASE_ABORTED

    def test_timers_disarmed_on_done(self):
        """DONE also cancels the watchdog and any armed phase deadlines —
        a completed operation must not linger in the event queue."""
        system, _gen, _col = warmed_system()
        captured = []
        system.reconfig.on_phase_change(
            lambda op, phase: captured.append(op) if not captured else None
        )
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        [op] = captured[:1]
        assert op.finished and not op.aborted
        assert op.timers == []
        completed_before = system.reconfig.operations_completed
        aborted_before = system.reconfig.operations_aborted
        system.reconfig._watchdog(op)
        assert system.reconfig.operations_completed == completed_before
        assert system.reconfig.operations_aborted == aborted_before
        assert op.phase == PHASE_DONE

    def test_deadline_on_a_passed_phase_is_harmless(self):
        system, _gen, _col = warmed_system()
        # PLAN completes synchronously, so its deadline always finds the
        # operation already past it.
        system.reconfig.default_phase_timeouts[PHASE_PLAN] = 0.5
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        assert system.reconfig.operations_completed == 1
        assert system.reconfig.operations_aborted == 0


class TestEngineBookkeeping:
    def test_counters_visible_through_both_adapters(self):
        system, _gen, _col = warmed_system()
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        assert system.scale_out.operations_completed == 1
        assert system.reconfig.operations_completed == 1
        assert system.scale_in.scale_in("counter")
        system.run(until=40.0)
        assert system.scale_in.merges_completed == 1
        assert system.reconfig.merges_completed == 1

    def test_active_operations_drain_to_empty(self):
        system, _gen, _col = warmed_system()
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        assert len(system.reconfig.active_operations()) == 1
        system.run(until=20.0)
        assert system.reconfig.active_operations() == []

    def test_merge_blocks_scale_out_and_vice_versa(self):
        system, _gen, _col = warmed_system()
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        assert not system.scale_in.scale_in("counter")
        system.run(until=20.0)
        assert system.scale_in.scale_in("counter")
        busy_uid = system.query_manager.slots_of("counter")[0].uid
        assert not system.scale_out.scale_out_slot(busy_uid, 2)
