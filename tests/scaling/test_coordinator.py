"""Tests for the fault-tolerant scale-out coordinator (Algorithm 3)."""

import pytest

from repro.core.tuples import stable_hash
from tests.conftest import small_system


def feed_many(gen, keys, weight=1):
    for key in keys:
        gen.feed(key, weight=weight)


def scale_counter(system, parallelism=2, at=None, done=None):
    uid = system.query_manager.slots_of("counter")[0].uid

    def trigger():
        ok = system.scale_out.scale_out_slot(
            uid, parallelism=parallelism, on_complete=done
        )
        assert ok

    if at is None:
        trigger()
    else:
        system.sim.schedule_at(at, trigger)
    return uid


class TestScaleOut:
    def setup_scaled(self, parallelism=2, keys=40):
        system, gen, col = small_system(checkpoint_interval=1.0)
        feed_many(gen, [f"k{i}" for i in range(keys)])
        system.run(until=3.0)  # at least one checkpoint stored
        old_uid = scale_counter(system, parallelism)
        system.run(until=20.0)
        return system, gen, old_uid

    def test_creates_new_partitions(self):
        system, _gen, old_uid = self.setup_scaled(parallelism=3)
        assert system.query_manager.parallelism_of("counter") == 3
        assert old_uid not in system.instances
        assert len(system.metrics.events_of_kind("scale_out_complete")) == 1

    def test_state_partitioned_disjointly(self):
        system, _gen, _old = self.setup_scaled(parallelism=2)
        parts = system.instances_of("counter")
        keys = [set(p.state.keys()) for p in parts]
        assert not (keys[0] & keys[1])
        assert len(keys[0] | keys[1]) == 40

    def test_state_respects_routing(self):
        system, _gen, _old = self.setup_scaled(parallelism=2)
        routing = system.query_manager.routing_to("counter")
        for part in system.instances_of("counter"):
            for key in part.state.keys():
                assert routing.route_position(stable_hash(key)) == part.uid

    def test_no_counts_lost_or_duplicated(self):
        system, gen, _old = self.setup_scaled(parallelism=2)
        # Feed more tuples after scale out: they must land exactly once.
        feed_many(gen, [f"k{i}" for i in range(40)])
        system.run(until=25.0)
        total = sum(
            sum(v for v in p.state.entries.values() if isinstance(v, int))
            for p in system.instances_of("counter")
        )
        assert total == 80

    def test_old_vm_released(self):
        system, _gen, old_uid = self.setup_scaled()
        released = [
            vm
            for vm in system.provider.vms
            if vm.released_at is not None
        ]
        assert released

    def test_upstream_routing_updated(self):
        system, _gen, _old = self.setup_scaled(parallelism=2)
        mid = system.instances_of("mid")[0]
        uids = {p.uid for p in system.instances_of("counter")}
        assert set(mid.routing["counter"].targets) == uids

    def test_new_partitions_have_backups(self):
        system, _gen, _old = self.setup_scaled(parallelism=2)
        for part in system.instances_of("counter"):
            assert system.backup_of(part.uid) is not None

    def test_old_backup_dropped(self):
        system, _gen, old_uid = self.setup_scaled()
        assert system.backup_of(old_uid) is None

    def test_completion_callback_runs(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, [f"k{i}" for i in range(10)])
        system.run(until=3.0)
        durations = []
        scale_counter(system, 2, done=durations.append)
        system.run(until=20.0)
        assert len(durations) == 1
        assert durations[0] > 0

    def test_busy_operator_rejects_second_scale_out(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a", "b"])
        system.run(until=3.0)
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        assert not system.scale_out.scale_out_slot(uid, 2)
        assert system.scale_out.is_busy("counter")
        system.run(until=20.0)
        assert not system.scale_out.is_busy("counter")

    def test_no_backup_aborts(self):
        system, gen, _col = small_system(checkpoint_interval=100.0)
        feed_many(gen, ["a"])
        system.run(until=1.0)  # no checkpoint yet
        uid = system.query_manager.slots_of("counter")[0].uid
        assert not system.scale_out.scale_out_slot(uid, 2)
        assert system.metrics.events_of_kind("scale_out_aborted")


class TestScaleOutExactness:
    def test_suppression_prevents_duplicate_outputs(self):
        """Scale out the stateless mid operator: its outputs for inputs the
        frozen instance already processed must not be re-emitted."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, [f"k{i}" for i in range(30)])
        system.run(until=4.0)
        counter_before = {
            k: v for k, v in system.instances_of("counter")[0].state.items()
        }
        mid_uid = system.query_manager.slots_of("mid")[0].uid
        assert system.scale_out.scale_out_slot(mid_uid, 2)
        system.run(until=20.0)
        counter_after = dict(system.instances_of("counter")[0].state.items())
        assert counter_after == counter_before  # no double counting

    def test_mid_scale_out_preserves_future_flow(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a", "b"])
        system.run(until=4.0)
        mid_uid = system.query_manager.slots_of("mid")[0].uid
        system.scale_out.scale_out_slot(mid_uid, 2)
        system.run(until=20.0)
        feed_many(gen, ["c", "d"])
        system.run(until=25.0)
        counter = system.instances_of("counter")[0]
        assert counter.state["c"] == 1 and counter.state["d"] == 1


class TestAbortPaths:
    def test_backup_vm_failure_aborts_and_unfreezes(self):
        system, gen, _col = small_system(checkpoint_interval=1.0, strategy="none")
        counter = system.instances_of("counter")[0]
        counter.start_checkpointing()
        feed_many(gen, ["a", "b"])
        system.run(until=3.0)
        assert system.scale_out.scale_out_slot(counter.uid, 2)
        # The backup lives on mid's VM; kill it before partitioning runs.
        system.instances_of("mid")[0].vm.fail()
        system.run(until=30.0)
        assert system.metrics.events_of_kind("scale_out_aborted")
        # The frozen counter resumed and keeps processing.
        current = system.instances_of("counter")[0]
        assert current.alive
        assert not current.vm.paused

    def test_invalid_parallelism_rejected(self):
        system, _gen, _col = small_system()
        from repro.errors import ScaleOutError

        with pytest.raises(ScaleOutError):
            system.scale_out.scale_out_slot(0, parallelism=0)

    def test_unknown_slot_returns_false(self):
        system, _gen, _col = small_system()
        assert not system.scale_out.scale_out_slot(98765, 2)
