"""Tests for the threshold and predictive scaling policies (§5.1)."""

from repro.config import ScalingConfig
from repro.scaling.policy import (
    REASON_BOTTLENECK,
    REASON_PREDICTED,
    PredictiveScalingPolicy,
    ThresholdScalingPolicy,
    make_policy as build_policy,
)
from repro.scaling.reports import UtilizationReport


def report(slot_uid, utilization, op_name="op", time=0.0):
    return UtilizationReport(time, op_name, slot_uid, slot_uid, 5.0, utilization)


def make_policy(k=2, threshold=0.7, cooldown=15.0, **kwargs):
    return ThresholdScalingPolicy(
        ScalingConfig(
            consecutive_reports=k, threshold=threshold, cooldown=cooldown, **kwargs
        )
    )


def make_predictive(k=2, threshold=0.7, cooldown=15.0, **kwargs):
    kwargs.setdefault("predict_min_samples", 3)
    return PredictiveScalingPolicy(
        ScalingConfig(
            consecutive_reports=k,
            threshold=threshold,
            cooldown=cooldown,
            policy="predictive",
            **kwargs,
        )
    )


class TestThresholdPolicy:
    def test_requires_k_consecutive_reports(self):
        policy = make_policy(k=2)
        assert policy.observe([report(1, 0.9)], now=0.0, vm_budget_left=None) == []
        decisions = policy.observe([report(1, 0.9)], now=5.0, vm_budget_left=None)
        assert len(decisions) == 1
        assert decisions[0].slot_uid == 1

    def test_below_threshold_resets_count(self):
        policy = make_policy(k=2)
        policy.observe([report(1, 0.9)], 0.0, None)
        policy.observe([report(1, 0.5)], 5.0, None)
        assert policy.observe([report(1, 0.9)], 10.0, None) == []

    def test_cooldown_blocks_retrigger(self):
        policy = make_policy(k=1, cooldown=20.0)
        assert policy.observe([report(1, 0.9)], 0.0, None)
        assert policy.observe([report(1, 0.9)], 5.0, None) == []
        assert policy.observe([report(1, 0.9)], 25.0, None)

    def test_every_hot_partition_splits(self):
        # Splitting only the hottest partition grows capacity linearly and
        # loses an exponential load race; all hot slots split per round.
        policy = make_policy(k=1)
        decisions = policy.observe(
            [report(1, 0.8, "op"), report(2, 0.95, "op")], 0.0, None
        )
        assert len(decisions) == 2
        assert decisions[0].slot_uid == 2  # hottest first

    def test_different_operators_scale_together(self):
        policy = make_policy(k=1)
        decisions = policy.observe(
            [report(1, 0.8, "a"), report(2, 0.9, "b")], 0.0, None
        )
        assert {d.op_name for d in decisions} == {"a", "b"}

    def test_vm_budget_limits_decisions(self):
        policy = make_policy(k=1)
        decisions = policy.observe(
            [report(1, 0.8, "a"), report(2, 0.9, "b")], 0.0, vm_budget_left=1
        )
        assert len(decisions) == 1
        assert decisions[0].op_name == "b"  # hottest first

    def test_zero_budget_blocks_all(self):
        policy = make_policy(k=1)
        assert policy.observe([report(1, 0.99)], 0.0, vm_budget_left=0) == []

    def test_forget_slot(self):
        policy = make_policy(k=2)
        policy.observe([report(1, 0.9)], 0.0, None)
        policy.forget_slot(1)
        assert policy.observe([report(1, 0.9)], 5.0, None) == []

    def test_note_scale_out_extends_cooldown(self):
        policy = make_policy(k=1, cooldown=10.0)
        policy.note_scale_out(1, now=0.0)
        assert policy.observe([report(1, 0.9)], 5.0, None) == []
        assert policy.observe([report(1, 0.9)], 11.0, None)

    def test_reports_inside_cooldown_do_not_accumulate(self):
        # Regression: breaches observed during the cooldown used to keep
        # accumulating the consecutive counter, so the slot re-split the
        # instant the cooldown expired instead of requiring k *fresh*
        # consecutive breaches.
        policy = make_policy(k=2, cooldown=20.0)
        policy.observe([report(1, 0.9)], 0.0, None)
        assert policy.observe([report(1, 0.9)], 5.0, None)  # splits, cools
        # Hot all through the cooldown window.
        assert policy.observe([report(1, 0.95)], 10.0, None) == []
        assert policy.observe([report(1, 0.95)], 15.0, None) == []
        assert policy.observe([report(1, 0.95)], 20.0, None) == []
        # Cooldown over at t=25: first post-cooldown breach must NOT
        # split (count restarts at 1), the second must.
        assert policy.observe([report(1, 0.95)], 26.0, None) == []
        assert policy.observe([report(1, 0.95)], 31.0, None)

    def test_note_scale_out_resets_consecutive_count(self):
        policy = make_policy(k=2, cooldown=10.0)
        policy.observe([report(1, 0.9)], 0.0, None)
        policy.note_scale_out(1, now=2.0)
        # After the cooldown the pre-carve breach must not count.
        assert policy.observe([report(1, 0.9)], 13.0, None) == []
        assert policy.observe([report(1, 0.9)], 18.0, None)

    def test_budget_consumed_in_hotness_order(self):
        # With budget for one split of split_factor 3 (2 extra VMs
        # each), only the hottest slot splits and the budget check uses
        # the per-split cost, not a flat 1.
        policy = make_policy(k=1, split_factor=3)
        decisions = policy.observe(
            [report(1, 0.8), report(2, 0.95), report(3, 0.9)],
            0.0,
            vm_budget_left=3,
        )
        assert [d.slot_uid for d in decisions] == [2]

    def test_budget_exhaustion_leaves_count_intact_for_skipped(self):
        # A slot skipped for budget was never decided: it keeps its
        # accumulated count and fires as soon as budget frees up.
        policy = make_policy(k=1)
        first = policy.observe(
            [report(1, 0.8), report(2, 0.9)], 0.0, vm_budget_left=1
        )
        assert [d.slot_uid for d in first] == [2]
        second = policy.observe([report(1, 0.85)], 5.0, vm_budget_left=1)
        assert [d.slot_uid for d in second] == [1]

    def test_forget_slot_after_retirement_unknown_uid_is_noop(self):
        policy = make_policy(k=1)
        policy.forget_slot(404)  # never observed: must not raise
        assert policy.observe([report(404, 0.9)], 0.0, None)


class TestPredictivePolicy:
    def ramp(self, policy, slot=1, utils=(0.30, 0.45, 0.60), start=0.0):
        decisions = []
        for i, u in enumerate(utils):
            t = start + 5.0 * i
            decisions = policy.observe([report(slot, u, time=t)], t, None)
        return decisions

    def test_steep_ramp_fires_before_threshold(self):
        policy = make_predictive(predict_horizon=10.0)
        decisions = self.ramp(policy)  # slope 0.03/s -> 0.9 projected
        assert len(decisions) == 1
        assert decisions[0].reason == REASON_PREDICTED
        assert policy.predicted_breaches == 1

    def test_flat_warm_slot_never_fires(self):
        policy = make_predictive()
        decisions = self.ramp(policy, utils=(0.6, 0.6, 0.6, 0.6))
        assert decisions == []

    def test_declining_slot_never_fires(self):
        policy = make_predictive()
        decisions = self.ramp(policy, utils=(0.65, 0.55, 0.45))
        assert decisions == []

    def test_too_few_samples_never_fires(self):
        policy = make_predictive(predict_min_samples=4)
        decisions = self.ramp(policy, utils=(0.3, 0.5, 0.69))
        assert decisions == []

    def test_breaching_slot_owned_by_reactive_rule(self):
        # At/above δ the reactive k-consecutive rule decides; the
        # projection must not double-fire for the same slot.
        policy = make_predictive(k=2)
        assert policy.observe([report(1, 0.75, time=0.0)], 0.0, None) == []
        decisions = policy.observe([report(1, 0.80, time=5.0)], 5.0, None)
        assert len(decisions) == 1
        assert decisions[0].reason == REASON_BOTTLENECK
        assert policy.predicted_breaches == 0

    def test_predicted_decision_arms_cooldown(self):
        policy = make_predictive(cooldown=30.0)
        assert self.ramp(policy)
        # Still ramping right after: cooldown suppresses a second fire.
        assert policy.observe([report(1, 0.65, time=15.0)], 15.0, None) == []

    def test_budget_shared_with_reactive_decisions(self):
        policy = make_predictive(k=1)
        for t, u in ((0.0, 0.3), (5.0, 0.45)):
            policy.observe([report(1, u, time=t)], t, None)
        # Slot 2 breaches reactively; slot 1 projects past δ.  One VM of
        # budget: the reactive decision wins it.
        decisions = policy.observe(
            [report(1, 0.6, time=10.0), report(2, 0.9, time=10.0)],
            10.0,
            vm_budget_left=1,
        )
        assert [d.slot_uid for d in decisions] == [2]
        assert decisions[0].reason == REASON_BOTTLENECK

    def test_forget_slot_drops_history(self):
        policy = make_predictive()
        for t, u in ((0.0, 0.3), (5.0, 0.45)):
            policy.observe([report(1, u, time=t)], t, None)
        policy.forget_slot(1)
        # One fresh sample after forgetting: not enough for a projection.
        assert policy.observe([report(1, 0.6, time=10.0)], 10.0, None) == []

    def test_make_policy_factory(self):
        from repro.config import ScalingConfig

        assert type(build_policy(ScalingConfig())) is ThresholdScalingPolicy
        assert (
            type(build_policy(ScalingConfig(policy="predictive")))
            is PredictiveScalingPolicy
        )


class TestUtilizationReport:
    def test_above(self):
        assert report(1, 0.71).above(0.70)
        assert not report(1, 0.69).above(0.70)

    def test_above_is_inclusive_at_the_boundary(self):
        # δ-boundary semantics: exactly-at-threshold counts as a breach.
        assert report(1, 0.70).above(0.70)
