"""Tests for the threshold scaling policy (§5.1)."""

from repro.config import ScalingConfig
from repro.scaling.policy import ThresholdScalingPolicy
from repro.scaling.reports import UtilizationReport


def report(slot_uid, utilization, op_name="op", time=0.0):
    return UtilizationReport(time, op_name, slot_uid, slot_uid, 5.0, utilization)


def make_policy(k=2, threshold=0.7, cooldown=15.0):
    return ThresholdScalingPolicy(
        ScalingConfig(consecutive_reports=k, threshold=threshold, cooldown=cooldown)
    )


class TestThresholdPolicy:
    def test_requires_k_consecutive_reports(self):
        policy = make_policy(k=2)
        assert policy.observe([report(1, 0.9)], now=0.0, vm_budget_left=None) == []
        decisions = policy.observe([report(1, 0.9)], now=5.0, vm_budget_left=None)
        assert len(decisions) == 1
        assert decisions[0].slot_uid == 1

    def test_below_threshold_resets_count(self):
        policy = make_policy(k=2)
        policy.observe([report(1, 0.9)], 0.0, None)
        policy.observe([report(1, 0.5)], 5.0, None)
        assert policy.observe([report(1, 0.9)], 10.0, None) == []

    def test_cooldown_blocks_retrigger(self):
        policy = make_policy(k=1, cooldown=20.0)
        assert policy.observe([report(1, 0.9)], 0.0, None)
        assert policy.observe([report(1, 0.9)], 5.0, None) == []
        assert policy.observe([report(1, 0.9)], 25.0, None)

    def test_every_hot_partition_splits(self):
        # Splitting only the hottest partition grows capacity linearly and
        # loses an exponential load race; all hot slots split per round.
        policy = make_policy(k=1)
        decisions = policy.observe(
            [report(1, 0.8, "op"), report(2, 0.95, "op")], 0.0, None
        )
        assert len(decisions) == 2
        assert decisions[0].slot_uid == 2  # hottest first

    def test_different_operators_scale_together(self):
        policy = make_policy(k=1)
        decisions = policy.observe(
            [report(1, 0.8, "a"), report(2, 0.9, "b")], 0.0, None
        )
        assert {d.op_name for d in decisions} == {"a", "b"}

    def test_vm_budget_limits_decisions(self):
        policy = make_policy(k=1)
        decisions = policy.observe(
            [report(1, 0.8, "a"), report(2, 0.9, "b")], 0.0, vm_budget_left=1
        )
        assert len(decisions) == 1
        assert decisions[0].op_name == "b"  # hottest first

    def test_zero_budget_blocks_all(self):
        policy = make_policy(k=1)
        assert policy.observe([report(1, 0.99)], 0.0, vm_budget_left=0) == []

    def test_forget_slot(self):
        policy = make_policy(k=2)
        policy.observe([report(1, 0.9)], 0.0, None)
        policy.forget_slot(1)
        assert policy.observe([report(1, 0.9)], 5.0, None) == []

    def test_note_scale_out_extends_cooldown(self):
        policy = make_policy(k=1, cooldown=10.0)
        policy.note_scale_out(1, now=0.0)
        assert policy.observe([report(1, 0.9)], 5.0, None) == []
        assert policy.observe([report(1, 0.9)], 11.0, None)


class TestUtilizationReport:
    def test_above(self):
        assert report(1, 0.71).above(0.70)
        assert not report(1, 0.69).above(0.70)
