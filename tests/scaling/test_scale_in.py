"""Tests for scale in (merging partitions, §3.3/§8 extension)."""

import pytest

from repro.errors import ScaleOutError
from repro.scaling.scale_in import ScaleInPolicy
from repro.scaling.reports import UtilizationReport
from tests.conftest import small_system


def feed_many(gen, keys):
    for key in keys:
        gen.feed(key)


def split_counter(system, parallelism=2):
    uid = system.query_manager.slots_of("counter")[0].uid
    assert system.scale_out.scale_out_slot(uid, parallelism)


class TestScaleIn:
    def scaled_then_merged(self, keys=40, merge_at=30.0, until=60.0):
        system, gen, col = small_system(checkpoint_interval=1.0)
        feed_many(gen, [f"k{i}" for i in range(keys)])
        system.run(until=3.0)
        split_counter(system)
        system.run(until=20.0)
        assert system.query_manager.parallelism_of("counter") == 2
        merged = []
        system.sim.schedule_at(
            merge_at,
            lambda: merged.append(system.scale_in.scale_in("counter")),
        )
        system.run(until=until)
        assert merged == [True]
        return system, gen

    def test_merges_back_to_one_partition(self):
        system, _gen = self.scaled_then_merged()
        assert system.query_manager.parallelism_of("counter") == 1
        assert system.scale_in.merges_completed == 1
        assert system.metrics.events_of_kind("scale_in_complete")

    def test_merged_state_is_union(self):
        system, _gen = self.scaled_then_merged(keys=40)
        counter = system.instances_of("counter")[0]
        for i in range(40):
            assert counter.state[f"k{i}"] == 1

    def test_processing_continues_after_merge(self):
        system, gen = self.scaled_then_merged()
        feed_many(gen, ["late1", "late2"])
        system.run(until=70.0)
        counter = system.instances_of("counter")[0]
        assert counter.state["late1"] == 1
        assert counter.state["late2"] == 1

    def test_merge_is_exact_no_duplicates(self):
        system, gen = self.scaled_then_merged(keys=30)
        counter = system.instances_of("counter")[0]
        total = sum(v for v in counter.state.entries.values() if isinstance(v, int))
        assert total == 30

    def test_old_vms_released(self):
        system, _gen = self.scaled_then_merged()
        released = [vm for vm in system.provider.vms if vm.released_at is not None]
        assert len(released) >= 2

    def test_merged_partition_has_backup(self):
        system, _gen = self.scaled_then_merged()
        counter = system.instances_of("counter")[0]
        assert system.backup_of(counter.uid) is not None

    def test_merged_partition_recoverable(self):
        system, gen = self.scaled_then_merged()
        feed_many(gen, ["x"])
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 65.0)
        system.run(until=100.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        counter = system.instances_of("counter")[0]
        assert counter.state["x"] == 1

    def test_upstream_routing_updated(self):
        system, _gen = self.scaled_then_merged()
        mid = system.instances_of("mid")[0]
        counter = system.instances_of("counter")[0]
        assert set(mid.routing["counter"].targets) == {counter.uid}

    def test_single_partition_not_merged(self):
        system, gen, _col = small_system()
        assert not system.scale_in.scale_in("counter")

    def test_stateless_operator_mergeable(self):
        system, gen, col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a", "b"])
        system.run(until=3.0)
        uid = system.query_manager.slots_of("mid")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        assert system.scale_in.scale_in("mid")
        system.run(until=40.0)
        assert system.query_manager.parallelism_of("mid") == 1
        feed_many(gen, ["c"])
        system.run(until=45.0)
        assert system.instances_of("counter")[0].state["c"] == 1

    def test_operator_without_merge_values_rejected(self):
        from repro.core.operator import Operator
        from repro.core.query import QueryGraph
        from repro.runtime.sink import SinkOperator
        from repro.runtime.source import SourceOperator
        from repro.config import SystemConfig
        from repro.runtime.system import StreamProcessingSystem
        from tests.conftest import ManualGenerator

        class NoMerge(Operator):
            def __init__(self):
                super().__init__("nomerge", stateful=True)

            def on_tuple(self, tup, ctx):
                ctx.state[tup.key] = 1

        graph = QueryGraph()
        graph.add_operator(SourceOperator("source"), source=True)
        graph.add_operator(NoMerge())
        graph.add_operator(SinkOperator("sink"), sink=True)
        graph.chain("source", "nomerge", "sink")
        config = SystemConfig()
        config.scaling.enabled = False
        system = StreamProcessingSystem(config)
        system.deploy(
            graph,
            parallelism={"nomerge": 2},
            generators={"source": ManualGenerator()},
        )
        with pytest.raises(ScaleOutError):
            system.scale_in.scale_in("nomerge")


class TestScaleInPolicy:
    def report(self, op, uid, util):
        return UtilizationReport(0.0, op, uid, uid, 5.0, util)

    def test_merges_after_sustained_low_utilization(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, [f"k{i}" for i in range(10)])
        system.run(until=3.0)
        split_counter(system)
        system.run(until=20.0)
        from repro.scaling.scale_in import ScaleInPolicy

        policy = ScaleInPolicy(
            system, system.scale_in, low_threshold=0.3, consecutive_reports=2
        )
        uids = [s.uid for s in system.query_manager.slots_of("counter")]
        reports = [self.report("counter", uid, 0.05) for uid in uids]
        assert policy.observe(reports) == []
        assert policy.observe(reports) == ["counter"]
        system.run(until=40.0)
        assert system.query_manager.parallelism_of("counter") == 1

    def test_hot_operator_not_merged(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        feed_many(gen, ["a"])
        system.run(until=3.0)
        split_counter(system)
        system.run(until=20.0)
        policy = ScaleInPolicy(system, system.scale_in, consecutive_reports=1)
        uids = [s.uid for s in system.query_manager.slots_of("counter")]
        reports = [self.report("counter", uids[0], 0.05), self.report("counter", uids[1], 0.8)]
        assert policy.observe(reports) == []

    def test_single_partition_ignored(self):
        system, gen, _col = small_system()
        policy = ScaleInPolicy(system, system.scale_in, consecutive_reports=1)
        uid = system.query_manager.slots_of("counter")[0].uid
        assert policy.observe([self.report("counter", uid, 0.01)]) == []
