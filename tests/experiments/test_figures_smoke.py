"""Smoke tests for every figure driver at miniature scale.

Each driver must run end to end, return a well-formed FigureResult and
show the *direction* of the paper's effect where one run suffices.  The
full-scale regeneration lives in benchmarks/.
"""

import math

import pytest

from repro.experiments import figures
from repro.experiments.harness import FigureResult
from repro.experiments.report import render_table, render_series, sparkline


def assert_result_sane(result: FigureResult, rows_at_least=1):
    assert result.figure_id
    assert result.headers
    assert len(result.rows) >= rows_at_least
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.render()
    assert result.figure_id in text


class TestLRBFigures:
    @pytest.fixture(scope="class")
    def fig6(self):
        figures._lrb_closed_loop.cache_clear()
        return figures.fig06_lrb_scaleout(num_xways=16, duration=200.0, quantum=1.0)

    def test_fig06(self, fig6):
        assert_result_sane(fig6, rows_at_least=4)
        assert "input rate" in fig6.series
        metrics = dict((r[0], r[1]) for r in fig6.rows)
        assert metrics["final worker VMs"] >= 5

    def test_fig07_shares_run(self, fig6):
        result = figures.fig07_lrb_latency(num_xways=16, duration=200.0, quantum=1.0)
        assert_result_sane(result)
        metrics = dict((r[0], r[1]) for r in result.rows)
        assert metrics["median latency (ms)"] > 0
        assert metrics["95th percentile (ms)"] >= metrics["median latency (ms)"]


class TestOpenLoopFigure:
    def test_fig08(self):
        result = figures.fig08_openloop(rate=40_000.0, duration=150.0, sources=3)
        assert_result_sane(result)
        metrics = dict((r[0], r[1]) for r in result.rows)
        assert metrics["tuples dropped during overload"] > 0
        assert metrics["final worker VMs"] >= 2


class TestPolicyFigures:
    def test_fig09_vm_count_decreases_with_threshold(self):
        result = figures.fig09_threshold(
            thresholds=(0.30, 0.90), num_xways=12, duration=150.0, quantum=1.0
        )
        assert_result_sane(result, rows_at_least=2)
        vms = [row[1] for row in result.rows]
        assert vms[0] >= vms[-1]

    def test_fig10_manual_vs_dynamic(self):
        result = figures.fig10_manual_vs_dynamic(
            vm_budgets=(5, 10), num_xways=12, duration=150.0, quantum=1.0
        )
        assert_result_sane(result, rows_at_least=3)
        modes = [row[0] for row in result.rows]
        assert modes.count("manual") == 2
        assert modes.count("dynamic") == 1
        manual = {row[1]: row[3] for row in result.rows if row[0] == "manual"}
        assert manual[5] > manual[10]  # fewer VMs → worse p95


class TestRecoveryFigures:
    def test_fig11_rsm_fastest(self):
        result = figures.fig11_recovery_strategies(
            rates=(200.0,), checkpoint_interval=5.0, repeats=1
        )
        assert_result_sane(result)
        _rate, rsm, sr, ub = result.rows[0]
        assert rsm < sr and rsm < ub

    def test_fig12_monotone_in_interval(self):
        result = figures.fig12_checkpoint_interval(
            intervals=(2.0, 20.0), rates=(300.0,), repeats=1
        )
        assert_result_sane(result, rows_at_least=2)
        assert result.rows[0][1] < result.rows[1][1]

    def test_fig13_parallel_crossover_direction(self):
        result = figures.fig13_parallel_recovery(
            intervals=(2.0, 30.0), rate=300.0, repeats=1
        )
        assert_result_sane(result, rows_at_least=2)
        short_serial, short_parallel = result.rows[0][1], result.rows[0][2]
        long_serial, long_parallel = result.rows[1][1], result.rows[1][2]
        # Parallel overhead dominates at short intervals...
        assert short_parallel > short_serial
        # ...and shrinks (relatively) as replay grows.
        assert (long_parallel - long_serial) < (short_parallel - short_serial)


class TestOverheadFigures:
    def test_fig14_latency_grows_with_state(self):
        result = figures.fig14_state_size(rates=(500.0,), duration=40.0)
        assert_result_sane(result, rows_at_least=4)
        by_label = {row[0]: row[1] for row in result.rows}
        assert by_label["large (10^5)"] > by_label["small (10^2)"]
        assert by_label["no checkpointing"] <= by_label["small (10^2)"]

    def test_fig15_tradeoff_directions(self):
        result = figures.fig15_tradeoff(intervals=(2.0, 25.0), rate=500.0)
        assert_result_sane(result, rows_at_least=2)
        short, long = result.rows[0], result.rows[1]
        assert short[2] < long[2]  # recovery time grows with interval
        assert short[1] >= long[1]  # latency overhead shrinks with interval


class TestHeadlineAndAblation:
    def test_lrating_probe(self):
        result = figures.lrating_probe(l_values=(12,), duration=150.0, quantum=1.0)
        assert_result_sane(result)
        row = result.rows[0]
        assert row[0] == 12
        assert row[3] is True  # sustained

    def test_vm_pool_ablation(self):
        result = figures.ablation_vm_pool(
            pool_sizes=(0, 3), num_xways=12, duration=200.0, quantum=1.0,
            provisioning_delay=60.0,
        )
        assert_result_sane(result, rows_at_least=2)
        no_pool = result.rows[0]
        with_pool = result.rows[1]
        if no_pool[2] is not None and with_pool[2] is not None:
            assert no_pool[2] > with_pool[2]


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]

    def test_render_series_downsamples(self):
        text = render_series("x", list(range(100)), list(range(100)), max_points=10)
        assert text.count("\n") <= 13

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] != line[-1]

    def test_sparkline_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
