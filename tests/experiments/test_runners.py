"""Tests for the run-analysis helpers, on hand-built metrics (no sim)."""

import math

import numpy as np

from repro.config import SystemConfig
from repro.experiments.runners import LRBRun, ScaleOutRun, WikipediaRun
from repro.runtime.system import StreamProcessingSystem


def bare_system() -> StreamProcessingSystem:
    config = SystemConfig()
    config.scaling.enabled = False
    return StreamProcessingSystem(config)


def fill_rates(system, name, pairs):
    series = system.metrics.rate(name, 1.0)
    for t, count in pairs:
        series.record(t, count)


class TestScaleOutRunHelpers:
    def test_latency_percentile_empty_is_nan(self):
        run = ScaleOutRun(bare_system(), duration=10.0)
        assert math.isnan(run.latency_percentile(95))

    def test_peaks_and_series(self):
        system = bare_system()
        fill_rates(system, "input", [(0.5, 10), (1.5, 30)])
        fill_rates(system, "processed:sink", [(0.5, 8), (1.5, 28)])
        run = ScaleOutRun(system, duration=2.0)
        assert run.peak_input_rate() == 30.0
        assert run.peak_throughput() == 28.0
        times, rates = run.input_rate_series()
        assert times.tolist() == [0.5, 1.5]

    def test_dropped_weight_sums_overflow_counters(self):
        system = bare_system()
        system.metrics.increment("overflow:map", 5)
        system.metrics.increment("overflow:reduce", 2)
        system.metrics.increment("duplicates:map", 99)
        run = ScaleOutRun(system, duration=1.0)
        assert run.dropped_weight() == 7

    def test_scale_out_times(self):
        system = bare_system()
        system.metrics.mark_event(3.0, "scale_out", "x")
        system.metrics.mark_event(7.0, "scale_out", "y")
        system.metrics.mark_event(9.0, "failure", "z")
        run = ScaleOutRun(system, duration=10.0)
        assert run.scale_out_times() == [3.0, 7.0]


class TestWordCountPhaseBreakdown:
    def test_breakdown_from_recovery_timeline(self):
        from repro.experiments.harness import WordCountRun

        system = bare_system()
        timeline = system.metrics.start_phase_timeline(
            "recovery", "counter", [7], 0.0
        )
        timeline.enter("PLAN", 0.0)
        timeline.enter("TRANSFER", 1.0)
        timeline.enter("DONE", 3.0)
        timeline.close(3.0, "done")
        run = WordCountRun(system, query=None)
        assert run.recovery_phase_breakdown() == {
            "PLAN": 1.0,
            "TRANSFER": 2.0,
            "DONE": 0.0,
        }
        assert run.recovery_phase_breakdown(op="mid") == {}


class TestLRBRunSustained:
    def make(self, in_tail, out_tail, duration=100.0):
        system = bare_system()
        for t in range(90, 100):
            fill_rates(system, "input", [(t + 0.5, in_tail)])
            fill_rates(system, "processed:sink", [(t + 0.5, out_tail)])
        run = LRBRun(system, duration)
        return run

    def test_sustained_when_tracking(self):
        assert self.make(100, 95).sustained(tolerance=0.15)

    def test_not_sustained_when_collapsed(self):
        assert not self.make(100, 40).sustained(tolerance=0.15)

    def test_no_data_is_not_sustained(self):
        run = LRBRun(bare_system(), 100.0)
        assert not run.sustained()


class TestWikipediaTimeToSustain:
    def test_first_time_reaching_input(self):
        system = bare_system()
        for t in range(10):
            fill_rates(system, "input", [(t + 0.5, 100)])
        for t, rate in enumerate([10, 30, 60, 95, 99, 100, 100, 100, 100, 100]):
            fill_rates(system, "processed:map", [(t + 0.5, rate)])
        run = WikipediaRun(system, 10.0)

        class Query:
            map_name = "map"

        run.query = Query()
        assert run.time_to_sustain(tolerance=0.05) == 3.5

    def test_never_sustained(self):
        system = bare_system()
        fill_rates(system, "input", [(0.5, 100)])
        fill_rates(system, "processed:map", [(0.5, 10)])
        run = WikipediaRun(system, 1.0)

        class Query:
            map_name = "map"

        run.query = Query()
        assert run.time_to_sustain() is None
