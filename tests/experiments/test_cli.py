"""Tests for the ``python -m repro`` figure CLI."""

import pytest

import repro.__main__ as cli
from repro.experiments.harness import FigureResult


@pytest.fixture
def fake_driver(monkeypatch):
    calls = []

    def driver(**kwargs):
        calls.append(kwargs)
        return FigureResult("Fig. X", "fake", ["a"], [[1]])

    monkeypatch.setitem(cli.FIGURES, "fig06", (driver, {"big": True}, {"big": False}))
    return calls


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig15" in out and "lrating" in out
        assert "trace" in out
        assert "bench" in out

    def test_unknown_figure_errors(self):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_runs_paper_scale_by_default(self, fake_driver, capsys):
        assert cli.main(["fig06"]) == 0
        assert fake_driver == [{"big": True}]
        assert "Fig. X" in capsys.readouterr().out

    def test_quick_flag_switches_params(self, fake_driver):
        cli.main(["fig06", "--quick"])
        assert fake_driver == [{"big": False}]

    def test_every_registered_figure_has_quick_params(self):
        for name, (driver, _paper, quick) in cli.FIGURES.items():
            assert callable(driver), name
            assert isinstance(quick, dict), name


class TestTraceCommand:
    def test_trace_subcommand_dispatches(self, monkeypatch, capsys, tmp_path):
        calls = []

        class FakeReport:
            def render(self):
                return "trace of wordcount (seed 9)"

        def fake_run_trace(**kwargs):
            calls.append(kwargs)
            return FakeReport()

        monkeypatch.setattr(cli, "run_trace", fake_run_trace)
        out = str(tmp_path / "t.jsonl")
        assert cli.main(
            ["trace", "wordcount", "--seed", "9", "--duration", "42",
             "--fail-at", "20", "--out", out]
        ) == 0
        assert calls == [
            {
                "workload": "wordcount",
                "seed": 9,
                "duration": 42.0,
                "fail_at": 20.0,
                "checkpoint_mode": None,
                "checkpoint_interval": 2.0,
                "out": out,
            }
        ]
        assert "trace of wordcount (seed 9)" in capsys.readouterr().out

    def test_trace_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            cli.main(["trace", "nope"])


class TestBenchCommand:
    def test_bench_subcommand_dispatches(self, monkeypatch, capsys, tmp_path):
        calls = []

        def fake_run_bench(preset, out):
            calls.append((preset, out))
            return {
                "preset": preset,
                "results": {
                    "kernel": {
                        "events_per_sec": 1.0,
                        "events": 1,
                        "wall_seconds": 1.0,
                    },
                    "throughput": {
                        "speedup": 2.0,
                        "message_reduction": 10.0,
                        "unbatched": {"tuples_per_wall_sec": 1.0},
                        "batched": {"tuples_per_wall_sec": 2.0},
                    },
                    "checkpoint": {},
                },
            }

        import repro.experiments.bench as bench_module

        monkeypatch.setattr(bench_module, "run_bench", fake_run_bench)
        out = str(tmp_path / "bench.json")
        assert cli.main(["bench", "--preset", "smoke", "--out", out]) == 0
        assert calls == [("smoke", out)]
        assert "2.0x" in capsys.readouterr().out

    def test_bench_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            cli.main(["bench", "--preset", "nope"])
