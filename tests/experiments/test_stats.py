"""Tests for the statistical helpers."""

import pytest

from repro.errors import ReproError
from repro.experiments.stats import Comparison, Summary, compare, repeat, summarize


class TestSummarize:
    def test_mean_and_interval(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == 3.0
        assert summary.n == 5
        assert summary.ci_low < 3.0 < summary.ci_high

    def test_interval_shrinks_with_samples(self):
        narrow = summarize([3.0] * 2 + [3.1] * 2 + [2.9] * 2)
        wide = summarize([3.0, 3.1])
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)

    def test_single_sample_degenerates(self):
        summary = summarize([7.5])
        assert summary.mean == summary.ci_low == summary.ci_high == 7.5
        assert summary.std == 0.0

    def test_interval_contains_true_mean_mostly(self):
        import numpy as np

        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(100):
            sample = rng.normal(10.0, 2.0, size=20)
            summary = summarize(list(sample), confidence=0.95)
            if summary.ci_low <= 10.0 <= summary.ci_high:
                hits += 1
        assert hits >= 85  # ~95 expected

    def test_str_format(self):
        assert "95% CI" in str(summarize([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ReproError):
            summarize([1.0], confidence=1.5)


class TestRepeat:
    def test_distinct_seeds_passed(self):
        seeds = []
        repeat(lambda s: seeds.append(s) or float(s), 3, seed=10)
        assert seeds == [10, 11, 12]

    def test_zero_repeats_rejected(self):
        with pytest.raises(ReproError):
            repeat(lambda s: 0.0, 0)


class TestCompare:
    def test_clearly_different_samples(self):
        result = compare([1.0, 1.1, 0.9, 1.05], [5.0, 5.1, 4.9, 5.05])
        assert result.significant()
        assert result.mean_a < result.mean_b

    def test_identical_distributions_not_significant(self):
        import numpy as np

        rng = np.random.default_rng(1)
        a = list(rng.normal(3.0, 0.5, 10))
        b = list(rng.normal(3.0, 0.5, 10))
        result = compare(a, b)
        assert not result.significant(alpha=0.01)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ReproError):
            compare([1.0], [2.0, 3.0])

    def test_on_real_recovery_measurements(self):
        """R+SM beats UB significantly across seeds (tiny-scale check)."""
        from repro.experiments.harness import measure_recovery_time

        rsm = repeat(
            lambda s: measure_recovery_time(150.0, 2.0, "rsm", seed=s), 3
        )
        ub = repeat(
            lambda s: measure_recovery_time(150.0, 2.0, "upstream_backup", seed=s),
            3,
        )
        result = compare(rsm, ub)
        assert result.mean_a < result.mean_b
