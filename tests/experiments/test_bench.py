"""Smoke tests for the data-plane bench harness and its CI compare gate."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.bench import (
    bench_checkpoint,
    bench_kernel,
    render_report,
    run_bench,
)


class TestHarness:
    def test_smoke_preset_report_shape(self, tmp_path):
        out = tmp_path / "bench.json"
        report = run_bench(preset="smoke", out=str(out))
        assert report["preset"] == "smoke"
        results = report["results"]
        assert results["kernel"]["events_per_sec"] > 0
        thr = results["throughput"]
        assert thr["batched"]["tuples_processed"] > 0
        assert thr["speedup"] > 0
        assert thr["batched"]["network_messages"] < (
            thr["unbatched"]["network_messages"]
        )
        assert "recovery" not in results  # smoke skips the failure run
        migration = results["migration"]
        assert migration["chunked"]["chunks_shipped"] > 1
        assert migration["all_at_once"]["chunks_shipped"] == 1
        # Chunking strictly shortens the longest stop-the-world stall.
        assert migration["pause_reduction"] > 1.0
        backends = results["backends"]
        assert set(backends) == {"memory", "spill", "external"}
        hot_bound = report["params"]["backend_hot_entries"]
        # The memory backend keeps everything resident; the tiered
        # backends bound the hot tier at O(max_hot_entries).
        assert backends["memory"]["peak_resident_entries"] >= (
            report["params"]["backend_entries"]
        )
        for kind in ("spill", "external"):
            assert backends[kind]["peak_resident_entries"] <= hot_bound + 1
            assert backends[kind]["spills"] > 0
            assert backends[kind]["state_io_seconds"] > 0
            assert "recovery" not in backends[kind]  # smoke skips it
        assert backends["external"]["external_write_io_seconds"] > 0
        assert backends["memory"]["external_write_io_seconds"] == 0
        dataplane = results["dataplane"]
        # The operator-level race drains every prebuilt tuple both ways.
        n_tuples = report["params"]["operator_tuples"]
        assert dataplane["rows"]["tuples"] == n_tuples
        assert dataplane["columnar"]["tuples"] == n_tuples
        assert dataplane["columnar_speedup"] > 0
        pipeline = dataplane["pipeline"]
        # Pure fast path: identical simulated behaviour either way.
        assert pipeline["columnar"]["tuples_processed"] == (
            pipeline["rows"]["tuples_processed"]
        )
        assert pipeline["columnar"]["network_messages"] == (
            pipeline["rows"]["network_messages"]
        )
        backpressure = dataplane["backpressure"]
        assert backpressure["on"]["bounded"]
        assert backpressure["on"]["peak_queue_depth"] <= (
            backpressure["on"]["depth_bound"]
        )
        assert backpressure["off"]["peak_queue_depth"] > (
            backpressure["on"]["peak_queue_depth"]
        )
        on_disk = json.loads(out.read_text())
        assert on_disk["results"]["kernel"] == results["kernel"]
        assert "events/s" in render_report(report)
        assert "migration" in render_report(report)
        assert "backend spill" in render_report(report)
        assert "dataplane" in render_report(report)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ReproError):
            run_bench(preset="nope")

    def test_kernel_bench_processes_all_events(self):
        result = bench_kernel(5_000)
        assert result["events"] == 5_000

    def test_cow_snapshot_beats_eager_copy(self):
        result = bench_checkpoint(sizes=(5_000,), touched_keys=100)
        row = result["5000"]
        # The CoW snapshot is a shallow dict copy; an eager per-value
        # deep copy of 5k list values cannot be faster.
        assert row["cow_snapshot_ms"] < row["eager_copy_ms"]
        assert row["touched_keys"] == 100


class TestCompareScript:
    def _write(self, path, speedup, messages=100):
        path.write_text(
            json.dumps(
                {
                    "preset": "small",
                    "results": {
                        "kernel": {"events_per_sec": 1_000_000.0},
                        "throughput": {
                            "speedup": speedup,
                            "unbatched": {
                                "tuples_per_wall_sec": 50_000.0,
                                "network_messages": messages,
                            },
                            "batched": {
                                "tuples_per_wall_sec": 50_000.0 * speedup,
                                "network_messages": messages // 10,
                            },
                        },
                        "recovery": {"sim_recovery_seconds": 2.0},
                    },
                }
            )
        )

    def _main(self):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "compare_bench.py"
        )
        spec = importlib.util.spec_from_file_location("compare_bench", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main

    def test_identical_reports_pass(self, tmp_path):
        main = self._main()
        self._write(tmp_path / "a.json", speedup=2.5)
        self._write(tmp_path / "b.json", speedup=2.5)
        assert main([str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 0

    def test_large_regression_fails(self, tmp_path):
        main = self._main()
        self._write(tmp_path / "cur.json", speedup=1.0)
        self._write(tmp_path / "base.json", speedup=2.5)
        assert (
            main([str(tmp_path / "cur.json"), str(tmp_path / "base.json")]) == 1
        )

    def test_improvement_never_fails(self, tmp_path):
        main = self._main()
        self._write(tmp_path / "cur.json", speedup=5.0)
        self._write(tmp_path / "base.json", speedup=2.5)
        # batched tup/s went up 2x; only regressions gate.
        assert (
            main([str(tmp_path / "cur.json"), str(tmp_path / "base.json")]) == 0
        )

    def test_deterministic_drift_fails(self, tmp_path):
        main = self._main()
        self._write(tmp_path / "cur.json", speedup=2.5, messages=110)
        self._write(tmp_path / "base.json", speedup=2.5, messages=100)
        assert (
            main([str(tmp_path / "cur.json"), str(tmp_path / "base.json")]) == 1
        )
