"""Backend compatibility: the memory default is bit-identical, tiered
backends are content-identical.

The `StateBackend` seam must not change what a default run computes:
sink output and checkpointed state bytes on the word-count and
Wikipedia top-k workloads stay exactly what they were before the seam
existed (`MemoryBackend` is a pass-through).  The spill and external
backends change *where entries live* and what the I/O costs, but not
the answers: the same windows hold the same counts.
"""

import json

from repro.config import SystemConfig
from repro.core.backend import ExternalBackend, MemoryBackend, SpillBackend
from repro.core.spill import SpillableState
from repro.core.state import ProcessingState
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wordcount import build_word_count_query


def _checkpoint_bytes(system, op_name: str) -> str:
    """Canonical serialisation of every slot's checkpointable state."""
    slots = []
    for instance in system.instances_of(op_name):
        snap = instance.state.snapshot()
        slots.append(
            {
                "entries": sorted(
                    (repr(k), repr(v)) for k, v in snap.entries.items()
                ),
                "positions": sorted(snap.positions.items()),
                "out_clock": snap.out_clock,
            }
        )
    return json.dumps(slots, sort_keys=True)


def _run_wordcount(backend_kind=None, max_hot=50, until=40.0):
    query = build_word_count_query(
        rate=300.0, window=5.0, vocabulary_size=200, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    if backend_kind is not None:
        config.state_backend.kind = backend_kind
        config.state_backend.max_hot_entries = max_hot
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    system.run(until=until)
    return system, query


class TestMemoryDefaultBitCompatible:
    def test_default_wordcount_uses_plain_memory_state(self):
        system, _query = _run_wordcount(until=5.0)
        for instance in system.instances.values():
            assert isinstance(instance.backend, MemoryBackend)
            assert not isinstance(instance.state, SpillableState)

    def _run_wikipedia(self, backend_kind=None):
        from repro.workloads.wikipedia import build_wikipedia_topk_query

        bundle, parallelism = build_wikipedia_topk_query(
            rate=2_000.0, sources=2, emit_interval=5.0
        )
        config = SystemConfig()
        config.scaling.enabled = False
        if backend_kind is not None:
            config.state_backend.kind = backend_kind
        system = StreamProcessingSystem(config)
        system.deploy(
            bundle.graph, generators=bundle.generators, parallelism=parallelism
        )
        system.run(until=20.0)
        return system, bundle

    def test_default_wikipedia_uses_plain_memory_state(self):
        system, bundle = self._run_wikipedia()
        for instance in system.instances.values():
            assert isinstance(instance.backend, MemoryBackend)
            assert not isinstance(instance.state, SpillableState)
        assert bundle.collector.ranking()

    def test_explicit_memory_wikipedia_matches_default_exactly(self):
        base_sys, base_bundle = self._run_wikipedia()
        mem_sys, mem_bundle = self._run_wikipedia(backend_kind="memory")
        assert base_bundle.collector.ranking() == mem_bundle.collector.ranking()
        assert _checkpoint_bytes(base_sys, "reduce") == _checkpoint_bytes(
            mem_sys, "reduce"
        )
        assert base_sys.metrics.events == mem_sys.metrics.events

    def test_explicit_memory_kind_matches_default_exactly(self):
        """Golden run: sink output, event stream and checkpoint bytes of
        a default run equal those of an explicit kind="memory" run."""
        base_sys, base_query = _run_wordcount()
        mem_sys, mem_query = _run_wordcount(backend_kind="memory")
        assert dict(base_query.collector.results) == dict(
            mem_query.collector.results
        )
        assert _checkpoint_bytes(base_sys, "counter") == _checkpoint_bytes(
            mem_sys, "counter"
        )
        assert base_sys.metrics.events == mem_sys.metrics.events
        assert base_sys.network.messages_sent == mem_sys.network.messages_sent


class TestTieredBackendsContentEquivalent:
    def test_spill_and_external_compute_the_same_windows(self):
        base_sys, base_query = _run_wordcount()
        for kind, backend_cls in (
            ("spill", SpillBackend),
            ("external", ExternalBackend),
        ):
            tiered_sys, tiered_query = _run_wordcount(backend_kind=kind)
            counter = tiered_sys.instances_of("counter")[0]
            assert isinstance(counter.backend, backend_cls)
            assert isinstance(counter.state, SpillableState)
            assert counter.state.spilled_entries > 0  # tiering engaged
            for window in sorted(base_query.collector.windows()):
                assert base_query.collector.counts_for_window(
                    window
                ) == tiered_query.collector.counts_for_window(
                    window
                ), f"{kind}: window {window} differs"

    def test_tiered_checkpoints_flatten_to_identical_state(self):
        """A spilled slot's checkpoint covers both tiers and flattens to
        a plain, partitionable state holding the same entries."""
        system, _query = _run_wordcount(backend_kind="spill")
        counter = system.instances_of("counter")[0]
        snap = counter.state.snapshot()
        assert type(snap) is ProcessingState
        assert dict(snap.entries) == dict(counter.state.items())
