"""Open-loop scale-out behaviour and the VM pool's effect on scale-out
latency (§5.2, §6.1)."""

import pytest

from repro.experiments.harness import default_config
from repro.experiments.runners import run_wikipedia_openloop
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wordcount import build_word_count_query
from repro.workloads.synthetic import constant_rate


class TestOpenLoopScaleOut:
    @pytest.fixture(scope="class")
    def run(self):
        return run_wikipedia_openloop(rate=60_000.0, duration=240.0, sources=4, seed=1)

    def test_drops_during_initial_overload(self, run):
        assert run.dropped_weight() > 0

    def test_scales_until_sustained(self, run):
        sustained_at = run.time_to_sustain(tolerance=0.10)
        assert sustained_at is not None
        assert sustained_at < 200.0

    def test_map_scaled_out(self, run):
        assert run.system.query_manager.parallelism_of("map") >= 2

    def test_topk_ranking_sensible(self, run):
        ranking = run.query.collector.ranking()
        assert ranking
        assert ranking[0][0] == "lang000"  # Zipf head

    def test_no_drops_near_end(self, run):
        overflow = run.system.metrics.rate("overflow:map")
        # Overflow is recorded via counters, not rate series; check the
        # consumed rate reaches the input rate instead.
        in_t, in_r = run.input_rate_series()
        out_t, out_r = run.consumed_series()
        assert out_r[-3:].mean() >= in_r[-3:].mean() * 0.9


class TestVMPoolEffect:
    def scale_out_duration(self, pool_size):
        query = build_word_count_query(
            rate=constant_rate(200.0), vocabulary_size=200, quantum=0.1
        )
        config = default_config()
        config.scaling.enabled = False
        config.cloud.pool_size = pool_size
        config.cloud.provisioning_delay = 60.0
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, generators=query.generators)
        durations = []

        def trigger():
            uid = system.query_manager.slots_of("counter")[0].uid
            assert system.scale_out.scale_out_slot(
                uid, 2, on_complete=durations.append
            )

        system.sim.schedule_at(20.0, trigger)
        system.run(until=150.0)
        assert durations
        return durations[0]

    def test_pool_makes_scale_out_fast(self):
        with_pool = self.scale_out_duration(pool_size=3)
        without_pool = self.scale_out_duration(pool_size=0)
        assert with_pool < 10.0
        assert without_pool > 55.0  # pays the provisioning delay
        assert without_pool > with_pool * 5
