"""End-to-end correctness: failures and recovery must not change results.

This is the paper's central correctness claim ("recover from failures
without affecting processing results").  A deterministic word-count run
with a failure + R+SM recovery must produce byte-identical window results
to a failure-free run; the rebuild-based baselines come with documented
weaker guarantees, asserted as such.
"""

import pytest

from repro.config import SystemConfig
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wordcount import build_word_count_query


def run_wordcount(
    fail_at=None,
    strategy="rsm",
    recovery_parallelism=1,
    until=100.0,
    rate=250.0,
    seed=0,
    fail_op="counter",
):
    query = build_word_count_query(
        rate=rate, window=30.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.seed = seed
    config.scaling.enabled = False
    config.fault.strategy = strategy
    config.fault.recovery_parallelism = recovery_parallelism
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    if fail_at is not None:
        system.injector.fail_target_at(lambda: system.vm_of(fail_op), fail_at)
    system.run(until=until)
    return system, query


@pytest.fixture(scope="module")
def baseline():
    return run_wordcount()


def windows_equal(base_query, other_query, windows=None):
    base_windows = sorted(base_query.collector.windows())
    if windows is None:
        windows = base_windows
    return {
        w: base_query.collector.counts_for_window(w)
        == other_query.collector.counts_for_window(w)
        for w in windows
    }


class TestRsmRecoveryExactness:
    def test_serial_recovery_identical_results(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(fail_at=40.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        equal = windows_equal(base, query)
        assert all(equal.values()), equal

    def test_parallel_recovery_identical_results(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(fail_at=40.0, recovery_parallelism=2)
        assert system.query_manager.parallelism_of("counter") == 2
        equal = windows_equal(base, query)
        assert all(equal.values()), equal

    def test_recovery_of_stateless_splitter_identical(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(fail_at=40.0, fail_op="splitter")
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        equal = windows_equal(base, query)
        assert all(equal.values()), equal

    def test_failure_near_window_boundary(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(fail_at=59.5)
        equal = windows_equal(base, query)
        assert all(equal.values()), equal

    def test_two_successive_failures(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(fail_at=35.0, until=110.0)
        system2, query2 = None, None  # second failure injected below
        # Run a fresh system with two failures instead.
        query3 = build_word_count_query(
            rate=250.0, window=30.0, vocabulary_size=400, quantum=0.1
        )
        config = SystemConfig()
        config.scaling.enabled = False
        system3 = StreamProcessingSystem(config)
        system3.deploy(query3.graph, generators=query3.generators)
        system3.injector.fail_target_at(lambda: system3.vm_of("counter"), 35.0)
        system3.injector.fail_target_at(lambda: system3.vm_of("counter"), 60.0)
        system3.run(until=100.0)
        assert len(system3.metrics.events_of_kind("recovery_complete")) == 2
        equal = windows_equal(base, query3)
        assert all(equal.values()), equal


class TestActiveReplicationExactness:
    def test_failover_identical_results(self, baseline):
        """Active replication failover is invisible in windowed results."""
        _bs, base = baseline
        system, query = run_wordcount(fail_at=40.0, strategy="active_replication")
        assert system.replication.promotions == 1
        equal = windows_equal(base, query)
        assert all(equal.values()), equal

    def test_failover_recovery_faster_than_rsm(self, baseline):
        system, _query = run_wordcount(
            fail_at=40.0, strategy="active_replication", until=70.0
        )
        ar = system.recovery.recovery_durations[-1][1]
        rsm_system, _q = run_wordcount(fail_at=40.0, until=70.0)
        rsm = rsm_system.recovery.recovery_durations[-1][1]
        assert ar < rsm


class TestBaselineStrategiesDocumentedSemantics:
    def test_upstream_backup_window_spanning_failure_exact(self, baseline):
        """UB rebuilds the open window exactly (its buffer covers it) but
        loses state older than the buffer horizon."""
        _bs, base = baseline
        system, query = run_wordcount(fail_at=40.0, strategy="upstream_backup")
        equal = windows_equal(base, query)
        assert equal[1]  # window 30-60 spans the failure: exact
        assert not equal[0]  # window 0-30 predates the buffer: lost counts

    def test_source_replay_loses_paused_tuples(self, baseline):
        """SR stops generation during recovery; those tuples are gone, so
        the window spanning the failure under-counts."""
        _bs, base = baseline
        system, query = run_wordcount(fail_at=40.0, strategy="source_replay")
        base_w1 = base.collector.counts_for_window(1)
        sr_w1 = query.collector.counts_for_window(1)
        assert sum(sr_w1.values()) < sum(base_w1.values())

    def test_rsm_beats_baselines_on_recovery_time(self):
        _sys_rsm, _q = run_wordcount(fail_at=40.0, until=70.0)
        rsm = _sys_rsm.recovery.recovery_durations[-1][1]
        sys_ub, _q = run_wordcount(
            fail_at=40.0, until=70.0, strategy="upstream_backup"
        )
        ub = sys_ub.recovery.recovery_durations[-1][1]
        assert rsm < ub
