"""End-to-end LRB runs at small scale: dynamic scale out, results, latency."""

import pytest

from repro.experiments.runners import run_lrb
from repro.workloads.lrb import manual_parallelism


@pytest.fixture(scope="module")
def lrb_run():
    """One shared small-scale closed-loop run with dynamic scale out."""
    return run_lrb(num_xways=24, duration=240.0, quantum=1.0, seed=1)


class TestDynamicScaleOut:
    def test_scales_out_under_ramp(self, lrb_run):
        assert len(lrb_run.scale_out_times()) >= 1
        assert lrb_run.final_worker_vms() > 5

    def test_toll_calculator_most_partitioned(self, lrb_run):
        qm = lrb_run.system.query_manager
        toll_calc = qm.parallelism_of("toll_calc")
        assert toll_calc == max(
            qm.parallelism_of(name)
            for name in ("toll_calc", "toll_assess", "collector", "balance")
        )

    def test_throughput_tracks_input(self, lrb_run):
        assert lrb_run.sustained(tail_fraction=0.1, tolerance=0.25)

    def test_results_produced(self, lrb_run):
        collector = lrb_run.query.collector
        assert collector.toll_notifications > 0
        assert collector.balance_responses > 0

    def test_latency_within_lrb_target(self, lrb_run):
        p99 = lrb_run.latency_percentile(99)
        assert p99 < 5.0  # the LRB 5-second constraint

    def test_vm_count_monotone_growth(self, lrb_run):
        _times, values = lrb_run.vm_series()
        assert values[-1] >= values[0]

    def test_no_tuples_dropped_closed_loop(self, lrb_run):
        assert lrb_run.dropped_weight() == 0


class TestManualDeployment:
    def test_manual_allocation_runs_without_scaling(self):
        run = run_lrb(
            num_xways=8,
            duration=120.0,
            quantum=1.0,
            scaling_enabled=False,
            parallelism=manual_parallelism(8),
            seed=2,
        )
        assert run.scale_out_times() == []
        assert run.final_worker_vms() == 8
        assert run.query.collector.toll_notifications > 0

    def test_underprovisioned_manual_has_higher_latency(self):
        tight = run_lrb(
            num_xways=16,
            duration=150.0,
            quantum=1.0,
            scaling_enabled=False,
            parallelism=manual_parallelism(5),
            seed=2,
        )
        roomy = run_lrb(
            num_xways=16,
            duration=150.0,
            quantum=1.0,
            scaling_enabled=False,
            parallelism=manual_parallelism(10),
            seed=2,
        )
        assert tight.latency_percentile(95) > roomy.latency_percentile(95)


class TestFailureDuringLRB:
    def test_toll_calculator_recovers(self):
        from repro.workloads.lrb import build_lrb_query
        from repro.experiments.harness import default_config
        from repro.runtime.system import StreamProcessingSystem

        query = build_lrb_query(8, 150.0, quantum=1.0)
        config = default_config(3)
        config.scaling.enabled = False
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, generators=query.generators)
        system.injector.fail_target_at(lambda: system.vm_of("toll_calc"), 60.0)
        system.run(until=150.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        # Tolls keep flowing after recovery.
        rate = system.metrics.rate("processed:toll_calc")
        assert rate.rate_at(140.0) > 0
