"""Determinism: identical seeds must give bit-identical runs.

The whole evaluation depends on reproducible simulations — every source
of randomness flows through seeded streams and the event kernel breaks
ties deterministically.
"""

from repro.config import SystemConfig
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wordcount import build_word_count_query
from repro.workloads.synthetic import linear_ramp


def run_once(seed: int, fail: bool = False):
    query = build_word_count_query(
        rate=linear_ramp(100.0, 1500.0, 60.0), vocabulary_size=300, quantum=0.1
    )
    config = SystemConfig()
    config.seed = seed
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    if fail:
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 30.0)
    system.run(until=80.0)
    state = {}
    for instance in system.instances_of("counter"):
        state.update(instance.state.entries)
    return {
        "results": dict(query.collector.results),
        "counter_entries": len(state),
        "events": [(round(t, 6), k, d) for t, k, d in system.metrics.events],
        "checkpoints": system.counter("checkpoints_stored"),
        "messages": system.network.messages_sent,
        "parallelism": system.query_manager.parallelism_of("counter"),
    }


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert run_once(3) == run_once(3)

    def test_identical_seeds_with_failure(self):
        assert run_once(3, fail=True) == run_once(3, fail=True)

    def test_different_seeds_differ(self):
        a = run_once(1)
        b = run_once(2)
        assert a["results"] != b["results"]


class TestPublicApiSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__
