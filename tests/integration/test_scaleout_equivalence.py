"""End-to-end correctness of dynamic scale out: repartitioning a running
stateful operator must not change query results (§4.1/§4.3)."""

import pytest

from repro.config import SystemConfig
from repro.core.tuples import stable_hash
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wordcount import build_word_count_query


def run_wordcount(scale_plan=None, until=100.0, rate=250.0):
    """``scale_plan``: list of (time, op_name, parallelism)."""
    query = build_word_count_query(
        rate=rate, window=30.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    for at, op_name, parallelism in scale_plan or []:
        def trigger(op_name=op_name, parallelism=parallelism):
            slots = system.query_manager.slots_of(op_name)
            ok = system.scale_out.scale_out_slot(slots[0].uid, parallelism)
            assert ok, f"scale out of {op_name} did not start"

        system.sim.schedule_at(at, trigger)
    system.run(until=until)
    return system, query


@pytest.fixture(scope="module")
def baseline():
    return run_wordcount()


def assert_windows_equal(base, other):
    for window in sorted(base.collector.windows()):
        assert base.collector.counts_for_window(window) == other.collector.counts_for_window(window), f"window {window} differs"


class TestScaleOutExactness:
    def test_counter_scale_out_preserves_results(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(scale_plan=[(45.0, "counter", 2)])
        assert system.query_manager.parallelism_of("counter") == 2
        assert_windows_equal(base, query)

    def test_counter_scale_out_to_three(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(scale_plan=[(45.0, "counter", 3)])
        assert system.query_manager.parallelism_of("counter") == 3
        assert_windows_equal(base, query)

    def test_splitter_scale_out_preserves_results(self, baseline):
        _bs, base = baseline
        system, query = run_wordcount(scale_plan=[(45.0, "splitter", 2)])
        assert_windows_equal(base, query)

    def test_repeated_scale_out(self, baseline):
        """Scale the counter twice (1→2, then split one partition again)."""
        _bs, base = baseline
        system, query = run_wordcount(scale_plan=[(40.0, "counter", 2)])
        # Second split, targeting partition 0 of the already-split counter.
        def second():
            slots = system.query_manager.slots_of("counter")
            system.scale_out.scale_out_slot(slots[0].uid, 2)

        # This run already completed; run a fresh one with both steps.
        query2 = build_word_count_query(
            rate=250.0, window=30.0, vocabulary_size=400, quantum=0.1
        )
        config = SystemConfig()
        config.scaling.enabled = False
        system2 = StreamProcessingSystem(config)
        system2.deploy(query2.graph, generators=query2.generators)

        def first():
            slots = system2.query_manager.slots_of("counter")
            assert system2.scale_out.scale_out_slot(slots[0].uid, 2)

        def then():
            slots = system2.query_manager.slots_of("counter")
            assert system2.scale_out.scale_out_slot(slots[0].uid, 2)

        system2.sim.schedule_at(40.0, first)
        system2.sim.schedule_at(60.0, then)
        # The second split must wait for a VM-pool refill (~90 s of
        # provisioning), so the run extends well past it; window results
        # are compared only over the baseline's horizon.
        system2.run(until=100.0)
        system2.run(until=200.0)
        assert system2.query_manager.parallelism_of("counter") == 3
        assert_windows_equal(base, query2)

    def test_state_routing_consistency_after_scale_out(self):
        system, _query = run_wordcount(scale_plan=[(45.0, "counter", 2)], until=80.0)
        routing = system.query_manager.routing_to("counter")
        for instance in system.instances_of("counter"):
            for key in instance.state.keys():
                assert routing.route_position(stable_hash(key)) == instance.uid

    def test_scale_out_with_failure_afterwards(self, baseline):
        """Scale out, then fail one of the new partitions: both the split
        and the recovery must be invisible in the results."""
        _bs, base = baseline
        query = build_word_count_query(
            rate=250.0, window=30.0, vocabulary_size=400, quantum=0.1
        )
        config = SystemConfig()
        config.scaling.enabled = False
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, generators=query.generators)

        def split():
            slots = system.query_manager.slots_of("counter")
            assert system.scale_out.scale_out_slot(slots[0].uid, 2)

        system.sim.schedule_at(40.0, split)
        system.injector.fail_target_at(lambda: system.vm_of("counter", 1), 65.0)
        system.run(until=100.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        assert_windows_equal(base, query)
