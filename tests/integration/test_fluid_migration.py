"""End-to-end correctness of fluid (chunked) state migration.

A chunked scale-out routes the migrating key range to its targets one
sub-interval at a time, with the source still processing everything not
yet moved.  Whatever the chunking, the query results must be identical
to an undisturbed run — the same gate the all-at-once scale-out passes.
"""

import pytest

from repro.config import SystemConfig
from repro.runtime.system import StreamProcessingSystem
from repro.scaling.reconfig import PHASE_ABORTED
from repro.workloads.wordcount import build_word_count_query


def run_wordcount(
    scale_plan=None,
    until=100.0,
    rate=250.0,
    max_chunks=1,
    chunk_timeout=None,
):
    """``scale_plan``: list of (time, op_name, parallelism)."""
    query = build_word_count_query(
        rate=rate, window=30.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    config.migration.max_chunks = max_chunks
    config.migration.chunk_timeout = chunk_timeout
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    commits: list[tuple[int, int]] = []
    system.reconfig.on_chunk_commit(
        lambda _op, index, total: commits.append((index, total))
    )
    for at, op_name, parallelism in scale_plan or []:
        def trigger(op_name=op_name, parallelism=parallelism):
            slots = system.query_manager.slots_of(op_name)
            ok = system.scale_out.scale_out_slot(slots[0].uid, parallelism)
            assert ok, f"scale out of {op_name} did not start"

        system.sim.schedule_at(at, trigger)
    system.run(until=until)
    return system, query, commits


@pytest.fixture(scope="module")
def baseline():
    return run_wordcount()


def assert_windows_equal(base, other):
    for window in sorted(base.collector.windows()):
        assert base.collector.counts_for_window(
            window
        ) == other.collector.counts_for_window(window), f"window {window} differs"


class TestFluidExactness:
    def test_chunked_scale_out_preserves_results(self, baseline):
        _bs, base, _bc = baseline
        system, query, commits = run_wordcount(
            scale_plan=[(45.0, "counter", 2)], max_chunks=6
        )
        assert system.query_manager.parallelism_of("counter") == 2
        # The migration really ran fluid: several chunks, each committed.
        assert len(commits) > 1
        assert [index for index, _total in commits] == list(range(len(commits)))
        assert all(total == len(commits) for _index, total in commits)
        assert_windows_equal(base, query)

    def test_chunked_scale_out_to_three(self, baseline):
        _bs, base, _bc = baseline
        system, query, commits = run_wordcount(
            scale_plan=[(45.0, "counter", 3)], max_chunks=4
        )
        assert system.query_manager.parallelism_of("counter") == 3
        assert len(commits) > 1
        assert_windows_equal(base, query)

    def test_all_at_once_remains_the_default_path(self, baseline):
        """max_chunks=1 (the default) must not go fluid at all: no chunk
        commits, one logical transfer, identical results."""
        _bs, base, _bc = baseline
        system, query, commits = run_wordcount(scale_plan=[(45.0, "counter", 2)])
        assert commits == []
        assert system.reconfig.mover.chunked_transfers == 0
        assert system.query_manager.parallelism_of("counter") == 2
        assert_windows_equal(base, query)

    def test_chunked_migration_state_lands_where_routing_points(self):
        from repro.core.tuples import stable_hash

        system, _query, commits = run_wordcount(
            scale_plan=[(45.0, "counter", 2)], max_chunks=6, until=80.0
        )
        assert len(commits) > 1
        routing = system.query_manager.routing_to("counter")
        for instance in system.instances_of("counter"):
            for key in instance.state.keys():
                assert routing.route_position(stable_hash(key)) == instance.uid


class TestFluidAbort:
    def test_chunk_deadline_abort_keeps_results_exact(self, baseline):
        """A chunk deadline so tight nothing can commit aborts the
        migration; the source resumes with its full range and results
        stay identical to the undisturbed run."""
        _bs, base, _bc = baseline
        system, query, _commits = run_wordcount(
            scale_plan=[(45.0, "counter", 2)],
            max_chunks=6,
            chunk_timeout=1e-6,
        )
        assert system.reconfig.operations_aborted >= 1
        [timeline] = system.metrics.timelines(kind="scale_out")
        assert timeline.phases[-1] == PHASE_ABORTED
        # The operator kept (or regained) a working configuration.
        assert all(
            inst.alive and not inst.vm.paused
            for inst in system.instances_of("counter")
        )
        assert_windows_equal(base, query)
