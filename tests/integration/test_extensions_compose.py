"""Extension features composed: spill + incremental checkpoints + scale
out/in on one system, and the join operator under scale out."""

import pytest

from repro.config import SystemConfig
from repro.core.join import SIDE_LEFT, SideTagger, WindowedJoinOperator, tag_left, tag_right
from repro.core.operators import KeyedCounter
from repro.core.query import QueryGraph
from repro.core.spill import SpillableState
from repro.runtime.sink import RecordingCollector, SinkOperator
from repro.runtime.source import SourceOperator
from repro.runtime.system import StreamProcessingSystem
from tests.conftest import ManualGenerator


class SpillingCounter(KeyedCounter):
    """A counter whose state spills past 8 hot entries."""

    def initial_state(self):
        return SpillableState(max_hot_entries=8)


def deploy(counter_cls=KeyedCounter, incremental=False, parallelism=None):
    graph = QueryGraph()
    graph.add_operator(SourceOperator("source"), source=True)
    graph.add_operator(counter_cls("counter", cost_per_tuple=1e-4))
    graph.add_operator(SinkOperator("sink"), sink=True)
    graph.chain("source", "counter", "sink")
    config = SystemConfig()
    config.scaling.enabled = False
    config.checkpoint.interval = 1.0
    config.checkpoint.stagger = False
    config.checkpoint.incremental = incremental
    system = StreamProcessingSystem(config)
    generator = ManualGenerator()
    system.deploy(graph, parallelism=parallelism, generators={"source": generator})
    return system, generator


class TestSpillPlusIncremental:
    def test_spilled_state_with_incremental_checkpoints_recovers(self):
        system, gen = deploy(SpillingCounter, incremental=True)
        for i in range(30):
            gen.feed(f"k{i}")
        system.run(until=3.0)
        for i in range(30, 40):
            gen.feed(f"k{i}")
        system.run(until=6.0)
        counter = system.instances_of("counter")[0]
        assert counter.state.spilled_entries > 0
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 7.0)
        system.run(until=25.0)
        restored = system.instances_of("counter")[0]
        assert all(restored.state[f"k{i}"] == 1 for i in range(40))

    def test_spilled_state_scales_out(self):
        system, gen = deploy(SpillingCounter)
        for i in range(40):
            gen.feed(f"k{i}")
        system.run(until=3.0)
        uid = system.query_manager.slots_of("counter")[0].uid
        assert system.scale_out.scale_out_slot(uid, 2)
        system.run(until=20.0)
        parts = system.instances_of("counter")
        merged = {}
        for part in parts:
            merged.update(dict(part.state.items()))
        assert len(merged) == 40


class TestJoinScalesOut:
    def test_partitioned_join_still_matches(self):
        graph = QueryGraph()
        graph.add_operator(SourceOperator("ls"), source=True)
        graph.add_operator(SourceOperator("rs"), source=True)
        graph.add_operator(SideTagger("tl", "L"))
        graph.add_operator(SideTagger("tr", "R"))
        graph.add_operator(WindowedJoinOperator("join", window=60.0))
        collector = RecordingCollector()
        graph.add_operator(SinkOperator("sink", collector), sink=True)
        graph.connect("ls", "tl")
        graph.connect("rs", "tr")
        graph.connect("tl", "join")
        graph.connect("tr", "join")
        graph.connect("join", "sink")
        config = SystemConfig()
        config.scaling.enabled = False
        config.checkpoint.interval = 1.0
        config.checkpoint.stagger = False
        system = StreamProcessingSystem(config)
        left, right = ManualGenerator(), ManualGenerator()
        system.deploy(graph, generators={"ls": left, "rs": right})
        for i in range(10):
            left.feed_at(1.0 + 0.1 * i, f"k{i}", f"l{i}")
        # Split the join mid-stream, then send the matching right side.
        def split():
            uid = system.query_manager.slots_of("join")[0].uid
            assert system.scale_out.scale_out_slot(uid, 2)

        system.sim.schedule_at(5.0, split)
        for i in range(10):
            right.feed_at(20.0 + 0.1 * i, f"k{i}", f"r{i}")
        system.run(until=40.0)
        assert system.query_manager.parallelism_of("join") == 2
        matched = sorted(t.payload for t in collector.tuples)
        assert matched == [(f"l{i}", f"r{i}") for i in range(10)]
