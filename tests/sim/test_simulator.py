"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.sim.simulator import Simulator, iter_times


class TestScheduling:
    def test_callbacks_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run(until=20.0)
        assert fired == ["early", "late"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ClockError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ClockError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_event_scheduled_during_run_fires(self, sim):
        fired = []

        def chain():
            fired.append("first")
            sim.schedule(1.0, fired.append, "second")

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == ["first", "second"]

    def test_same_time_events_fire_in_schedule_order(self, sim):
        fired = []
        for name in "abc":
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_priority_beats_schedule_order(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "data", priority=10)
        sim.schedule(1.0, fired.append, "failure", priority=0)
        sim.run()
        assert fired == ["failure", "data"]

    def test_max_events_bounds_run(self, sim):
        count = [0]

        def loop():
            count[0] += 1
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        processed = sim.run(max_events=10)
        assert processed == 10

    def test_halt_stops_run(self, sim):
        fired = []

        def first():
            fired.append(1)
            sim.halt()

        sim.schedule(1.0, first)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_not_reentrant(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()


class TestClockMonotonicity:
    def test_halt_does_not_fast_forward_clock(self, sim):
        sim.schedule(1.0, sim.halt)
        sim.schedule(2.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 1.0

    def test_halt_then_resume_keeps_time_monotone(self, sim):
        times = []
        sim.schedule(1.0, sim.halt)
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run(until=50.0)
        # Resuming must pop the t=2 event *after* now, not before it.
        sim.run(until=50.0)
        assert times == [2.0]
        assert sim.now == 50.0

    def test_max_events_exit_does_not_fast_forward_clock(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run(until=50.0, max_events=2)
        assert sim.now == 2.0
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_drained_run_still_fast_forwards(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0


class TestPeriodicTask:
    def test_fires_every_interval(self, sim):
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_start_after_offsets_first_fire(self, sim):
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now), start_after=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_prevents_future_fires(self, sim):
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert task.stopped

    def test_stop_from_within_callback(self, sim):
        ticks = []
        task = sim.every(1.0, lambda: (ticks.append(sim.now), task.stop()))
        sim.run(until=10.0)
        assert len(ticks) == 1

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_fire_count(self, sim):
        task = sim.every(1.0, lambda: None)
        sim.run(until=3.5)
        assert task.fire_count == 3

    def test_double_start_rejected(self, sim):
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        with pytest.raises(SimulationError):
            task.start(0.5)
        # The guard kept a single timer chain: one tick per interval.
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_after_stop_rejected(self, sim):
        task = sim.every(1.0, lambda: None)
        task.stop()
        with pytest.raises(SimulationError):
            task.start(1.0)


class TestIterTimes:
    def test_basic_range(self):
        assert list(iter_times(0.0, 1.0, 0.25)) == [0.0, 0.25, 0.5, 0.75]

    def test_float_accumulation_safe(self):
        times = list(iter_times(0.0, 1.0, 0.1))
        assert len(times) == 10

    def test_bad_step_rejected(self):
        with pytest.raises(SimulationError):
            list(iter_times(0.0, 1.0, 0.0))
