"""Tests for seeded RNG streams."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("workload")
        b = RngRegistry(7).stream("workload")
        assert [float(a.random()) for _ in range(5)] == [
            float(b.random()) for _ in range(5)
        ]

    def test_different_names_independent(self):
        registry = RngRegistry(7)
        a = registry.stream("a").random()
        b = registry.stream("b").random()
        assert a != b

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_stream_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")

    def test_creation_order_irrelevant(self):
        first = RngRegistry(3)
        first.stream("a")
        value_after_a = float(first.stream("b").random())
        second = RngRegistry(3)
        value_direct = float(second.stream("b").random())
        assert value_after_a == value_direct

    def test_fork_independent(self):
        registry = RngRegistry(5)
        fork = registry.fork("child")
        assert float(registry.stream("x").random()) != float(
            fork.stream("x").random()
        )

    def test_fork_deterministic(self):
        a = RngRegistry(5).fork("child").stream("x").random()
        b = RngRegistry(5).fork("child").stream("x").random()
        assert float(a) == float(b)
