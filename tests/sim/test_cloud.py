"""Tests for the cloud provider and the VM pool (§5.2)."""

import pytest

from repro.errors import VMPoolError
from repro.sim.cloud import CloudProvider, VMPool


@pytest.fixture
def provider(sim):
    return CloudProvider(sim, provisioning_delay=90.0)


class TestCloudProvider:
    def test_provision_takes_delay(self, sim, provider):
        got = []
        provider.provision(lambda vm: got.append(sim.now))
        sim.run()
        assert got == [90.0]

    def test_provision_immediately(self, provider):
        vm = provider.provision_immediately()
        assert vm.alive

    def test_vm_ids_unique(self, provider):
        a = provider.provision_immediately()
        b = provider.provision_immediately()
        assert a.vm_id != b.vm_id

    def test_capacity_override(self, provider):
        vm = provider.provision_immediately(cpu_capacity=13.0)
        assert vm.cpu_capacity == 13.0

    def test_max_vms_enforced(self, sim):
        provider = CloudProvider(sim, max_vms=1)
        provider.provision_immediately()
        with pytest.raises(VMPoolError):
            provider.provision(lambda vm: None)

    def test_billing_counts_vm_seconds(self, sim, provider):
        vm = provider.provision_immediately()
        sim.schedule(10.0, vm.release)
        other = provider.provision_immediately()
        sim.run(until=25.0)
        # vm billed 10 s, other billed 25 s
        assert provider.vm_seconds_billed() == pytest.approx(35.0)

    def test_failed_vm_stops_billing(self, sim, provider):
        vm = provider.provision_immediately()
        sim.schedule(5.0, vm.fail)
        sim.run(until=20.0)
        assert provider.vm_seconds_billed() == pytest.approx(5.0)


class TestVMPool:
    def test_prefill_creates_pool(self, sim, provider):
        pool = VMPool(sim, provider, size=3, handout_delay=1.0)
        assert pool.available_count() == 3

    def test_acquire_from_pool_is_fast(self, sim, provider):
        pool = VMPool(sim, provider, size=2, handout_delay=1.0)
        got = []
        pool.acquire(lambda vm: got.append(sim.now))
        sim.run(until=5.0)
        assert got == [1.0]

    def test_handouts_are_serial(self, sim, provider):
        pool = VMPool(sim, provider, size=3, handout_delay=1.0)
        got = []
        pool.acquire(lambda vm: got.append(sim.now))
        pool.acquire(lambda vm: got.append(sim.now))
        sim.run(until=10.0)
        assert got == [1.0, 2.0]

    def test_empty_pool_waits_for_provisioning(self, sim, provider):
        pool = VMPool(sim, provider, size=0, handout_delay=1.0)
        got = []
        pool.acquire(lambda vm: got.append(sim.now))
        sim.run(until=200.0)
        assert got == [pytest.approx(91.0)]
        assert pool.served_after_wait == 1

    def test_pool_refills_after_acquire(self, sim, provider):
        pool = VMPool(sim, provider, size=2, handout_delay=1.0)
        pool.acquire(lambda vm: None)
        sim.run(until=200.0)
        assert pool.available_count() == 2

    def test_resize_shrink_releases_vms(self, sim, provider):
        pool = VMPool(sim, provider, size=3)
        pool.resize(1)
        assert pool.available_count() == 1

    def test_resize_grow_provisions(self, sim, provider):
        pool = VMPool(sim, provider, size=1)
        pool.resize(3)
        sim.run(until=200.0)
        assert pool.available_count() == 3

    def test_dead_pool_vm_not_handed_out(self, sim, provider):
        pool = VMPool(sim, provider, size=1, handout_delay=0.5)
        for vm in list(pool._available):
            vm.fail()
        got = []
        pool.acquire(lambda vm: got.append(vm))
        sim.run(until=200.0)
        assert len(got) == 1
        assert got[0].alive

    def test_negative_size_rejected(self, sim, provider):
        with pytest.raises(VMPoolError):
            VMPool(sim, provider, size=-1)

    def test_give_back_refills_pool(self, sim, provider):
        pool = VMPool(sim, provider, size=2, handout_delay=0.5)
        got = []
        pool.acquire(got.append)
        sim.run(until=5.0)
        assert pool.available_count() == 1
        pool.give_back(got[0])
        assert pool.available_count() == 2

    def test_give_back_serves_waiter_first(self, sim, provider):
        pool = VMPool(sim, provider, size=0, handout_delay=0.5)
        got = []
        pool.acquire(got.append)  # no pooled VMs: waits for provisioning
        sim.run(until=1.0)
        assert got == []
        spare = provider.provision_immediately()
        pool.give_back(spare)
        sim.run(until=5.0)
        assert got == [spare]

    def test_give_back_dead_vm_ignored(self, sim, provider):
        pool = VMPool(sim, provider, size=1)
        dead = provider.provision_immediately()
        dead.fail()
        pool.give_back(dead)
        assert pool.available_count() == 1  # unchanged

    def test_give_back_overflow_released(self, sim, provider):
        pool = VMPool(sim, provider, size=1)
        spare = provider.provision_immediately()
        pool.give_back(spare)
        assert not spare.alive  # pool full: released back to the provider

    def test_burst_of_acquires_all_served(self, sim, provider):
        pool = VMPool(sim, provider, size=2, handout_delay=0.5)
        got = []
        for _ in range(5):
            pool.acquire(got.append)
        sim.run(until=300.0)
        assert len(got) == 5
        assert all(vm.alive for vm in got)
