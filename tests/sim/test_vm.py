"""Tests for the VM CPU model."""

import pytest

from repro.errors import RuntimeStateError, SimulationError
from repro.sim.vm import VirtualMachine, VMState


@pytest.fixture
def vm(sim):
    return VirtualMachine(sim, vm_id=1, cpu_capacity=1.0)


class TestCpuExecution:
    def test_work_completes_after_duration(self, sim, vm):
        done = []
        vm.submit(2.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0]

    def test_fifo_order(self, sim, vm):
        done = []
        vm.submit(1.0, done.append, "a")
        vm.submit(1.0, done.append, "b")
        vm.submit(1.0, done.append, "c")
        sim.run()
        assert done == ["a", "b", "c"]

    def test_capacity_scales_duration(self, sim):
        fast = VirtualMachine(sim, 1, cpu_capacity=2.0)
        done = []
        fast.submit(2.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0]

    def test_capacity_change_rescales_in_flight_work(self, sim, vm):
        """A straggler injection mid-item stretches only the work not
        yet performed: 1s done at speed 1.0, the remaining 1s of work
        runs at 0.25 and takes 4s more."""
        done = []
        vm.submit(2.0, lambda: done.append(sim.now))
        sim.schedule_at(1.0, vm.set_cpu_capacity, 0.25)
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_capacity_restore_speeds_up_in_flight_work(self, sim, vm):
        """The symmetric repair: after 1s at quarter speed (0.25s of
        work done), restoring full speed finishes the rest in 1.75s."""
        vm.set_cpu_capacity(0.25)
        done = []
        vm.submit(2.0, lambda: done.append(sim.now))
        sim.schedule_at(1.0, vm.set_cpu_capacity, 1.0)
        sim.run()
        assert done == [pytest.approx(2.75)]

    def test_front_submission_preempts_queue(self, sim, vm):
        done = []
        vm.submit(1.0, done.append, "running")
        vm.submit(1.0, done.append, "queued")
        vm.submit(1.0, done.append, "urgent", front=True)
        sim.run()
        assert done == ["running", "urgent", "queued"]

    def test_zero_work_allowed(self, sim, vm):
        done = []
        vm.submit(0.0, done.append, "x")
        sim.run()
        assert done == ["x"]

    def test_negative_work_rejected(self, vm):
        with pytest.raises(SimulationError):
            vm.submit(-1.0, lambda: None)

    def test_callback_submitting_more_work(self, sim, vm):
        done = []

        def resubmit():
            done.append("first")
            vm.submit(1.0, done.append, "second")

        vm.submit(1.0, resubmit)
        sim.run()
        assert done == ["first", "second"]
        assert sim.now == 2.0

    def test_queued_work_seconds(self, sim, vm):
        vm.submit(2.0, lambda: None)
        vm.submit(3.0, lambda: None)
        assert vm.queued_work_seconds() == pytest.approx(5.0)
        sim.run(until=1.0)
        assert vm.queued_work_seconds() == pytest.approx(4.0)


class TestUtilizationAccounting:
    def test_busy_seconds_accumulate(self, sim, vm):
        vm.submit(2.0, lambda: None)
        sim.run(until=10.0)
        assert vm.busy_seconds_total() == pytest.approx(2.0)

    def test_in_flight_work_counts(self, sim, vm):
        vm.submit(4.0, lambda: None)
        sim.run(until=1.0)
        assert vm.busy_seconds_total() == pytest.approx(1.0)

    def test_idle_vm_not_busy(self, sim, vm):
        sim.run(until=5.0)
        assert vm.busy_seconds_total() == 0.0
        assert not vm.busy


class TestPauseResume:
    def test_pause_stops_new_work(self, sim, vm):
        done = []
        vm.submit(1.0, done.append, "a")
        vm.submit(1.0, done.append, "b")
        sim.schedule(0.5, vm.pause)
        sim.run(until=5.0)
        assert done == ["a"]  # in-flight item completes, queued one waits
        vm.resume()
        sim.run(until=10.0)
        assert done == ["a", "b"]

    def test_submit_while_paused_queues(self, sim, vm):
        done = []
        vm.pause()
        vm.submit(1.0, done.append, "x")
        sim.run(until=5.0)
        assert done == []
        vm.resume()
        sim.run(until=10.0)
        assert done == ["x"]


class TestLifecycle:
    def test_fail_discards_work_and_notifies(self, sim, vm):
        done = []
        failures = []
        vm.on_failure(failures.append)
        vm.submit(2.0, done.append, "never")
        sim.schedule(1.0, vm.fail)
        sim.run(until=10.0)
        assert done == []
        assert failures == [vm]
        assert vm.state is VMState.FAILED
        assert vm.failed_at == 1.0

    def test_fail_idempotent(self, sim, vm):
        failures = []
        vm.on_failure(failures.append)
        vm.fail()
        vm.fail()
        assert len(failures) == 1

    def test_release(self, sim, vm):
        vm.release()
        assert vm.state is VMState.RELEASED
        assert not vm.alive

    def test_release_failed_vm_rejected(self, vm):
        vm.fail()
        with pytest.raises(RuntimeStateError):
            vm.release()

    def test_submit_to_dead_vm_rejected(self, vm):
        vm.fail()
        with pytest.raises(RuntimeStateError):
            vm.submit(1.0, lambda: None)

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            VirtualMachine(sim, 1, cpu_capacity=0.0)
