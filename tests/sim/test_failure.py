"""Tests for the failure injector."""

import numpy as np
import pytest

from repro.sim.failure import FailureInjector
from repro.sim.vm import VirtualMachine


@pytest.fixture
def injector(sim):
    return FailureInjector(sim)


class TestScheduledFailures:
    def test_vm_fails_at_time(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        injector.fail_vm_at(vm, 5.0)
        sim.run(until=4.0)
        assert vm.alive
        sim.run(until=6.0)
        assert not vm.alive
        assert injector.failures_injected == [(5.0, 1)]

    def test_already_dead_vm_not_recorded_twice(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        injector.fail_vm_at(vm, 2.0)
        injector.fail_vm_at(vm, 3.0)
        sim.run()
        assert len(injector.failures_injected) == 1

    def test_failure_preempts_same_time_data_events(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(vm.alive))
        injector.fail_vm_at(vm, 5.0)
        sim.run()
        assert seen == [False]

    def test_late_binding_target(self, sim, injector):
        slot = {"vm": VirtualMachine(sim, 1)}
        replacement = VirtualMachine(sim, 2)

        def swap():
            slot["vm"] = replacement

        sim.schedule(1.0, swap)
        injector.fail_target_at(lambda: slot["vm"], 2.0)
        sim.run()
        assert not replacement.alive

    def test_none_target_ignored(self, sim, injector):
        injector.fail_target_at(lambda: None, 1.0)
        sim.run()
        assert injector.failures_injected == []


class TestPoissonFailures:
    def test_failures_occur_and_are_seeded(self, sim, injector):
        vms = [VirtualMachine(sim, i) for i in range(20)]
        rng = np.random.default_rng(42)
        injector.poisson_failures(lambda: vms, mtbf=10.0, rng=rng, until=100.0)
        sim.run(until=100.0)
        failed = [vm for vm in vms if not vm.alive]
        assert len(failed) > 0
        assert len(injector.failures_injected) == len(failed)

    def test_no_candidates_is_safe(self, sim, injector):
        rng = np.random.default_rng(0)
        injector.poisson_failures(lambda: [], mtbf=1.0, rng=rng, until=10.0)
        sim.run()
        assert injector.failures_injected == []

    def test_deterministic_for_same_seed(self):
        def run_once():
            from repro.sim.simulator import Simulator

            sim = Simulator()
            injector = FailureInjector(sim)
            vms = [VirtualMachine(sim, i) for i in range(10)]
            rng = np.random.default_rng(7)
            injector.poisson_failures(lambda: vms, 20.0, rng, until=200.0)
            sim.run(until=200.0)
            return injector.failures_injected

        assert run_once() == run_once()

    def test_victim_sequence_differs_across_seeds(self):
        def run_once(seed):
            from repro.sim.simulator import Simulator

            sim = Simulator()
            injector = FailureInjector(sim)
            vms = [VirtualMachine(sim, i) for i in range(10)]
            rng = np.random.default_rng(seed)
            injector.poisson_failures(lambda: vms, 20.0, rng, until=200.0)
            sim.run(until=200.0)
            return injector.failures_injected

        assert run_once(1) != run_once(2)


class TestInjectionHandles:
    def test_cancel_prevents_pending_injections(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        handle = injector.fail_vm_at(vm, 5.0)
        assert handle.pending == 1
        handle.cancel()
        sim.run()
        assert vm.alive
        assert handle.cancelled
        assert handle.pending == 0
        assert injector.failures_injected == []

    def test_cancel_poisson_schedule_between_seeds(self, sim, injector):
        vms = [VirtualMachine(sim, i) for i in range(10)]
        rng = np.random.default_rng(3)
        handle = injector.poisson_failures(
            lambda: vms, mtbf=5.0, rng=rng, until=100.0
        )
        sim.run(until=10.0)
        fired = len(injector.failures_injected)
        handle.cancel()
        sim.run(until=100.0)
        assert len(injector.failures_injected) == fired

    def test_cancel_after_firing_is_noop(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        handle = injector.fail_vm_at(vm, 1.0)
        sim.run()
        assert not vm.alive
        handle.cancel()  # nothing pending; must not raise
        assert handle.pending == 0


class TestCorrelatedFailures:
    def test_all_victims_die_in_one_event(self, sim, injector):
        vms = [VirtualMachine(sim, i) for i in range(3)]
        injector.fail_correlated_at(lambda: vms, 5.0)
        sim.run()
        assert all(not vm.alive for vm in vms)
        times = [t for t, _vm_id in injector.failures_injected]
        assert times == [5.0, 5.0, 5.0]

    def test_already_dead_member_skipped(self, sim, injector):
        vms = [VirtualMachine(sim, i) for i in range(2)]
        vms[0].fail()
        injector.fail_correlated_at(lambda: vms, 5.0)
        sim.run()
        assert len(injector.failures_injected) == 1


class TestStragglers:
    def test_capacity_degraded_and_restored(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        original = vm.cpu_capacity
        injector.straggle_vm_at(lambda: vm, 5.0, factor=0.25, duration=10.0)
        sim.run(until=6.0)
        assert vm.cpu_capacity == pytest.approx(original * 0.25)
        assert injector.stragglers_injected == [
            (5.0, 1, pytest.approx(original * 0.25))
        ]
        sim.run(until=20.0)
        assert vm.cpu_capacity == pytest.approx(original)
        assert vm.alive

    def test_permanent_straggler_without_duration(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        original = vm.cpu_capacity
        injector.straggle_vm_at(lambda: vm, 5.0, factor=0.5)
        sim.run(until=100.0)
        assert vm.cpu_capacity == pytest.approx(original * 0.5)

    def test_cancelled_straggler_never_degrades(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        original = vm.cpu_capacity
        handle = injector.straggle_vm_at(lambda: vm, 5.0, factor=0.25)
        handle.cancel()
        sim.run()
        assert vm.cpu_capacity == pytest.approx(original)
        assert injector.stragglers_injected == []
