"""Tests for the failure injector."""

import numpy as np
import pytest

from repro.sim.failure import FailureInjector
from repro.sim.vm import VirtualMachine


@pytest.fixture
def injector(sim):
    return FailureInjector(sim)


class TestScheduledFailures:
    def test_vm_fails_at_time(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        injector.fail_vm_at(vm, 5.0)
        sim.run(until=4.0)
        assert vm.alive
        sim.run(until=6.0)
        assert not vm.alive
        assert injector.failures_injected == [(5.0, 1)]

    def test_already_dead_vm_not_recorded_twice(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        injector.fail_vm_at(vm, 2.0)
        injector.fail_vm_at(vm, 3.0)
        sim.run()
        assert len(injector.failures_injected) == 1

    def test_failure_preempts_same_time_data_events(self, sim, injector):
        vm = VirtualMachine(sim, 1)
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(vm.alive))
        injector.fail_vm_at(vm, 5.0)
        sim.run()
        assert seen == [False]

    def test_late_binding_target(self, sim, injector):
        slot = {"vm": VirtualMachine(sim, 1)}
        replacement = VirtualMachine(sim, 2)

        def swap():
            slot["vm"] = replacement

        sim.schedule(1.0, swap)
        injector.fail_target_at(lambda: slot["vm"], 2.0)
        sim.run()
        assert not replacement.alive

    def test_none_target_ignored(self, sim, injector):
        injector.fail_target_at(lambda: None, 1.0)
        sim.run()
        assert injector.failures_injected == []


class TestPoissonFailures:
    def test_failures_occur_and_are_seeded(self, sim, injector):
        vms = [VirtualMachine(sim, i) for i in range(20)]
        rng = np.random.default_rng(42)
        injector.poisson_failures(lambda: vms, mtbf=10.0, rng=rng, until=100.0)
        sim.run(until=100.0)
        failed = [vm for vm in vms if not vm.alive]
        assert len(failed) > 0
        assert len(injector.failures_injected) == len(failed)

    def test_no_candidates_is_safe(self, sim, injector):
        rng = np.random.default_rng(0)
        injector.poisson_failures(lambda: [], mtbf=1.0, rng=rng, until=10.0)
        sim.run()
        assert injector.failures_injected == []

    def test_deterministic_for_same_seed(self):
        def run_once():
            from repro.sim.simulator import Simulator

            sim = Simulator()
            injector = FailureInjector(sim)
            vms = [VirtualMachine(sim, i) for i in range(10)]
            rng = np.random.default_rng(7)
            injector.poisson_failures(lambda: vms, 20.0, rng, until=200.0)
            sim.run(until=200.0)
            return injector.failures_injected

        assert run_once() == run_once()
