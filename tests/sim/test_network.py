"""Tests for the network model."""

import pytest

from repro.errors import SimulationError
from repro.sim.network import Network
from repro.sim.vm import VirtualMachine


@pytest.fixture
def net(sim):
    return Network(sim, latency=0.01, bandwidth_bytes_per_s=1000.0)


@pytest.fixture
def vms(sim):
    return VirtualMachine(sim, 1), VirtualMachine(sim, 2)


class TestDelivery:
    def test_latency_plus_bandwidth_delay(self, sim, net, vms):
        src, dst = vms
        arrived = []
        net.send(src, dst, 100.0, lambda: arrived.append(sim.now))
        sim.run()
        assert arrived == [pytest.approx(0.01 + 0.1)]

    def test_transfer_time(self, net):
        assert net.transfer_time(500.0) == pytest.approx(0.01 + 0.5)

    def test_payload_args_passed(self, sim, net, vms):
        src, dst = vms
        got = []
        net.send(src, dst, 1.0, got.append, "payload")
        sim.run()
        assert got == ["payload"]

    def test_counters(self, sim, net, vms):
        src, dst = vms
        net.send(src, dst, 10.0, lambda: None)
        net.send(src, dst, 20.0, lambda: None)
        sim.run()
        assert net.messages_sent == 2
        assert net.messages_delivered == 2
        assert net.bytes_sent == 30.0


class TestCrashStopSemantics:
    def test_drop_when_destination_dead_at_delivery(self, sim, net, vms):
        src, dst = vms
        arrived = []
        net.send(src, dst, 100.0, arrived.append, "x")
        dst.fail()
        sim.run()
        assert arrived == []
        assert net.messages_dropped == 1

    def test_dead_source_does_not_send(self, sim, net, vms):
        src, dst = vms
        src.fail()
        arrived = []
        net.send(src, dst, 1.0, arrived.append, "x")
        sim.run()
        assert arrived == []
        assert net.messages_sent == 0

    def test_external_source_allowed(self, sim, net, vms):
        _src, dst = vms
        arrived = []
        net.send(None, dst, 1.0, arrived.append, "ext")
        sim.run()
        assert arrived == ["ext"]


class TestOrdering:
    def test_same_size_messages_arrive_in_send_order(self, sim, net, vms):
        """Constant-size messages make every link FIFO — the property the
        per-connection duplicate filter relies on."""
        src, dst = vms
        arrived = []
        for i in range(10):
            net.send(src, dst, 64.0, arrived.append, i)
        sim.run()
        assert arrived == list(range(10))

    def test_ties_broken_by_send_order_across_sources(self, sim, net):
        a = VirtualMachine(sim, 1)
        b = VirtualMachine(sim, 2)
        dst = VirtualMachine(sim, 3)
        arrived = []
        net.send(a, dst, 64.0, arrived.append, "a")
        net.send(b, dst, 64.0, arrived.append, "b")
        sim.run()
        assert arrived == ["a", "b"]


class TestValidation:
    def test_negative_latency_rejected(self, sim):
        with pytest.raises(SimulationError):
            Network(sim, latency=-1.0)

    def test_zero_bandwidth_rejected(self, sim):
        with pytest.raises(SimulationError):
            Network(sim, bandwidth_bytes_per_s=0.0)
