"""Tests for the network model."""

import pytest

from repro.chaos.plan import FaultRule, NetworkFaultPlan
from repro.errors import SimulationError
from repro.sim.network import Network
from repro.sim.vm import VirtualMachine


@pytest.fixture
def net(sim):
    return Network(sim, latency=0.01, bandwidth_bytes_per_s=1000.0)


@pytest.fixture
def vms(sim):
    return VirtualMachine(sim, 1), VirtualMachine(sim, 2)


class TestDelivery:
    def test_latency_plus_bandwidth_delay(self, sim, net, vms):
        src, dst = vms
        arrived = []
        net.send(src, dst, 100.0, lambda: arrived.append(sim.now))
        sim.run()
        assert arrived == [pytest.approx(0.01 + 0.1)]

    def test_transfer_time(self, net):
        assert net.transfer_time(500.0) == pytest.approx(0.01 + 0.5)

    def test_payload_args_passed(self, sim, net, vms):
        src, dst = vms
        got = []
        net.send(src, dst, 1.0, got.append, "payload")
        sim.run()
        assert got == ["payload"]

    def test_counters(self, sim, net, vms):
        src, dst = vms
        net.send(src, dst, 10.0, lambda: None)
        net.send(src, dst, 20.0, lambda: None)
        sim.run()
        assert net.messages_sent == 2
        assert net.messages_delivered == 2
        assert net.bytes_sent == 30.0


class TestCrashStopSemantics:
    def test_drop_when_destination_dead_at_delivery(self, sim, net, vms):
        src, dst = vms
        arrived = []
        net.send(src, dst, 100.0, arrived.append, "x")
        dst.fail()
        sim.run()
        assert arrived == []
        assert net.messages_dropped == 1

    def test_dead_source_counts_sent_and_dropped(self, sim, net, vms):
        """A dead source's message is accounted sent *and* dropped, so
        per-edge drop rates stay within [0, 1]."""
        src, dst = vms
        src.fail()
        arrived = []
        net.send(src, dst, 1.0, arrived.append, "x")
        sim.run()
        assert arrived == []
        assert net.messages_sent == 1
        assert net.messages_dropped == 1
        assert net.messages_delivered == 0

    def test_mid_delivery_destination_death_drops_exactly_once(
        self, sim, net, vms
    ):
        """A message in flight when the destination dies is dropped once:
        conservation sent == delivered + dropped holds on the edge."""
        src, dst = vms
        arrived = []
        net.send(src, dst, 100.0, arrived.append, "x")
        sim.schedule(0.05, dst.fail)
        sim.run()
        assert arrived == []
        stats = net.edge(src, dst)
        assert stats.sent == 1
        assert stats.dropped == 1
        assert stats.delivered == 0
        assert stats.sent == stats.delivered + stats.dropped

    def test_external_source_allowed(self, sim, net, vms):
        _src, dst = vms
        arrived = []
        net.send(None, dst, 1.0, arrived.append, "ext")
        sim.run()
        assert arrived == ["ext"]


class TestEdgeStats:
    def test_per_edge_accounting(self, sim, net, vms):
        src, dst = vms
        third = VirtualMachine(sim, 3)
        net.send(src, dst, 10.0, lambda: None)
        net.send(src, dst, 10.0, lambda: None)
        net.send(src, third, 10.0, lambda: None)
        sim.run()
        assert net.edge(src, dst).sent == 2
        assert net.edge(src, dst).delivered == 2
        assert net.edge(src, third).sent == 1
        assert net.edge(src, dst).drop_rate() == 0.0

    def test_drop_rate_counts_per_edge(self, sim, net, vms):
        src, dst = vms
        dst.fail()
        net.send(src, dst, 10.0, lambda: None)
        net.send(src, dst, 10.0, lambda: None)
        sim.run()
        assert net.edge(src, dst).drop_rate() == 1.0


class TestFaultPlan:
    def test_drop_becomes_retransmit_delay_not_loss(self, sim, net, vms):
        src, dst = vms
        plan = NetworkFaultPlan(
            [FaultRule(drop_rate=1.0, retransmit_delay=0.5)], seed=1
        )
        net.install_fault_plan(plan)
        arrived = []
        net.send(src, dst, 100.0, lambda: arrived.append(sim.now))
        sim.run()
        # Retransmitted, so it arrives late rather than disappearing.
        assert arrived == [pytest.approx(0.01 + 0.1 + 0.5)]
        assert plan.drops_injected == 1
        assert net.messages_delivered == 1
        assert net.messages_dropped == 0

    def test_fifo_preserved_under_reordering(self, sim, net, vms):
        """The reliable-transport clamp releases held messages in order:
        later sends never overtake an earlier delayed one."""
        src, dst = vms
        plan = NetworkFaultPlan(
            [FaultRule(reorder_rate=0.5, reorder_hold=0.3)], seed=7
        )
        net.install_fault_plan(plan)
        arrived = []
        for i in range(20):
            net.send(src, dst, 64.0, arrived.append, i)
        sim.run()
        assert plan.reorders_injected > 0
        assert arrived == list(range(20))

    def test_duplicate_delivered_after_primary(self, sim, net, vms):
        src, dst = vms
        plan = NetworkFaultPlan(
            [FaultRule(duplicate_rate=1.0)], seed=3, duplicate_lag=0.05
        )
        net.install_fault_plan(plan)
        arrived = []
        net.send(src, dst, 100.0, lambda: arrived.append(sim.now))
        sim.run()
        assert len(arrived) == 2
        assert arrived[1] == pytest.approx(arrived[0] + 0.05)
        assert net.messages_duplicated == 1
        assert net.edge(src, dst).duplicated == 1

    def test_control_traffic_untouched(self, sim, net, vms):
        src, dst = vms
        plan = NetworkFaultPlan(
            [FaultRule(drop_rate=1.0, duplicate_rate=1.0)], seed=2
        )
        net.install_fault_plan(plan)
        arrived = []
        net.send(
            src, dst, 100.0, lambda: arrived.append(sim.now), kind="control"
        )
        sim.run()
        assert arrived == [pytest.approx(0.01 + 0.1)]
        assert plan.faults_injected() == 0

    def test_time_window_scoping(self, sim, net, vms):
        src, dst = vms
        plan = NetworkFaultPlan(
            [FaultRule(drop_rate=1.0, retransmit_delay=1.0, window=(5.0, 10.0))],
            seed=4,
        )
        net.install_fault_plan(plan)
        net.send(src, dst, 1.0, lambda: None)  # before the window
        sim.run()
        assert plan.drops_injected == 0
        sim.schedule_at(6.0, net.send, src, dst, 1.0, lambda: None)
        sim.run()
        assert plan.drops_injected == 1

    def test_edge_scoping(self, sim, net, vms):
        src, dst = vms
        third = VirtualMachine(sim, 3)
        plan = NetworkFaultPlan(
            [
                FaultRule(
                    drop_rate=1.0,
                    retransmit_delay=1.0,
                    edges=frozenset({(src.vm_id, dst.vm_id)}),
                )
            ],
            seed=5,
        )
        net.install_fault_plan(plan)
        net.send(src, third, 1.0, lambda: None)
        sim.run()
        assert plan.drops_injected == 0
        net.send(src, dst, 1.0, lambda: None)
        sim.run()
        assert plan.drops_injected == 1

    def test_same_seed_same_fault_sequence(self):
        rule = FaultRule(
            drop_rate=0.3, duplicate_rate=0.2, reorder_rate=0.1, delay_rate=0.1
        )
        a = NetworkFaultPlan([rule], seed=42)
        b = NetworkFaultPlan([rule], seed=42)
        draws_a = [a.draw((1, 2), 0.0) for _ in range(200)]
        draws_b = [b.draw((1, 2), 0.0) for _ in range(200)]
        assert draws_a == draws_b
        assert a.faults_injected() == b.faults_injected() > 0


class TestEdgePruning:
    def test_prune_edges_drops_release_clocks(self, sim, net, vms):
        src, dst = vms
        plan = NetworkFaultPlan(
            [FaultRule(reorder_rate=1.0, reorder_hold=0.5)], seed=9
        )
        net.install_fault_plan(plan)
        net.send(src, dst, 64.0, lambda: None)
        net.send(dst, src, 64.0, lambda: None)
        assert len(net._edge_clear) == 2
        pruned = net.prune_edges(dst.vm_id)
        assert pruned == 2
        assert net._edge_clear == {}

    def test_prune_edges_keeps_unrelated_edges(self, sim, net, vms):
        src, dst = vms
        third = VirtualMachine(sim, 3)
        plan = NetworkFaultPlan(
            [FaultRule(reorder_rate=1.0, reorder_hold=0.5)], seed=9
        )
        net.install_fault_plan(plan)
        net.send(src, dst, 64.0, lambda: None)
        net.send(src, third, 64.0, lambda: None)
        assert net.prune_edges(dst.vm_id) == 1
        assert list(net._edge_clear) == [(src.vm_id, third.vm_id)]

    def test_prune_without_fault_plan_is_noop(self, sim, net, vms):
        src, dst = vms
        net.send(src, dst, 64.0, lambda: None)
        assert net.prune_edges(dst.vm_id) == 0

    def test_vm_failure_prunes_release_clocks(self):
        """The runtime prunes a crashed VM's edges automatically."""
        from tests.conftest import small_system

        system, gen, _col = small_system()
        plan = NetworkFaultPlan(
            [FaultRule(reorder_rate=1.0, reorder_hold=0.05)], seed=1
        )
        system.network.install_fault_plan(plan)
        for i in range(20):
            gen.feed_at(0.01 + i * 0.01, f"k{i}")
        system.sim.run(until=1.0)
        counter_vm = system.vm_of("counter")
        assert any(
            counter_vm.vm_id in key for key in system.network._edge_clear
        )
        system.injector.fail_target_at(lambda: counter_vm, 1.5)
        system.sim.run(until=2.0)
        assert not any(
            counter_vm.vm_id in key for key in system.network._edge_clear
        )


class TestOrdering:
    def test_same_size_messages_arrive_in_send_order(self, sim, net, vms):
        """Constant-size messages make every link FIFO — the property the
        per-connection duplicate filter relies on."""
        src, dst = vms
        arrived = []
        for i in range(10):
            net.send(src, dst, 64.0, arrived.append, i)
        sim.run()
        assert arrived == list(range(10))

    def test_ties_broken_by_send_order_across_sources(self, sim, net):
        a = VirtualMachine(sim, 1)
        b = VirtualMachine(sim, 2)
        dst = VirtualMachine(sim, 3)
        arrived = []
        net.send(a, dst, 64.0, arrived.append, "a")
        net.send(b, dst, 64.0, arrived.append, "b")
        sim.run()
        assert arrived == ["a", "b"]


class TestValidation:
    def test_negative_latency_rejected(self, sim):
        with pytest.raises(SimulationError):
            Network(sim, latency=-1.0)

    def test_zero_bandwidth_rejected(self, sim):
        with pytest.raises(SimulationError):
            Network(sim, bandwidth_bytes_per_s=0.0)


class TestPartitions:
    """Partition semantics per traffic class: heartbeats crossing an
    active cut are dropped outright; reliable classes are held back and
    released in per-edge FIFO order when the partition heals."""

    def _partitioned(self):
        from repro.chaos.plan import PartitionRule
        from repro.sim.network import (
            KIND_CONTROL,
            KIND_HEARTBEAT,
            KIND_MIGRATION,
        )

        plan = NetworkFaultPlan(
            [],
            seed=0,
            partitions=[
                PartitionRule(frozenset({1}), frozenset({2}), (0.0, 5.0))
            ],
        )
        return plan, KIND_CONTROL, KIND_HEARTBEAT, KIND_MIGRATION

    def test_heartbeats_dropped_reliable_classes_held(self, sim, net, vms):
        src, dst = vms
        plan, control, heartbeat, migration = self._partitioned()
        net.install_fault_plan(plan)
        log = []
        net.send(src, dst, 1.0, lambda: log.append(("hb", sim.now)),
                 kind=heartbeat)
        net.send(src, dst, 1.0, lambda: log.append(("data", sim.now)))
        net.send(src, dst, 1.0, lambda: log.append(("ctl", sim.now)),
                 kind=control)
        net.send(src, dst, 1.0, lambda: log.append(("mig", sim.now)),
                 kind=migration)
        sim.run()
        kinds = [k for k, _t in log]
        assert "hb" not in kinds  # a late heartbeat is a missed heartbeat
        assert kinds == ["data", "ctl", "mig"]  # send order preserved
        assert all(t >= 5.0 for _k, t in log)  # released at heal, not before
        assert plan.partition_drops == 1
        assert plan.partition_holds == 3

    def test_fifo_across_the_heal(self, sim, net, vms):
        """A message sent after the partition heals must not overtake one
        still held from inside the window."""
        src, dst = vms
        plan, _control, _heartbeat, _migration = self._partitioned()
        net.install_fault_plan(plan)
        log = []
        net.send(src, dst, 1.0, lambda: log.append("held"))
        sim.schedule_at(
            5.5, lambda: net.send(src, dst, 1.0, lambda: log.append("fresh"))
        )
        sim.run()
        assert log == ["held", "fresh"]

    def test_uninvolved_edges_unaffected(self, sim, net, vms):
        src, _dst = vms
        outsider = VirtualMachine(sim, 7)
        plan, _control, heartbeat, _migration = self._partitioned()
        net.install_fault_plan(plan)
        log = []
        net.send(src, outsider, 1.0, lambda: log.append(sim.now),
                 kind=heartbeat)
        sim.run()
        assert log and log[0] < 1.0
        assert plan.partition_drops == 0

    def test_heartbeats_after_heal_flow_again(self, sim, net, vms):
        src, dst = vms
        plan, _control, heartbeat, _migration = self._partitioned()
        net.install_fault_plan(plan)
        log = []
        sim.schedule_at(
            6.0,
            lambda: net.send(
                src, dst, 1.0, lambda: log.append(sim.now), kind=heartbeat
            ),
        )
        sim.run()
        assert len(log) == 1

    def test_partition_verdict_consumes_no_randomness(self, sim, net, vms):
        """Partition checks must not advance the fault-plan RNG: two
        plans differing only in partition traffic draw identical fault
        sequences for everything else."""
        src, dst = vms
        plan, _control, heartbeat, _migration = self._partitioned()
        state_before = plan._rng.getstate()
        for _ in range(5):
            net.install_fault_plan(plan)
            net.send(src, dst, 1.0, lambda: None, kind=heartbeat)
        sim.run()
        assert plan._rng.getstate() == state_before
