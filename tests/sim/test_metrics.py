"""Tests for the metrics infrastructure, including property-based checks
on the weighted percentile implementation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    LatencyReservoir,
    MetricsHub,
    PhaseTimeline,
    RateSeries,
    TimeSeries,
)


class TestTimeSeries:
    def test_record_and_read(self):
        series = TimeSeries("x")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.last() == 20.0
        assert len(series) == 2

    def test_value_at(self):
        series = TimeSeries("x")
        series.record(1.0, 10.0)
        series.record(5.0, 50.0)
        assert series.value_at(0.5) == 0.0
        assert series.value_at(1.0) == 10.0
        assert series.value_at(3.0) == 10.0
        assert series.value_at(9.0) == 50.0

    def test_out_of_order_samples_inserted(self):
        series = TimeSeries("x")
        series.record(5.0, 50.0)
        series.record(1.0, 10.0)
        assert series.times == [1.0, 5.0]
        assert series.value_at(2.0) == 10.0

    def test_as_arrays(self):
        series = TimeSeries("x")
        series.record(1.0, 2.0)
        times, values = series.as_arrays()
        assert times.tolist() == [1.0]
        assert values.tolist() == [2.0]


class TestRateSeries:
    def test_rate_binning(self):
        series = RateSeries("r", bin_width=1.0)
        series.record(0.2, 5)
        series.record(0.9, 5)
        series.record(1.5, 3)
        assert series.rate_at(0.5) == 10.0
        assert series.rate_at(1.5) == 3.0
        assert series.total() == 13.0

    def test_max_rate(self):
        series = RateSeries("r", bin_width=2.0)
        series.record(0.0, 10)
        series.record(3.0, 30)
        assert series.max_rate() == 15.0

    def test_series_sorted(self):
        series = RateSeries("r")
        series.record(5.2, 1)
        series.record(1.1, 1)
        times, rates = series.series()
        assert times.tolist() == [1.5, 5.5]
        assert rates.tolist() == [1.0, 1.0]

    def test_empty(self):
        times, rates = RateSeries("r").series()
        assert times.size == 0 and rates.size == 0
        assert RateSeries("r").max_rate() == 0.0

    def test_samples_on_bin_boundaries_accumulate(self):
        series = RateSeries("r", bin_width=0.5)
        series.record(1.0, 2)
        series.record(1.0, 3)
        series.record(1.49, 1)
        assert series.rate_at(1.2) == 12.0  # 6 samples / 0.5s bin
        assert series.total() == 6.0


class TestPhaseTimeline:
    def build(self):
        timeline = PhaseTimeline("recovery", "counter", [7], 1.0)
        timeline.enter("PLAN", 1.0)
        timeline.enter("ACQUIRE_VMS", 1.0)
        timeline.enter("TRANSFER", 2.0)
        timeline.enter("DONE", 5.5)
        timeline.close(5.5, "done")
        return timeline

    def test_enter_closes_previous_span(self):
        timeline = self.build()
        assert timeline.phases == ["PLAN", "ACQUIRE_VMS", "TRANSFER", "DONE"]
        assert timeline.span("PLAN").duration == 0.0
        assert timeline.span("ACQUIRE_VMS").duration == 1.0
        assert timeline.span("TRANSFER").duration == 3.5
        assert timeline.outcome == "done"

    def test_phase_duration_and_total(self):
        timeline = self.build()
        assert timeline.phase_duration("TRANSFER") == 3.5
        assert timeline.phase_duration("MISSING") == 0.0
        assert timeline.phase_duration("MISSING", default=math.nan) is not None
        assert timeline.total_duration() == 4.5

    def test_as_rows(self):
        timeline = self.build()
        rows = timeline.as_rows()
        assert rows[0] == ("PLAN", 1.0, 1.0)
        assert rows[-1] == ("DONE", 5.5, 5.5)

    def test_add_slots_deduplicates(self):
        timeline = PhaseTimeline("scale_out", "counter", [7], 0.0)
        timeline.add_slots([7, 8, 9])
        timeline.add_slots([8, 10])
        assert timeline.slot_uids == [7, 8, 9, 10]

    def test_open_span_has_no_duration(self):
        timeline = PhaseTimeline("scale_out", "counter", [1], 0.0)
        timeline.enter("PLAN", 0.0)
        assert timeline.span("PLAN").duration is None
        assert timeline.outcome is None


class TestTimelineRegistry:
    def test_start_and_query(self):
        hub = MetricsHub()
        a = hub.start_phase_timeline("scale_out", "counter", [1], 0.0)
        b = hub.start_phase_timeline("recovery", "counter", [2], 1.0)
        c = hub.start_phase_timeline("recovery", "mid", [3], 2.0)
        assert hub.timelines() == [a, b, c]
        assert hub.timelines(kind="recovery") == [b, c]
        assert hub.timelines(kind="recovery", op_name="counter") == [b]
        assert hub.timelines(slot_uid=3) == [c]
        assert hub.timelines(kind="scale_in") == []


class TestLatencyReservoir:
    def test_simple_percentiles(self):
        res = LatencyReservoir()
        for i in range(1, 101):
            res.record(0.0, float(i))
        assert res.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert res.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert res.median() == res.percentile(50)

    def test_weights_shift_percentiles(self):
        res = LatencyReservoir()
        res.record(0.0, 1.0, weight=99)
        res.record(0.0, 100.0, weight=1)
        assert res.percentile(50) == 1.0
        assert res.percentile(99.9) == 100.0

    def test_window_filtering(self):
        res = LatencyReservoir()
        res.record(1.0, 10.0)
        res.record(5.0, 20.0)
        assert res.percentile(50, t_min=2.0) == 20.0
        assert res.percentile(50, t_max=2.0) == 10.0

    def test_empty_returns_nan(self):
        assert math.isnan(LatencyReservoir().percentile(50))
        assert math.isnan(LatencyReservoir().mean())

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyReservoir().record(0.0, -1.0)

    def test_bad_percentile_rejected(self):
        res = LatencyReservoir()
        res.record(0.0, 1.0)
        with pytest.raises(ValueError):
            res.percentile(101)

    def test_over_time_bins(self):
        res = LatencyReservoir()
        for t in range(10):
            res.record(float(t), float(t))
        centres, values = res.over_time(bin_width=5.0, q=50.0)
        assert centres.tolist() == [2.5, 7.5]
        assert values[0] < values[1]

    def test_mean_weighted(self):
        res = LatencyReservoir()
        res.record(0.0, 0.0, weight=3)
        res.record(0.0, 4.0, weight=1)
        assert res.mean() == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.integers(min_value=1, max_value=10),
            ),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentile_matches_expanded_samples(self, samples, q):
        """Weighted percentile == percentile of the weight-expanded list."""
        res = LatencyReservoir()
        expanded = []
        for latency, weight in samples:
            res.record(0.0, latency, weight)
            expanded.extend([latency] * weight)
        expanded.sort()
        got = res.percentile(q)
        # Expected: smallest value whose cumulative weight reaches q%.
        cutoff = q / 100.0 * len(expanded)
        index = min(int(np.searchsorted(np.arange(1, len(expanded) + 1), cutoff)),
                    len(expanded) - 1)
        assert got == pytest.approx(expanded[index])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_percentile_monotone_in_q(self, latencies):
        res = LatencyReservoir()
        for latency in latencies:
            res.record(0.0, latency)
        values = [res.percentile(q) for q in (0, 25, 50, 75, 100)]
        assert values == sorted(values)
        assert values[-1] == max(latencies)


class TestLatencyReservoirEdgeCases:
    def test_empty_reservoir_windowed_is_nan(self):
        res = LatencyReservoir()
        assert math.isnan(res.percentile(50, t_min=0.0, t_max=10.0))
        assert math.isnan(res.mean(t_min=0.0))

    def test_point_window_t_min_equals_t_max(self):
        """Both bounds are inclusive: a point window keeps exact hits."""
        res = LatencyReservoir()
        res.record(1.0, 10.0)
        res.record(2.0, 20.0)
        res.record(3.0, 30.0)
        assert res.percentile(50, t_min=2.0, t_max=2.0) == 20.0
        assert math.isnan(res.percentile(50, t_min=2.5, t_max=2.5))

    def test_single_sample_window(self):
        """Any q over one sample returns that sample."""
        res = LatencyReservoir()
        res.record(1.0, 10.0)
        res.record(9.0, 90.0)
        for q in (0, 50, 100):
            assert res.percentile(q, t_min=5.0, t_max=10.0) == 90.0
        assert res.mean(t_min=5.0) == 90.0

    def test_inverted_window_is_empty(self):
        res = LatencyReservoir()
        res.record(1.0, 10.0)
        assert math.isnan(res.percentile(50, t_min=2.0, t_max=1.5))


class TestPhaseTimelineReopened:
    def test_as_rows_preserves_entry_order_on_reopened_phase(self):
        """A phase entered twice (e.g. TRANSFER retried after a mid-flight
        failure) yields two rows, in entry order, each with its own span."""
        timeline = PhaseTimeline("recovery", "counter", [7], 0.0)
        timeline.enter("PLAN", 0.0)
        timeline.enter("TRANSFER", 1.0)
        timeline.enter("PLAN", 3.0)
        timeline.enter("TRANSFER", 4.0)
        timeline.enter("DONE", 6.0)
        timeline.close(6.0, "done")
        rows = timeline.as_rows()
        assert [r[0] for r in rows] == [
            "PLAN", "TRANSFER", "PLAN", "TRANSFER", "DONE",
        ]
        starts = [r[1] for r in rows]
        assert starts == sorted(starts)
        assert rows[1] == ("TRANSFER", 1.0, 3.0)
        assert rows[3] == ("TRANSFER", 4.0, 6.0)
        # total spans first start → last end, across the reopened phases
        assert timeline.total_duration() == 6.0


class TestMetricsHub:
    def test_lazily_creates_metrics(self):
        hub = MetricsHub()
        assert hub.timeseries("a") is hub.timeseries("a")
        assert hub.rate("b") is hub.rate("b")
        assert hub.latency("c") is hub.latency("c")

    def test_deprecated_aliases_warn_and_delegate(self):
        hub = MetricsHub()
        with pytest.warns(DeprecationWarning, match="timeseries"):
            assert hub.time_series_for("a") is hub.timeseries("a")
        with pytest.warns(DeprecationWarning, match="rate"):
            assert hub.rate_series_for("b") is hub.rate("b")
        with pytest.warns(DeprecationWarning, match="latency"):
            assert hub.latency_for("c") is hub.latency("c")

    def test_counters(self):
        hub = MetricsHub()
        hub.increment("n")
        hub.increment("n", 2.5)
        assert hub.counter("n") == 3.5
        assert hub.counter("missing") == 0.0

    def test_events(self):
        hub = MetricsHub()
        hub.mark_event(1.0, "failure", "vm 3")
        hub.mark_event(2.0, "recovery_complete", "")
        assert hub.events_of_kind("failure") == [(1.0, "failure", "vm 3")]

    def test_event_listeners_receive_structured_fields(self):
        hub = MetricsHub()
        seen = []
        hub.on_event(lambda t, kind, detail, fields: seen.append(
            (t, kind, detail, fields)
        ))
        hub.mark_event(1.0, "failure", "vm 3", slot=7)
        assert seen == [(1.0, "failure", "vm 3", {"slot": 7})]
        # the legacy tuple log is unchanged by extra fields
        assert hub.events_of_kind("failure") == [(1.0, "failure", "vm 3")]
