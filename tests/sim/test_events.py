"""Tests for the event queue primitives."""

import pytest

from repro.errors import EventError
from repro.sim.events import Event, EventQueue


def make_event(time, priority=10, seq=0, out=None):
    out = out if out is not None else []
    return Event(time, priority, seq, out.append, ("x",))


class TestEventOrdering:
    def test_orders_by_time(self):
        a = Event(2.0, 10, 1, lambda: None, ())
        b = Event(1.0, 10, 2, lambda: None, ())
        assert b < a

    def test_ties_broken_by_priority(self):
        a = Event(1.0, 10, 1, lambda: None, ())
        b = Event(1.0, 5, 2, lambda: None, ())
        assert b < a

    def test_ties_broken_by_sequence(self):
        a = Event(1.0, 10, 1, lambda: None, ())
        b = Event(1.0, 10, 2, lambda: None, ())
        assert a < b


class TestEventCancellation:
    def test_cancel_marks_event(self):
        event = make_event(1.0)
        assert event.pending
        event.cancel()
        assert not event.pending
        assert event.cancelled

    def test_cancel_after_fire_raises(self):
        event = make_event(1.0)
        event._mark_fired()
        with pytest.raises(EventError):
            event.cancel()


class TestEventQueue:
    def test_pop_returns_events_in_order(self):
        queue = EventQueue()
        for t, seq in [(3.0, 1), (1.0, 2), (2.0, 3)]:
            queue.push(Event(t, 10, seq, lambda: None, ()))
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_pop_skips_cancelled(self):
        queue = EventQueue()
        first = Event(1.0, 10, 1, lambda: None, ())
        second = Event(2.0, 10, 2, lambda: None, ())
        queue.push(first)
        queue.push(second)
        first.cancel()
        assert queue.pop() is second

    def test_len_counts_live_events(self):
        queue = EventQueue()
        first = Event(1.0, 10, 1, lambda: None, ())
        queue.push(first)
        queue.push(Event(2.0, 10, 2, lambda: None, ()))
        assert len(queue) == 2
        first.cancel()
        queue.peek_time()  # triggers lazy deletion
        assert len(queue) == 1

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = Event(1.0, 10, 1, lambda: None, ())
        queue.push(event)
        queue.push(Event(2.0, 10, 2, lambda: None, ()))
        event.cancel()
        event.cancel()
        assert len(queue) == 1


class TestCompaction:
    def test_mass_cancellation_compacts_heap(self):
        queue = EventQueue()
        events = [Event(float(i), 10, i, lambda: None, ()) for i in range(200)]
        for event in events:
            queue.push(event)
        # Cancel past the half mark; once more than half the heap is dead
        # the queue must rebuild it instead of carrying the corpses.
        for event in events[99:]:
            event.cancel()
        assert len(queue._heap) == 99
        assert queue._dead == 0
        assert len(queue) == 99

    def test_len_accurate_through_compaction(self):
        queue = EventQueue()
        events = [Event(float(i), 10, i, lambda: None, ()) for i in range(300)]
        for event in events:
            queue.push(event)
        for event in events[::2]:
            event.cancel()
        assert len(queue) == 150
        popped = []
        while (event := queue.pop()) is not None:
            popped.append(event)
        assert len(popped) == 150
        assert all(not e.cancelled for e in popped)
        assert len(queue) == 0

    def test_small_heaps_not_compacted(self):
        queue = EventQueue()
        events = [Event(float(i), 10, i, lambda: None, ()) for i in range(10)]
        for event in events:
            queue.push(event)
        for event in events[:9]:
            event.cancel()
        # Below the compaction floor the dead stay until lazy deletion.
        assert len(queue._heap) == 10
        assert len(queue) == 1

    def test_pop_after_interleaved_cancels(self):
        queue = EventQueue()
        live = []
        for i in range(128):
            event = Event(float(i), 10, i, lambda: None, ())
            queue.push(event)
            if i % 3:
                event.cancel()
            else:
                live.append(event)
        order = []
        while (event := queue.pop()) is not None:
            order.append(event)
        assert order == live
