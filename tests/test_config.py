"""Tests for configuration validation."""

import pytest

from repro.config import (
    CheckpointConfig,
    CloudConfig,
    FaultToleranceConfig,
    NetworkConfig,
    ScalingConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        SystemConfig().validate()

    def test_paper_defaults(self):
        config = SystemConfig()
        assert config.checkpoint.interval == 5.0
        assert config.scaling.report_interval == 5.0
        assert config.scaling.threshold == 0.70
        assert config.scaling.consecutive_reports == 2

    def test_bad_checkpoint_interval(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(interval=0.0).validate()

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            ScalingConfig(threshold=1.5).validate()
        with pytest.raises(ConfigurationError):
            ScalingConfig(threshold=0.0).validate()

    def test_bad_split_factor(self):
        with pytest.raises(ConfigurationError):
            ScalingConfig(split_factor=1).validate()

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            FaultToleranceConfig(strategy="magic").validate()

    def test_bad_recovery_parallelism(self):
        with pytest.raises(ConfigurationError):
            FaultToleranceConfig(recovery_parallelism=0).validate()

    def test_bad_network(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(bandwidth_bytes_per_s=0).validate()

    def test_bad_cloud(self):
        with pytest.raises(ConfigurationError):
            CloudConfig(pool_size=-1).validate()
        with pytest.raises(ConfigurationError):
            CloudConfig(worker_capacity=0).validate()

    def test_bad_queue_capacity(self):
        config = SystemConfig(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_bad_latency_sampling(self):
        config = SystemConfig(latency_sample_every=0)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_with_overrides(self):
        config = SystemConfig().with_overrides(seed=42, queue_capacity=10.0)
        assert config.seed == 42
        assert config.queue_capacity == 10.0
        # original untouched
        assert SystemConfig().seed == 0
