"""Randomized partition-and-gray-failure sweeps under the phi detector.

The 20-seed matrix is the asynchrony-tolerance acceptance gate: network
partitions sever workers from the monitor so the phi-accrual detector
*manufactures false suspicions*, heartbeat mutes fake gray failures,
stragglers must not trip detection at all, and Poisson crash-stop
failures run concurrently — so genuine recoveries race condemned
zombies.  Every seed is audited against the full invariant set
(exactly-once sink output against the golden run included).  The matrix
is marked ``chaos`` and runs in CI's dedicated chaos job
(``pytest -m chaos``); a violating seed reproduces from the seed alone
via ``ChaosRunner().run_partition_seed(seed)``.
"""

import os

import pytest

from repro.chaos.runner import ChaosRunner

#: One shared runner per module: the golden run is computed once and
#: reused by every seed (the workload RNG is independent of chaos seeds).
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        # CI sets CHAOS_TRACE_DIR so a violating seed leaves its causal
        # JSONL trace behind as a workflow artifact.
        _RUNNER = ChaosRunner(trace_dir=os.environ.get("CHAOS_TRACE_DIR"))
    return _RUNNER


def test_partition_manufactures_false_suspicion_and_system_survives():
    """Quick tier-1 check: one partitioned seed end to end — the phi
    detector falsely condemns a partitioned-but-healthy worker, the
    zombie is fenced, and the audit still sees exact sink output."""
    result = runner().run_partition_seed(0)
    assert result.survived, result.describe()
    assert result.false_suspicions > 0
    assert result.zombies_fenced > 0
    assert result.recoveries > 0


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_partition_seed_upholds_all_invariants(seed):
    result = runner().run_partition_seed(seed)
    assert result.survived, result.describe()
