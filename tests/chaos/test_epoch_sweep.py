"""Mid-epoch kill sweeps under barrier checkpointing.

Barrier mode replaces the per-instance checkpoint daemons with
source-injected epoch barriers and incremental cuts, so a crash has a
new worst case: the in-flight epoch's cuts are partially shipped when a
worker dies.  Recovery must ignore the incomplete epoch and fall back
to the last *complete* epoch's base + deltas, replaying the difference.
The 20-seed matrix lands a kill a few milliseconds after a barrier
injection — during propagation, alignment, or cut serialisation — under
seeded network faults, and asserts the invariant set and golden-run
equivalence hold, the same acceptance gate as every other sweep.
"""

import os

import pytest

from repro.chaos.runner import ChaosRunner

#: One shared runner per module: the golden run (also barrier-mode) is
#: computed once and reused by every seed.
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ChaosRunner(
            checkpoint_mode="barrier",
            trace_dir=os.environ.get("CHAOS_TRACE_DIR"),
        )
    return _RUNNER


def test_mid_epoch_kill_falls_back_to_last_complete_epoch(tmp_path):
    """Quick tier-1 check: a worker killed mid-epoch (no network faults)
    recovers from the last complete epoch and stays exactly-once."""
    quick = ChaosRunner(
        checkpoint_mode="barrier", duration=90.0,
        trace_dir=str(tmp_path / "traces"),
    )
    result = quick.run_epoch_kill(2, network_faults=False)
    assert result.failures == 1
    assert result.recoveries >= 1
    assert result.survived, result.describe()


def test_epoch_kill_requires_barrier_mode():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        ChaosRunner().run_epoch_kill(0)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_epoch_kill_seed_upholds_all_invariants(seed):
    result = runner().run_epoch_kill(seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_epoch_kill_violations_reproducible_from_seed_alone():
    a = ChaosRunner(checkpoint_mode="barrier").run_epoch_kill(3)
    b = ChaosRunner(checkpoint_mode="barrier").run_epoch_kill(3)
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
