"""Randomized chaos sweeps over mid-carve-out VM kills.

A hot-key carve-out is a *partial* fluid migration: one singleton
interval leaves a live slot for a dedicated target while the source
keeps the remainder and its buffers.  The commit is the riskiest
instant — the hot key's routing has just swapped, the source's frozen
backup has shed the moved range, and parked tuples are replaying to
the target.  Each sweep seed starts a carve-out of the operator's
heaviest key and kills one role VM (cycling source / target / backup)
exactly at the carve chunk's commit, on top of a seeded network fault
plan.  The acceptance gate is the same as for every other sweep: zero
invariant violations and golden-run sink equivalence.
"""

import os

import pytest

from repro.chaos.runner import ChaosRunner
from repro.chaos.schedule import (
    TARGET_BACKUP_VM,
    TARGET_SOURCE_VM,
    TARGET_TARGET_VM,
)

#: Role killed for a given seed: seeds cycle source / target / backup so
#: a 20-seed sweep covers every role under many fault schedules.
_ROLES = [TARGET_SOURCE_VM, TARGET_TARGET_VM, TARGET_BACKUP_VM]

#: One shared runner per module: the golden run is computed once and
#: reused by every seed.
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ChaosRunner(
            migration_chunks=2, trace_dir=os.environ.get("CHAOS_TRACE_DIR")
        )
    return _RUNNER


def test_carveout_target_kill_is_absorbed():
    """Quick tier-1 check: killing the freshly carved slot's VM right at
    the carve commit (hot key routed to the dying target, source already
    slimmed) recovers without losing or duplicating a single tuple."""
    result = runner().run_carveout_kill(TARGET_TARGET_VM, seed=3)
    assert result.failures >= 1
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_mid_carveout_kill_seed_upholds_all_invariants(seed):
    role = _ROLES[seed % len(_ROLES)]
    result = runner().run_carveout_kill(role, seed=seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_carveout_violations_reproducible_from_seed_alone():
    a = ChaosRunner(migration_chunks=2).run_carveout_kill(
        TARGET_SOURCE_VM, seed=5
    )
    b = ChaosRunner(migration_chunks=2).run_carveout_kill(
        TARGET_SOURCE_VM, seed=5
    )
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
