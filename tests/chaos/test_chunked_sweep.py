"""Randomized chaos sweeps over fluid (chunked) state migration.

Fluid migration moves an operator's key range in several independently
committed chunks, so a crash can now land *mid-migration*: some chunks
already routed to the target, the rest still live on the source, a
commit drain possibly in flight.  Each sweep seed arms a kill on one
per-chunk commit — cycling through the source VM, the target VM and the
backup VM — on top of the usual network fault plan, and asserts the
invariant set and golden-run sink equivalence are unaffected.  The
acceptance gate is the same as for the other sweeps: zero violations.
"""

import os

import pytest

from repro.chaos.runner import ChaosRunner
from repro.chaos.schedule import (
    TARGET_BACKUP_VM,
    TARGET_SOURCE_VM,
    TARGET_TARGET_VM,
)

#: Role killed for a given seed: seeds cycle source / target / backup so
#: a 20-seed sweep covers every role at several chunk indices.
_ROLES = [TARGET_SOURCE_VM, TARGET_TARGET_VM, TARGET_BACKUP_VM]

#: One shared runner per module: the golden run (also chunked) is
#: computed once and reused by every seed.
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ChaosRunner(
            migration_chunks=6, trace_dir=os.environ.get("CHAOS_TRACE_DIR")
        )
    return _RUNNER


def test_mid_chunk_source_kill_is_absorbed():
    """Quick tier-1 check: killing the source VM right after one chunk
    commits (committed ranges on the target, the rest still on the dying
    source) recovers without losing or duplicating a single tuple."""
    result = runner().run_chunk_kill(1, TARGET_SOURCE_VM, seed=7)
    assert result.failures >= 1
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_mid_chunk_kill_seed_upholds_all_invariants(seed):
    role = _ROLES[seed % len(_ROLES)]
    result = runner().run_chunk_kill(seed % 5, role, seed=seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_chunked_violations_reproducible_from_seed_alone():
    a = ChaosRunner(migration_chunks=6).run_chunk_kill(
        2, TARGET_TARGET_VM, seed=3
    )
    b = ChaosRunner(migration_chunks=6).run_chunk_kill(
        2, TARGET_TARGET_VM, seed=3
    )
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
