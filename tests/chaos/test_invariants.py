"""Unit tests for the invariant checker's oracles."""

from repro.chaos.invariants import (
    InvariantChecker,
    compare_windows,
    eligible_windows,
)
from tests.conftest import small_system


class FakeCollector:
    def __init__(self, windows):
        self._windows = windows

    def counts_for_window(self, idx):
        return self._windows.get(idx, {})


class TestEligibleWindows:
    def test_only_finalized_windows(self):
        # duration 150, window 15, grace 10, margin 10: window idx is
        # eligible while (idx+1)*15 + 20 <= 150.
        assert eligible_windows(150.0, 15.0, grace=10.0, margin=10.0) == list(
            range(8)
        )

    def test_empty_when_run_too_short(self):
        assert eligible_windows(20.0, 15.0, grace=10.0, margin=10.0) == []


class TestCompareWindows:
    def test_equal_output_passes(self):
        golden = FakeCollector({0: {"a": 2, "b": 1}})
        chaos = FakeCollector({0: {"a": 2, "b": 1}})
        assert compare_windows(golden, chaos, [0]) == []

    def test_lost_key_detected(self):
        golden = FakeCollector({0: {"a": 2, "b": 1}})
        chaos = FakeCollector({0: {"a": 2}})
        violations = compare_windows(golden, chaos, [0])
        assert len(violations) == 1
        assert violations[0].name == "sink_output"
        assert "b" in violations[0].detail

    def test_duplicate_contribution_detected(self):
        golden = FakeCollector({0: {"a": 2}})
        chaos = FakeCollector({0: {"a": 3}})
        violations = compare_windows(golden, chaos, [0])
        assert len(violations) == 1

    def test_windows_outside_oracle_ignored(self):
        golden = FakeCollector({0: {"a": 2}, 1: {"a": 5}})
        chaos = FakeCollector({0: {"a": 2}, 1: {"a": 99}})
        assert compare_windows(golden, chaos, [0]) == []


class TestInvariantCheckerOnLiveSystem:
    def test_clean_run_has_no_violations(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=10.0)
        assert InvariantChecker(system).check() == []

    def test_recovered_run_has_no_violations(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        for i in range(10):
            gen.feed(f"k{i}")
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 5.0)
        system.run(until=30.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        assert InvariantChecker(system).check() == []

    def test_leaked_vm_detected(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=5.0)
        # Acquire a VM and "forget" it: neither pooled nor hosting.
        leaked = []
        system.pool.acquire(leaked.append)
        system.run(until=30.0)
        assert leaked
        violations = InvariantChecker(system).check_no_leaked_vms()
        assert any(v.name == "vm_leak" for v in violations)
