"""Randomized chaos sweeps.

The 20-seed matrix is the PR's acceptance gate: network loss,
duplication, re-ordering and delay spikes plus Poisson crash-stop
failures, audited against the full invariant set and a golden run.  It
is marked ``chaos`` and runs in CI's dedicated chaos job
(``pytest -m chaos``); a violating seed reproduces from the seed alone
via ``ChaosRunner().run_seed(seed)``.
"""

import pytest

from repro.chaos.runner import ChaosRunner

#: One shared runner per module: the golden run is computed once and
#: reused by every seed (the workload RNG is independent of chaos seeds).
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ChaosRunner()
    return _RUNNER


def test_network_faults_alone_are_absorbed():
    """Quick tier-1 check: with no crashes, the reliable-transport model
    plus the duplicate filter absorb every injected network fault."""
    quick = ChaosRunner(duration=90.0, mtbf=1e9)
    result = quick.run_seed(4)
    assert result.failures == 0
    assert result.faults > 0
    assert result.survived, result.describe()


def test_lrb_pipeline_survives_chaos():
    """The multi-operator LRB pipeline under network faults + crashes:
    toll totals must match the golden run exactly."""
    lrb = ChaosRunner(workload="lrb", duration=120.0, lrb_xways=1)
    result = lrb.run_seed(1)
    assert result.failures > 0
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_seed_upholds_all_invariants(seed):
    result = runner().run_seed(seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_violations_reproducible_from_seed_alone():
    """Two independent runs of the same seed agree on every observable
    the sweep reports — a violating seed can be replayed for debugging."""
    a = ChaosRunner().run_seed(3)
    b = ChaosRunner().run_seed(3)
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
