"""Randomized chaos sweeps.

The 20-seed matrix is the PR's acceptance gate: network loss,
duplication, re-ordering and delay spikes plus Poisson crash-stop
failures, audited against the full invariant set and a golden run.  It
is marked ``chaos`` and runs in CI's dedicated chaos job
(``pytest -m chaos``); a violating seed reproduces from the seed alone
via ``ChaosRunner().run_seed(seed)``.
"""

import json
import os

import pytest

from repro.chaos.invariants import Violation
from repro.chaos.runner import ChaosRunner

#: One shared runner per module: the golden run is computed once and
#: reused by every seed (the workload RNG is independent of chaos seeds).
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        # CI sets CHAOS_TRACE_DIR so a violating seed leaves its causal
        # JSONL trace behind as a workflow artifact.
        _RUNNER = ChaosRunner(trace_dir=os.environ.get("CHAOS_TRACE_DIR"))
    return _RUNNER


def test_network_faults_alone_are_absorbed(tmp_path):
    """Quick tier-1 check: with no crashes, the reliable-transport model
    plus the duplicate filter absorb every injected network fault."""
    quick = ChaosRunner(
        duration=90.0, mtbf=1e9, trace_dir=str(tmp_path / "traces")
    )
    result = quick.run_seed(4)
    assert result.failures == 0
    assert result.faults > 0
    assert result.survived, result.describe()
    # surviving seeds dump no trace
    assert result.trace_path is None
    assert not (tmp_path / "traces").exists()


def test_violating_seed_dumps_causal_trace(tmp_path, monkeypatch):
    """With ``trace_dir`` set, a run that breaks an invariant leaves a
    causally linked JSONL trace behind, named by workload and seed."""
    quick = ChaosRunner(
        duration=90.0, mtbf=1e9, trace_dir=str(tmp_path / "traces")
    )
    from repro.chaos import invariants

    monkeypatch.setattr(
        invariants.InvariantChecker,
        "check",
        lambda self: [Violation("forced", "injected by test")],
    )
    result = quick.run_seed(4)
    assert not result.survived
    assert result.trace_path is not None
    assert result.trace_path.endswith("chaos-wordcount-seed4.jsonl")
    assert "trace:" in result.describe()
    with open(result.trace_path, encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    assert records[0]["kind"] == "run_meta"
    kinds = {r["kind"] for r in records}
    assert "span" in kinds  # the causal trace rode along


def test_lrb_pipeline_survives_chaos():
    """The multi-operator LRB pipeline under network faults + crashes:
    toll totals must match the golden run exactly."""
    lrb = ChaosRunner(workload="lrb", duration=120.0, lrb_xways=1)
    result = lrb.run_seed(1)
    assert result.failures > 0
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_seed_upholds_all_invariants(seed):
    result = runner().run_seed(seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_violations_reproducible_from_seed_alone():
    """Two independent runs of the same seed agree on every observable
    the sweep reports — a violating seed can be replayed for debugging."""
    a = ChaosRunner().run_seed(3)
    b = ChaosRunner().run_seed(3)
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
