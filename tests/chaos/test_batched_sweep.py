"""Randomized chaos sweeps over the batched data plane.

Batching coalesces output tuples into multi-tuple network messages, so
one perturbed message now carries a whole batch: a delayed batch
head-of-line blocks more data, a duplicated batch re-delivers every
tuple in it, and a crashed sender loses whole pending batches.  The
20-seed matrix asserts the invariant set and golden-run equivalence are
unaffected — the same acceptance gate as the unbatched sweep.
"""

import os

import pytest

from repro.chaos.runner import ChaosRunner

#: One shared runner per module: the golden run (also batched) is
#: computed once and reused by every seed.
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ChaosRunner(
            batching=True, trace_dir=os.environ.get("CHAOS_TRACE_DIR")
        )
    return _RUNNER


def test_batched_network_faults_alone_are_absorbed(tmp_path):
    """Quick tier-1 check: per-batch faults (loss, duplication,
    re-ordering of whole batches) are absorbed by the reliable transport
    and the per-tuple duplicate filter."""
    quick = ChaosRunner(
        batching=True, duration=90.0, mtbf=1e9,
        trace_dir=str(tmp_path / "traces"),
    )
    result = quick.run_seed(4)
    assert result.failures == 0
    assert result.faults > 0
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_batched_seed_upholds_all_invariants(seed):
    result = runner().run_seed(seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_batched_violations_reproducible_from_seed_alone():
    a = ChaosRunner(batching=True).run_seed(3)
    b = ChaosRunner(batching=True).run_seed(3)
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
