"""Chaos sweeps for the tiered state backends.

Two scenarios ride the standard chaos audit (invariant checker plus
golden-run sink equivalence):

* **Spill backend under fluid migration** — the operator's state is 25x
  its hot bound, so every per-chunk extraction must stream matching cold
  entries straight from disk without faulting unrelated keys, and a
  mid-chunk kill of a role VM must still recover exactly-once.
* **Recovery of last resort** — the primary VM *and* its backup VM are
  killed back-to-back.  A memory-backend run cannot recover from that
  (the paper scopes the guarantee to one failure at a time); with the
  external backend the last flushed cut survives in the external store
  and the run must recover through the restore-of-last-resort path.
"""

import os

import pytest

from repro.chaos.runner import ChaosRunner
from repro.chaos.schedule import (
    TARGET_BACKUP_VM,
    TARGET_SOURCE_VM,
    TARGET_TARGET_VM,
)

_ROLES = [TARGET_SOURCE_VM, TARGET_TARGET_VM, TARGET_BACKUP_VM]

#: Shared runners (one golden run each, reused across seeds).
_SPILL_RUNNER = None
_EXTERNAL_RUNNER = None


def spill_runner() -> ChaosRunner:
    global _SPILL_RUNNER
    if _SPILL_RUNNER is None:
        _SPILL_RUNNER = ChaosRunner(
            migration_chunks=6,
            state_backend="spill",
            max_hot_entries=20,
            trace_dir=os.environ.get("CHAOS_TRACE_DIR"),
        )
    return _SPILL_RUNNER


def external_runner() -> ChaosRunner:
    global _EXTERNAL_RUNNER
    if _EXTERNAL_RUNNER is None:
        _EXTERNAL_RUNNER = ChaosRunner(
            duration=100.0,
            state_backend="external",
            max_hot_entries=50,
            trace_dir=os.environ.get("CHAOS_TRACE_DIR"),
        )
    return _EXTERNAL_RUNNER


def test_spill_backend_mid_chunk_target_kill_is_absorbed():
    """Quick tier-1 check: a spilled operator (hot bound far below its
    key count) migrates in chunks, the target VM dies mid-chunk, and the
    run still recovers without losing or duplicating a tuple."""
    result = spill_runner().run_chunk_kill(1, TARGET_TARGET_VM, seed=7)
    assert result.failures >= 1
    assert result.survived, result.describe()


def test_external_backend_last_resort_recovery():
    """Quick tier-1 check: primary and backup VMs die back-to-back; the
    external tier's last flushed cut restores the slot and the invariant
    set (exactly-once included) holds."""
    result = external_runner().run_last_resort_kill(fail_at=45.0, seed=0)
    assert result.failures >= 2
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_spill_backend_chunk_kill_seed_upholds_all_invariants(seed):
    role = _ROLES[seed % len(_ROLES)]
    result = spill_runner().run_chunk_kill(seed % 5, role, seed=seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(10))
def test_last_resort_seed_upholds_all_invariants(seed):
    result = external_runner().run_last_resort_kill(
        fail_at=40.0 + (seed % 4) * 5.0, seed=seed, network_faults=bool(seed % 2)
    )
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_last_resort_reproducible_from_seed_alone():
    a = ChaosRunner(
        duration=100.0, state_backend="external", max_hot_entries=50
    ).run_last_resort_kill(seed=3)
    b = ChaosRunner(
        duration=100.0, state_backend="external", max_hot_entries=50
    ).run_last_resort_kill(seed=3)
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
