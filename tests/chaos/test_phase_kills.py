"""Mid-reconfiguration kill tests.

Each test triggers a reconfiguration (a recovery or a scale-out of the
word-count counter) and kills a role-resolved VM exactly when the engine
enters a chosen phase.  These are the failure windows the paper's
protocol must survive: a crash before COMMIT must abort cleanly and
retry; a crash that lands after COMMIT must surface as a fresh failure
and a second recovery.  Every run must end with all invariants intact —
engine quiesced, timelines closed, no leaked VMs, trimmed buffers, and
sink output equal to a failure-free golden run.
"""

import pytest

from repro.chaos.runner import ChaosRunner
from repro.chaos.schedule import (
    TARGET_BACKUP_VM,
    TARGET_SOURCE_VM,
    TARGET_TARGET_VM,
)

#: Short enough for CI, long enough for four finalized oracle windows.
DURATION = 90.0


def assert_survived(result):
    assert result.survived, result.describe()


class TestRecoveryPhaseKills:
    """Kill the replacement's VM as the counter's recovery progresses."""

    @pytest.mark.parametrize(
        "phase,parallelism",
        [
            # Parallel recovery partitions the checkpoint on the backup
            # VM while the target VMs wait — a target kill here aborts
            # the operation before commit.
            ("CHECKPOINT_PARTITION", 2),
            ("TRANSFER", 1),
            ("RESTORE", 1),
            ("REPLAY_DRAIN", 1),
        ],
    )
    def test_target_vm_killed_in_phase(self, phase, parallelism):
        runner = ChaosRunner(
            duration=DURATION, recovery_parallelism=parallelism
        )
        result = runner.run_phase_kill(phase, target=TARGET_TARGET_VM)
        assert_survived(result)
        # Both kills happened (primary at t=45 plus the phase kill)...
        assert result.failures == 2
        # ...and the system still converged: either the interrupted
        # attempt aborted and a retry recovered, or the post-commit kill
        # triggered a second full recovery.
        assert result.recoveries >= 1
        assert result.recoveries + result.aborts == 2


class TestScaleOutPhaseKills:
    """Kill VMs mid-scale-out of a live operator."""

    def test_backup_vm_killed_during_checkpoint_partition(self):
        # The primary is alive, so losing the backup VM mid-partitioning
        # stays inside the fault model: the engine aborts, the system
        # re-checkpoints from the live primary, and state survives.
        runner = ChaosRunner(duration=DURATION)
        result = runner.run_scale_out_kill(
            "CHECKPOINT_PARTITION", target=TARGET_BACKUP_VM
        )
        assert_survived(result)
        assert result.failures == 1

    def test_source_vm_killed_during_checkpoint_partition(self):
        # The operator being scaled out dies mid-operation: its state
        # must still be recovered from the surviving backup.
        runner = ChaosRunner(duration=DURATION)
        result = runner.run_scale_out_kill(
            "CHECKPOINT_PARTITION", target=TARGET_SOURCE_VM
        )
        assert_survived(result)
        assert result.failures == 1

    @pytest.mark.parametrize(
        "phase", ["TRANSFER", "RESTORE", "REPLAY_DRAIN"]
    )
    def test_target_vm_killed_in_phase(self, phase):
        runner = ChaosRunner(duration=DURATION)
        result = runner.run_scale_out_kill(phase, target=TARGET_TARGET_VM)
        assert_survived(result)
        assert result.failures == 1
