"""Randomized chaos sweeps over the columnar block plane under backpressure.

The columnar plane ships whole :class:`TupleBlock` records, so a killed
VM now loses blocks mid-flight while credit-based flow control is
actively throttling the same edges: senders may be sitting on held
batches, receivers may owe deferred grants, and a crash erases both
sides' accounts at once.  The sweep kills VMs mid-block under active
backpressure and asserts the usual acceptance gate — zero invariant
violations and golden-run sink equivalence — which in particular means
credits held by a dead downstream were released (a wedged upstream would
starve the sink and break equivalence).

Flow control runs closed-loop here (``shed_at_source=False``): deliberate
load shedding would diverge from the golden run by design.
"""

import os

import pytest

from repro.chaos.runner import ChaosRunner

#: One shared runner per module: the golden run (also columnar, also
#: flow-controlled) is computed once and reused by every seed.
_RUNNER = None


def runner() -> ChaosRunner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ChaosRunner(
            columnar=True, flow=True,
            trace_dir=os.environ.get("CHAOS_TRACE_DIR"),
        )
    return _RUNNER


def test_block_network_faults_alone_are_absorbed(tmp_path):
    """Quick tier-1 check: per-block faults (loss, duplication,
    re-ordering of whole blocks) are absorbed by the reliable transport
    and the prefix-scan duplicate filter, with credit grants riding the
    unperturbed control layer."""
    quick = ChaosRunner(
        columnar=True, flow=True, duration=90.0, mtbf=1e9,
        trace_dir=str(tmp_path / "traces"),
    )
    result = quick.run_seed(4)
    assert result.failures == 0
    assert result.faults > 0
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(20))
def test_block_backpressure_seed_upholds_all_invariants(seed):
    result = runner().run_seed(seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(5))
def test_block_barrier_epochs_survive_kills(seed):
    """Columnar blocks under epoch-aligned barrier snapshots: block
    boundaries never split an epoch (the batcher flushes at the stamp),
    so barrier alignment decomposes cleanly even mid-recovery."""
    sweep = ChaosRunner(
        columnar=True, flow=True, checkpoint_mode="barrier",
        trace_dir=os.environ.get("CHAOS_TRACE_DIR"),
    )
    result = sweep.run_seed(seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(5))
def test_block_fluid_migration_survives_kills(seed):
    """Columnar blocks while scale-outs migrate state in chunks: the
    interval split slices blocks at the carve boundary, preserving every
    (slot, ts) identity across the parked/processed halves."""
    sweep = ChaosRunner(
        columnar=True, flow=True, migration_chunks=4,
        trace_dir=os.environ.get("CHAOS_TRACE_DIR"),
    )
    result = sweep.run_seed(seed)
    assert result.survived, result.describe()


@pytest.mark.chaos
def test_block_violations_reproducible_from_seed_alone():
    a = ChaosRunner(columnar=True, flow=True).run_seed(3)
    b = ChaosRunner(columnar=True, flow=True).run_seed(3)
    assert (a.failures, a.faults, a.recoveries, a.aborts) == (
        b.failures,
        b.faults,
        b.recoveries,
        b.aborts,
    )
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
