"""Epoch-fencing tests.

A recovery that installs a replacement for an instance believed dead
bumps the slot's epoch (:meth:`StreamProcessingSystem.fence_slot`).
If the belief was wrong — asynchrony, loss, a partition — the old
primary is a *zombie*: still running, still emitting.  These tests pin
the three fencing guarantees:

* receivers reject the zombie's condemned suffix (stamps below the
  slot's epoch with timestamps above the committed-prefix floor) but
  keep accepting its committed prefix exactly once;
* the external store and the backup path reject the zombie's flushes;
* a fence notice makes the zombie self-terminate.
"""

import dataclasses

from repro.core.tuples import Tuple
from tests.conftest import small_system


def _counter_uid(system) -> int:
    return system.query_manager.slots_of("counter")[0].uid


def _sink(system):
    return system.instances[system.query_manager.slots_of("sink")[0].uid]


class TestReceiverFencing:
    def test_stale_epoch_delivery_rejected(self):
        system, gen, _col = small_system()
        gen.feed("a")
        system.run(until=1.0)
        sink = _sink(system)
        uid = _counter_uid(system)
        system.fence_slot(uid)  # floor 0: the whole timeline is condemned
        before = sink.processed_weight
        sink.receive_stamped(Tuple(ts=7, key="a", slot=uid), epoch=0)
        system.run(until=2.0)
        assert sink.fenced_drops == 1
        assert sink.processed_weight == before
        assert system.counter("fenced_drops:sink") == 1

    def test_current_epoch_delivery_accepted(self):
        system, gen, _col = small_system()
        sink = _sink(system)
        uid = _counter_uid(system)
        epoch = system.fence_slot(uid)
        before = sink.processed_weight
        sink.receive_stamped(Tuple(ts=7, key="a", slot=uid), epoch=epoch)
        system.run(until=1.0)
        assert sink.fenced_drops == 0
        assert sink.processed_weight == before + 1

    def test_committed_prefix_accepted_late_exactly_once(self):
        """A zombie emission at or below the fence floor is the sole copy
        of a checkpoint-committed tuple: accepted late, then deduplicated
        on re-delivery; above the floor it is condemned."""
        system, gen, _col = small_system()
        sink = _sink(system)
        uid = _counter_uid(system)
        system.fence_slot(uid, floor=5)
        sink.receive_stamped(Tuple(ts=4, key="a", slot=uid), epoch=0)
        system.run(until=1.0)
        assert sink.fenced_accepts == 1
        assert sink.fenced_drops == 0
        dup_before = sink.dropped_duplicates
        sink.receive_stamped(Tuple(ts=4, key="a", slot=uid), epoch=0)
        assert sink.dropped_duplicates == dup_before + 1
        assert sink.fenced_accepts == 1
        sink.receive_stamped(Tuple(ts=6, key="a", slot=uid), epoch=0)
        assert sink.fenced_drops == 1

    def test_fence_cut_bounds_already_delivered_prefix(self):
        """What the condemned timeline delivered *before* the fence is
        bounded by the arrival watermark: a partition-held duplicate of
        it must not be accepted a second time via the floor path."""
        system, gen, _col = small_system()
        sink = _sink(system)
        uid = _counter_uid(system)
        sink.receive_stamped(Tuple(ts=3, key="a", slot=uid), epoch=0)
        system.run(until=1.0)
        system.fence_slot(uid, floor=5)
        dup_before = sink.dropped_duplicates
        sink.receive_stamped(Tuple(ts=3, key="a", slot=uid), epoch=0)
        assert sink.dropped_duplicates == dup_before + 1
        assert sink.fenced_accepts == 0
        # ...while the never-delivered part of the prefix still lands
        sink.receive_stamped(Tuple(ts=4, key="a", slot=uid), epoch=0)
        assert sink.fenced_accepts == 1

    def test_stale_replay_always_rejected(self):
        """Replayed tuples under a stale epoch are rejected even inside
        the floor: the fenced feeder's replay duty passed to its
        successor, which re-derives them under the new epoch."""
        system, gen, _col = small_system()
        sink = _sink(system)
        uid = _counter_uid(system)
        system.fence_slot(uid, floor=5)
        sink.receive_stamped(
            Tuple(ts=3, key="a", slot=uid, replay=True), epoch=0
        )
        assert sink.fenced_drops == 1
        assert sink.fenced_accepts == 0

    def test_stale_batch_rejected(self):
        system, gen, _col = small_system()
        sink = _sink(system)
        uid = _counter_uid(system)
        system.fence_slot(uid)
        batch = [Tuple(ts=t, key="a", slot=uid) for t in (6, 7, 8)]
        sink.receive_batch_stamped(batch, epoch=0)
        assert sink.fenced_drops == 3


class TestStoreFencing:
    def test_stale_external_flush_rejected(self):
        system, _gen, _col = small_system()
        store = system.external_store
        uid = _counter_uid(system)
        store.persist("counter", "a", 1, slot_uid=uid, epoch=0)
        assert store.lookup("counter", "a") == 1
        system.fence_slot(uid)
        store.persist("counter", "a", 99, slot_uid=uid, epoch=0)
        assert store.lookup("counter", "a") == 1  # zombie write rejected
        assert store.fenced_writes == 1
        assert not store.delete("counter", "a", slot_uid=uid, epoch=0)
        store.persist("counter", "a", 2, slot_uid=uid, epoch=1)
        assert store.lookup("counter", "a") == 2  # successor writes land

    def test_stale_checkpoint_backup_rejected(self):
        """A zombie's checkpoint shipment caught mid-flight by the fence
        must not overwrite the successor's backup, even when its seq is
        ahead (both timelines continued from one base)."""
        system, gen, _col = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=3.5)  # a few checkpoints land
        uid = _counter_uid(system)
        backup = system.backup_of(uid)
        assert backup is not None
        system.fence_slot(uid)
        zombie_ckpt = dataclasses.replace(backup, seq=backup.seq + 10)
        target = system.backup_locations[uid]
        system._store_backup(zombie_ckpt, target, None, epoch=0)
        assert system.backup_of(uid).seq == backup.seq
        assert system.counter("checkpoints_fenced_dropped") == 1


class TestFenceNotice:
    def test_zombie_self_terminates_on_fence_notice(self):
        system, _gen, _col = small_system()
        uid = _counter_uid(system)
        zombie = system.instances[uid]
        epoch = system.fence_slot(uid)
        assert zombie.alive
        zombie.on_fence_notice(epoch)
        assert not zombie.alive
        assert not zombie.vm.alive or zombie.vm.released
        assert system.counter("zombies_fenced") == 1
        assert len(system.metrics.events_of_kind("zombie_fenced")) == 1

    def test_stale_notice_ignored(self):
        """A notice for an epoch the instance already holds (or has
        surpassed) must not kill it."""
        system, _gen, _col = small_system()
        uid = _counter_uid(system)
        instance = system.instances[uid]
        instance.on_fence_notice(0)
        assert instance.alive
        assert system.counter("zombies_fenced") == 0

    def test_notify_fenced_travels_over_the_network(self):
        system, _gen, _col = small_system()
        uid = _counter_uid(system)
        zombie = system.instances[uid]
        system.fence_slot(uid)
        system.notify_fenced(zombie)
        assert zombie.alive  # notice is a message, not a hypercall
        system.run(until=1.0)
        assert not zombie.alive
        assert system.counter("zombies_fenced") == 1

    def test_notice_is_idempotent(self):
        system, _gen, _col = small_system()
        uid = _counter_uid(system)
        zombie = system.instances[uid]
        epoch = system.fence_slot(uid)
        zombie.on_fence_notice(epoch)
        zombie.on_fence_notice(epoch)
        assert system.counter("zombies_fenced") == 1
