"""Tests for the SPS facade: deployment wiring, backup plumbing, lookups."""

import pytest

from repro.config import SystemConfig
from repro.errors import DeploymentError, RuntimeStateError
from tests.conftest import ManualGenerator, small_system, tiny_query

from repro.runtime.system import StreamProcessingSystem


class TestDeployment:
    def test_deploy_creates_one_vm_per_slot(self):
        system, _gen, _col = small_system()
        assert len(system.instances) == 4
        vm_ids = {inst.vm.vm_id for inst in system.instances.values()}
        assert len(vm_ids) == 4

    def test_source_sink_get_big_vms(self):
        system, _gen, _col = small_system()
        source = system.instances_of("source")[0]
        mid = system.instances_of("mid")[0]
        assert source.vm.cpu_capacity == system.config.cloud.source_sink_capacity
        assert mid.vm.cpu_capacity == system.config.cloud.worker_capacity

    def test_missing_generator_rejected(self):
        graph, _ = tiny_query()
        system = StreamProcessingSystem(SystemConfig())
        with pytest.raises(DeploymentError):
            system.deploy(graph)

    def test_double_deploy_rejected(self):
        system, _gen, _col = small_system()
        graph, _ = tiny_query()
        with pytest.raises(DeploymentError):
            system.deploy(graph, generators={"source": ManualGenerator()})

    def test_initial_parallelism(self):
        graph, _ = tiny_query()
        config = SystemConfig()
        config.scaling.enabled = False
        system = StreamProcessingSystem(config)
        system.deploy(
            graph, parallelism={"counter": 3}, generators={"source": ManualGenerator()}
        )
        assert system.query_manager.parallelism_of("counter") == 3
        assert len(system.instances_of("counter")) == 3

    def test_routing_mirrors_wired(self):
        system, _gen, _col = small_system()
        mid = system.instances_of("mid")[0]
        counter = system.instances_of("counter")[0]
        assert mid.routing["counter"].route_key("anything") == counter.uid

    def test_vm_of_lookup(self):
        system, _gen, _col = small_system()
        assert system.vm_of("counter") is system.instances_of("counter")[0].vm
        with pytest.raises(RuntimeStateError):
            system.vm_of("counter", partition=5)

    def test_record_vm_count(self):
        system, _gen, _col = small_system()
        series = system.metrics.timeseries("vms:workers")
        assert series.last() == 2  # mid + counter

    def test_summary_shape(self):
        system, _gen, _col = small_system()
        summary = system.summary()
        assert summary["worker_vms"] == 2
        assert summary["parallelism"]["counter"] == 1


class TestBufferedDownstreamsPerStrategy:
    def params(self, strategy):
        system, _gen, _col = small_system(strategy=strategy)
        mid = system.instances_of("mid")[0]
        source = system.instances_of("source")[0]
        counter = system.instances_of("counter")[0]
        return source, mid, counter

    def test_rsm_buffers_all_but_sink(self):
        source, mid, counter = self.params("rsm")
        assert mid._buffered_downs == {"counter"}
        assert counter._buffered_downs == set()  # sink not buffered

    def test_source_replay_buffers_only_at_source(self):
        source, mid, _counter = self.params("source_replay")
        assert source._buffered_downs == {"mid"}
        assert mid._buffered_downs == set()

    def test_none_strategy_buffers_nothing(self):
        source, mid, _counter = self.params("none")
        assert source._buffered_downs == set()
        assert mid._buffered_downs == set()


class TestBackupPlumbing:
    def test_choose_backup_vm_upstream(self):
        system, gen, _col = small_system()
        counter = system.instances_of("counter")[0]
        mid = system.instances_of("mid")[0]
        assert system.choose_backup_vm(counter) is mid.vm

    def test_source_has_no_backup_target(self):
        system, _gen, _col = small_system()
        source = system.instances_of("source")[0]
        assert system.choose_backup_vm(source) is None

    def test_backup_of_missing(self):
        system, _gen, _col = small_system()
        assert system.backup_of(12345) is None

    def test_lost_backup_triggers_recheckpoint(self):
        system, gen, _col = small_system(strategy="none", checkpoint_interval=1.0)
        # Force checkpointing even though strategy is none:
        counter = system.instances_of("counter")[0]
        counter.start_checkpointing()
        gen.feed("a")
        system.run(until=2.5)
        assert system.backup_of(counter.uid) is not None
        mid = system.instances_of("mid")[0]
        stored_before = system.counter("checkpoints_stored")
        mid.vm.fail()  # the backup store dies with mid's VM
        assert system.backup_of(counter.uid) is None
        system.run(until=4.0)
        # The counter re-checkpointed... but its only upstream is dead, so
        # no new backup target exists; store count must not grow.
        assert system.backup_of(counter.uid) is None or (
            system.counter("checkpoints_stored") > stored_before
        )

    def test_drop_backup(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=2.5)
        counter = system.instances_of("counter")[0]
        assert system.backup_of(counter.uid) is not None
        system.drop_backup(counter.uid)
        assert system.backup_of(counter.uid) is None


class TestFailureNotification:
    def test_failure_event_recorded(self):
        system, _gen, _col = small_system(strategy="none")
        system.instances_of("counter")[0].vm.fail()
        assert len(system.metrics.events_of_kind("failure")) == 1

    def test_no_recovery_when_strategy_none(self):
        system, _gen, _col = small_system(strategy="none")
        system.instances_of("counter")[0].vm.fail()
        system.run(until=30.0)
        assert len(system.metrics.events_of_kind("recovery_started")) == 0
