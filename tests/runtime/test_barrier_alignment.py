"""Epoch-aligned barrier snapshots: alignment, cuts and recovery."""

from repro.config import SystemConfig
from repro.core.join import SideTagger, WindowedJoinOperator
from repro.core.query import QueryGraph
from repro.core.tuples import Tuple
from repro.runtime.sink import RecordingCollector, SinkOperator
from repro.runtime.source import SourceOperator
from repro.runtime.system import StreamProcessingSystem
from tests.conftest import ManualGenerator, small_system


def build_join_system(mode="barrier", interval=2.0):
    graph = QueryGraph()
    graph.add_operator(SourceOperator("ls"), source=True)
    graph.add_operator(SourceOperator("rs"), source=True)
    graph.add_operator(SideTagger("tl", "L"))
    graph.add_operator(SideTagger("tr", "R"))
    graph.add_operator(WindowedJoinOperator("join", window=60.0))
    collector = RecordingCollector()
    graph.add_operator(SinkOperator("sink", collector), sink=True)
    graph.connect("ls", "tl")
    graph.connect("rs", "tr")
    graph.connect("tl", "join")
    graph.connect("tr", "join")
    graph.connect("join", "sink")
    config = SystemConfig()
    config.scaling.enabled = False
    config.checkpoint.interval = interval
    config.checkpoint.mode = mode
    system = StreamProcessingSystem(config)
    left, right = ManualGenerator(), ManualGenerator()
    system.deploy(graph, generators={"ls": left, "rs": right})
    return system, left, right, collector


class TestTwoInputAlignment:
    def test_barrier_parks_fast_input_until_cut_finishes(self):
        # Interval far beyond the test horizon: barriers are driven by
        # hand so the alignment window is fully observable.
        system, left, right, _col = build_join_system(interval=50.0)
        left.feed_at(0.5, "k1", "l1")
        right.feed_at(0.5, "k1", "r1")
        system.run(until=1.0)
        join = system.instances_of("join")[0]
        tl_uid = system.query_manager.slots_of("tl")[0].uid
        tr_uid = system.query_manager.slots_of("tr")[0].uid
        checkpointer = system.checkpointer
        checkpointer.begin_epoch(1)
        join.receive_barrier(1, tl_uid)
        state = join._barrier_state[1]
        assert state.blocked == {tl_uid}
        assert state.awaited == {tr_uid}
        # A fresh tuple from the barriered (fast) input parks raw...
        fast = Tuple(5, "k2", ("L", "x"), 1, system.sim.now, tl_uid, False)
        join.receive(fast)
        assert state.parked == [("t", fast)]
        # ...while the slow input keeps flowing.
        slow = Tuple(5, "k3", ("R", "y"), 1, system.sim.now, tr_uid, False)
        join.receive(slow)
        assert state.parked == [("t", fast)]
        # The slow input's barrier arrives later: alignment completes,
        # the epoch cut is serialised, and the parked tuple re-enters.
        system.run(until=1.2)
        join.receive_barrier(1, tr_uid)
        system.run(until=2.0)
        assert 1 not in join._barrier_state
        assert "k2" in join.state.entries  # parked tuple was processed
        assert system.telemetry.counter("epoch.alignment_stall_ms") > 0
        assert (
            system.telemetry.counter("checkpoint.cuts.full")
            + system.telemetry.counter("checkpoint.cuts.delta")
        ) >= 1

    def test_replay_tuples_never_park(self):
        system, _left, _right, _col = build_join_system(interval=50.0)
        system.run(until=1.0)
        join = system.instances_of("join")[0]
        tl_uid = system.query_manager.slots_of("tl")[0].uid
        system.checkpointer.begin_epoch(1)
        join.receive_barrier(1, tl_uid)
        state = join._barrier_state[1]
        replayed = Tuple(5, "k9", ("L", "x"), 1, system.sim.now, tl_uid, True)
        join.receive(replayed)
        assert state.parked == []

    def test_abort_releases_parked_tuples(self):
        system, _left, _right, _col = build_join_system(interval=50.0)
        system.run(until=1.0)
        join = system.instances_of("join")[0]
        tl_uid = system.query_manager.slots_of("tl")[0].uid
        system.checkpointer.begin_epoch(1)
        join.receive_barrier(1, tl_uid)
        fast = Tuple(5, "k2", ("L", "x"), 1, system.sim.now, tl_uid, False)
        join.receive(fast)
        system.checkpointer._abort_epoch(1, reason="test")
        assert 1 not in join._barrier_state
        system.run(until=2.0)
        assert system.checkpointer.epochs_aborted == 1


class TestBarrierEndToEnd:
    def matched(self, collector):
        return sorted(t.payload for t in collector.tuples)

    def test_barrier_join_output_matches_phase_mode(self):
        results = {}
        for mode in ("phase", "barrier"):
            system, left, right, col = build_join_system(
                mode=mode, interval=1.0
            )
            for i in range(10):
                left.feed_at(1.0 + 0.1 * i, f"k{i}", f"l{i}")
                right.feed_at(5.0 + 0.1 * i, f"k{i}", f"r{i}")
            system.run(until=30.0)
            results[mode] = self.matched(col)
            if mode == "barrier":
                assert system.checkpointer.last_complete_epoch > 0
                assert system.telemetry.counter("epochs_completed") > 0
        assert results["barrier"] == results["phase"]
        assert results["barrier"] == [(f"l{i}", f"r{i}") for i in range(10)]

    def test_mid_epoch_kill_falls_back_to_last_complete_epoch(self):
        system, left, right, col = build_join_system(interval=1.0)
        for i in range(20):
            left.feed_at(0.5 + 0.2 * i, f"k{i}", f"l{i}")
            right.feed_at(6.0 + 0.2 * i, f"k{i}", f"r{i}")
        # Kill the join a few ms after a barrier injection: the in-flight
        # epoch is incomplete, so recovery must compose base + deltas up
        # to the last complete epoch and replay the difference.
        system.injector.fail_target_at(lambda: system.vm_of("join"), 3.012)
        system.run(until=60.0)
        assert len(system.metrics.events_of_kind("recovery_complete")) >= 1
        assert self.matched(col) == sorted(
            (f"l{i}", f"r{i}") for i in range(20)
        )
        assert system.checkpointer.last_complete_epoch > 0


class TestPhaseModeDefaultUnchanged:
    def test_phase_mode_never_runs_the_barrier_protocol(self):
        system, gen, _col = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=5.0)
        assert system.config.checkpoint.mode == "phase"
        assert system._barrier_task is None
        assert system.checkpointer.last_complete_epoch == 0
        assert not system.checkpointer._inflight
        assert system.telemetry.counter("epochs_completed") == 0
        # Phase cuts still flow through the Checkpointer seam.
        assert system.telemetry.counter("checkpoint.cuts.full") > 0
