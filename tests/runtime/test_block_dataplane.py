"""Tests for the columnar block data plane and credit-based backpressure.

The columnar plane is a pure fast path: with ``batching.columnar`` on,
batches ship as one :class:`TupleBlock` per message and operators with
vectorized kernels process whole blocks, but every observable outcome —
sink output, duplicate filtering, replay semantics — must be identical
to the list-of-Tuple batched plane.  Credit flow control throttles the
same plane: senders hold (or partially flush) batches when an edge's
credit account runs dry, and receivers grant credit back as weight is
processed or finally disposed of.
"""

import pytest

from repro.config import BatchingConfig, FlowControlConfig, SystemConfig
from repro.core.tuples import Tuple, TupleBlock
from repro.errors import ConfigurationError
from repro.runtime.instance import REPLAY_ACCEPT
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wikipedia import build_wikipedia_topk_query
from repro.workloads.wordcount import build_word_count_query
from tests.conftest import small_system


def columnar_system(max_tuples=4, linger=0.01, flow=None, **kwargs):
    return small_system(
        batching=BatchingConfig(
            enabled=True, max_tuples=max_tuples, linger=linger, columnar=True
        ),
        flow=flow or FlowControlConfig(),
        **kwargs,
    )


class TestColumnarEquivalence:
    """Same seed, same config except ``columnar``: identical sink output."""

    @staticmethod
    def _wordcount_windows(columnar):
        query = build_word_count_query(
            rate=250.0, window=10.0, vocabulary_size=100, quantum=0.1
        )
        config = SystemConfig()
        config.seed = 7
        config.scaling.enabled = False
        config.batching = BatchingConfig(
            enabled=True, max_tuples=16, linger=0.005, columnar=columnar
        )
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, generators=query.generators)
        system.run(until=60.0)
        windows = {
            w: query.collector.counts_for_window(w)
            for w in sorted(query.collector.windows())
        }
        return windows, system.network.messages_sent

    def test_wordcount_sink_output_identical(self):
        rows, rows_msgs = self._wordcount_windows(False)
        blocks, block_msgs = self._wordcount_windows(True)
        assert blocks == rows
        assert rows  # the run actually produced windows
        # Same batches, one message per batch either way.
        assert block_msgs == rows_msgs

    @staticmethod
    def _wikipedia_rankings(columnar):
        query, parallelism = build_wikipedia_topk_query(
            rate=2_000.0, sources=2, emit_interval=5.0, quantum=0.1
        )
        config = SystemConfig()
        config.seed = 7
        config.scaling.enabled = False
        config.batching = BatchingConfig(
            enabled=True, max_tuples=16, linger=0.005, columnar=columnar
        )
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, parallelism, generators=query.generators)
        system.run(until=30.0)
        return query.collector.ranking(), query.collector.emissions

    def test_wikipedia_sink_output_identical(self):
        rows, rows_emissions = self._wikipedia_rankings(False)
        blocks, block_emissions = self._wikipedia_rankings(True)
        assert blocks == rows
        assert rows
        assert block_emissions == rows_emissions


class TestBlockAdmission:
    def _delivered_block(self, system, start_ts, count, replay=False):
        mid = system.instances_of("mid")[0]
        counter = system.instances_of("counter")[0]
        tuples = [
            Tuple(start_ts + i, f"k{i % 3}", None, 1, 0.0, mid.uid, replay)
            for i in range(count)
        ]
        counter.receive_block(TupleBlock.from_tuples(tuples))
        return counter

    def test_duplicate_block_prefix_dropped(self):
        system, _gen, _col = columnar_system()
        counter = self._delivered_block(system, 1, 5)
        system.sim.run(until=1.0)
        assert counter.processed_weight == 5
        # Same ts range again: the whole block is behind the watermark.
        self._delivered_block(system, 1, 5)
        system.sim.run(until=2.0)
        assert counter.processed_weight == 5
        assert counter.dropped_duplicates == 5

    def test_replay_block_bypasses_duplicate_filter(self):
        system, _gen, _col = columnar_system()
        counter = self._delivered_block(system, 1, 5)
        system.sim.run(until=1.0)
        assert counter.processed_weight == 5
        # Replay-flagged rows must reach the operator even though their
        # timestamps sit at or below the arrival watermark.
        counter.replay_mode = REPLAY_ACCEPT
        self._delivered_block(system, 1, 5, replay=True)
        system.sim.run(until=2.0)
        assert counter.processed_weight == 10
        assert counter.dropped_duplicates == 0


class TestCreditFlow:
    def _primed(self, count=6, **flow_kwargs):
        """mid holding ``count`` pending tuples toward counter."""
        flow = FlowControlConfig(enabled=True, **flow_kwargs)
        system, _gen, _col = columnar_system(
            max_tuples=1000, linger=60.0, flow=flow
        )
        mid = system.instances_of("mid")[0]
        counter = system.instances_of("counter")[0]
        src_uid = system.instances_of("source")[0].uid
        for i in range(count):
            mid.receive(Tuple(i + 1, f"k{i}", None, 1, 0.0, src_uid, False))
        system.sim.run(until=0.5)
        assert len(mid._batch_pending[counter.uid]) == count
        return system, mid, counter

    def test_dry_credits_partial_prefix_flush(self):
        system, mid, counter = self._primed(count=6)
        # Freeze grants (depth always >= ceiling) so the held remainder
        # stays observable instead of being released by the grant loop.
        system.config.flow.queue_ceiling = 0.0
        mid._credits[counter.uid] = 4.0
        mid._flush_batch(counter.uid, force=False)
        # The credit-covered prefix ships, the remainder is held and the
        # edge is marked blocked.
        assert len(mid._batch_pending[counter.uid]) == 2
        assert mid._credits[counter.uid] == 0.0
        assert counter.uid in mid._blocked_dests
        system.sim.run(until=1.0)
        assert counter.processed_weight == 4

    def test_grants_resume_blocked_edge(self):
        system, mid, counter = self._primed(count=6)
        system.config.flow.queue_ceiling = 0.0
        mid._credits[counter.uid] = 4.0
        mid._flush_batch(counter.uid, force=False)
        assert counter.uid in mid._blocked_dests
        mid.receive_credits(counter.uid, 10.0)
        assert counter.uid not in mid._blocked_dests
        assert counter.uid not in mid._batch_pending
        system.sim.run(until=1.0)
        assert counter.processed_weight == 6

    def test_forced_flush_pierces_backpressure(self):
        system, mid, counter = self._primed(count=6)
        mid._credits[counter.uid] = 0.0
        mid._flush_batch(counter.uid, force=True)
        # Control-plane flushes debit below zero instead of stalling.
        assert counter.uid not in mid._batch_pending
        assert mid._credits[counter.uid] == -6.0
        system.sim.run(until=1.0)
        assert counter.processed_weight == 6

    def test_dead_downstream_releases_credits(self):
        system, mid, counter = self._primed(count=6)
        mid._credits[counter.uid] = 0.0
        mid._flush_batch(counter.uid, force=False)
        assert counter.uid in mid._blocked_dests
        counter.vm.fail()
        # The held batch force-flushed toward the dead destination
        # (dropped on the wire, rows stay in β for replay) and the edge's
        # account re-seeded at initial_credits: the upstream is not
        # wedged against a grant that can never come.
        assert counter.uid not in mid._blocked_dests
        assert counter.uid not in mid._batch_pending
        assert mid._credits[counter.uid] == system.config.flow.initial_credits

    def test_end_to_end_grants_keep_pipeline_flowing(self):
        # Closed-loop (no source shedding): every fed tuple must arrive.
        flow = FlowControlConfig(
            enabled=True, initial_credits=8.0, grant_quantum=2.0,
            queue_ceiling=64.0, shed_at_source=False,
        )
        system, gen, _col = columnar_system(max_tuples=4, linger=0.01, flow=flow)
        for i in range(100):
            gen.feed_at(0.01 + i * 0.001, f"k{i % 5}")
        system.sim.run(until=10.0)
        counter = system.instances_of("counter")[0]
        # Far more weight than the initial credit made it through: the
        # grant loop is live.
        assert counter.processed_weight == 100

    def test_flow_without_batching_rejected(self):
        config = SystemConfig()
        config.flow = FlowControlConfig(enabled=True)
        with pytest.raises(ConfigurationError):
            config.validate()
