"""Tests for the query manager's bookkeeping."""

import pytest

from repro.core.state import RoutingState
from repro.errors import QueryError
from repro.runtime.query_manager import QueryManager
from tests.conftest import tiny_query


def deployed_manager(parallelism=None):
    graph, _collector = tiny_query()
    manager = QueryManager()
    manager.register_query(graph, parallelism)
    return manager


class TestQueryManager:
    def test_register_validates(self):
        from repro.core.query import QueryGraph

        manager = QueryManager()
        with pytest.raises(QueryError):
            manager.register_query(QueryGraph())

    def test_double_register_rejected(self):
        manager = deployed_manager()
        graph, _ = tiny_query()
        with pytest.raises(QueryError):
            manager.register_query(graph)

    def test_unregistered_access_rejected(self):
        manager = QueryManager()
        with pytest.raises(QueryError):
            manager.slots_of("x")
        with pytest.raises(QueryError):
            manager.upstream_of("x")

    def test_slots_and_parallelism(self):
        manager = deployed_manager({"counter": 2})
        assert manager.parallelism_of("counter") == 2
        assert manager.total_slots() == 5

    def test_topology_passthrough(self):
        manager = deployed_manager()
        assert manager.upstream_of("counter") == ["mid"]
        assert manager.downstream_of("counter") == ["sink"]
        assert manager.is_source("source")
        assert manager.is_sink("sink")

    def test_routing_roundtrip(self):
        manager = deployed_manager()
        uid = manager.slots_of("counter")[0].uid
        assert manager.routing_to("counter").route_key("k") == uid

    def test_store_routing_validates_against_live_slots(self):
        manager = deployed_manager()
        orphan_uid = manager.new_slot("counter", 0).uid  # minted, not deployed
        with pytest.raises(QueryError):
            manager.store_routing("counter", RoutingState.single(orphan_uid))

    def test_replace_slots_updates_lookup(self):
        manager = deployed_manager()
        old = manager.slots_of("counter")[0]
        new = manager.new_slot("counter", 0)
        manager.replace_slots("counter", [old], [new])
        assert manager.slots_of("counter") == [new]
        with pytest.raises(QueryError):
            manager.slot_by_uid(old.uid)

    def test_slot_by_uid(self):
        manager = deployed_manager()
        slot = manager.slots_of("mid")[0]
        assert manager.slot_by_uid(slot.uid) is slot
