"""Tests for sources, sinks and collectors."""

import pytest

from repro.core.tuples import Tuple
from repro.runtime.sink import (
    RecordingCollector,
    TopKResultCollector,
    WindowedResultCollector,
)
from repro.runtime.source import SourceController, SourceOperator
from tests.conftest import small_system


class TestSourceOperator:
    def test_source_cannot_receive(self):
        with pytest.raises(RuntimeError):
            SourceOperator("s").on_tuple(Tuple(1, "k"), None)

    def test_inject_flows_downstream(self):
        system, gen, _col = small_system()
        gen.feed("x", weight=4)
        system.run(until=1.0)
        assert system.instances_of("counter")[0].state["x"] == 4

    def test_inject_charges_source_cpu(self):
        system, gen, _col = small_system()
        source = system.instances_of("source")[0]
        gen.feed("x", weight=1000)
        system.run(until=1.0)
        assert source.vm.busy_seconds_total() > 0

    def test_injection_recorded_as_input_rate(self):
        system, gen, _col = small_system()
        gen.feed("x", weight=10)
        system.run(until=1.0)
        assert system.metrics.rate("input").total() == 10


class TestSourceController:
    def test_pause_resume(self):
        controller = SourceController()
        assert controller.emitting
        controller.pause()
        assert not controller.emitting
        controller.resume()
        assert controller.emitting

    def test_deploy_creates_controller_per_source(self):
        system, _gen, _col = small_system()
        assert "source" in system.source_controllers


class TestCollectors:
    def test_windowed_collector_idempotent(self):
        collector = WindowedResultCollector()
        collector(Tuple(1, "a", (0, 5), slot=1), 0.0)
        collector(Tuple(2, "a", (0, 5), slot=1), 0.0)  # duplicate emission
        assert collector.value("a", 0) == 5
        assert collector.received == 2
        assert collector.windows() == {0}
        assert collector.counts_for_window(0) == {"a": 5}

    def test_windowed_collector_last_write_wins(self):
        collector = WindowedResultCollector()
        collector(Tuple(1, "a", (0, 5), slot=1), 0.0)
        collector(Tuple(2, "a", (0, 7), slot=1), 0.0)
        assert collector.value("a", 0) == 7

    def test_topk_collector_merges_partials(self):
        collector = TopKResultCollector(k=2)
        collector(Tuple(1, "topk", (("en", 10), ("de", 4)), slot=1), 0.0)
        collector(Tuple(1, "topk", (("fr", 7),), slot=2), 0.0)
        assert collector.ranking() == [("en", 10), ("fr", 7)]

    def test_topk_collector_latest_partial_per_slot(self):
        collector = TopKResultCollector(k=3)
        collector(Tuple(1, "topk", (("en", 10),), slot=1), 0.0)
        collector(Tuple(2, "topk", (("en", 25),), slot=1), 0.0)
        assert collector.ranking() == [("en", 25)]

    def test_recording_collector(self):
        collector = RecordingCollector()
        collector(Tuple(1, "a", None, slot=1), 0.0)
        assert len(collector) == 1
