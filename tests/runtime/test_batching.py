"""Tests for the batched data plane (output coalescing per destination).

Batching is a pure fast path: with it enabled the kernel sees one
network message and one CPU work item per batch instead of one per
tuple, but every observable outcome — sink output, duplicate filtering,
checkpoint/recovery semantics — must be identical to the unbatched
plane.  Batches are force-flushed at every control-plane barrier.
"""

import pytest

from repro.config import BatchingConfig, SystemConfig
from repro.core.tuples import Tuple
from repro.errors import ConfigurationError
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wordcount import build_word_count_query
from tests.conftest import small_system


def batched_system(max_tuples=4, linger=0.01, **kwargs):
    return small_system(
        batching=BatchingConfig(enabled=True, max_tuples=max_tuples, linger=linger),
        **kwargs,
    )


def feed_burst(gen, count, start=0.01, gap=0.0005):
    for i in range(count):
        gen.feed_at(start + i * gap, f"k{i % 5}")


class TestConfig:
    def test_defaults_disabled(self):
        assert SystemConfig().batching.enabled is False

    def test_invalid_max_tuples_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(max_tuples=0).validate()

    def test_negative_linger_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(linger=-0.001).validate()


class TestCoalescing:
    def test_batched_run_processes_everything(self):
        system, gen, _col = batched_system()
        feed_burst(gen, 60)
        system.sim.run(until=5.0)
        counter = system.instances_of("counter")[0]
        assert counter.processed_weight == 60
        assert sum(counter.state.entries.values()) == 60

    def test_batched_matches_unbatched_state(self):
        def final_counts(batching):
            kwargs = {"batching": batching} if batching else {}
            system, gen, _col = small_system(**kwargs)
            feed_burst(gen, 60)
            system.sim.run(until=5.0)
            counter = system.instances_of("counter")[0]
            return dict(counter.state.entries)

        unbatched = final_counts(None)
        batched = final_counts(BatchingConfig(enabled=True, max_tuples=8))
        assert unbatched == batched

    def test_fewer_network_messages(self):
        def messages(batching):
            kwargs = {"batching": batching} if batching else {}
            system, gen, _col = small_system(**kwargs)
            feed_burst(gen, 200)
            system.sim.run(until=5.0)
            return system.network.messages_sent

        unbatched = messages(None)
        batched = messages(BatchingConfig(enabled=True, max_tuples=16))
        assert batched < unbatched / 2

    def test_linger_flushes_partial_batch(self):
        # One tuple can never fill a max_tuples=100 batch; only the
        # linger timer gets it onto the wire.
        system, gen, _col = batched_system(max_tuples=100, linger=0.01)
        gen.feed_at(0.01, "solo")
        system.sim.run(until=2.0)
        counter = system.instances_of("counter")[0]
        assert counter.processed_weight == 1

    def test_zero_linger_still_delivers(self):
        system, gen, _col = batched_system(max_tuples=100, linger=0.0)
        feed_burst(gen, 10)
        system.sim.run(until=2.0)
        assert system.instances_of("counter")[0].processed_weight == 10


class TestBarrierFlush:
    def _prime(self, system, count=5):
        """Park tuples in mid's output batch (huge size + linger bounds)."""
        mid = system.instances_of("mid")[0]
        src_uid = system.instances_of("source")[0].uid
        for i in range(count):
            mid.receive(Tuple(i + 1, f"k{i}", None, 1, 0.0, src_uid, False))
        system.sim.run(until=0.5)
        assert mid._batch_pending, "tuples should be pending in the batch"
        return mid

    def test_checkpoint_flushes_pending_batch(self):
        system, _gen, _col = batched_system(max_tuples=1000, linger=60.0)
        mid = self._prime(system)
        mid.take_checkpoint()
        assert not mid._batch_pending
        system.sim.run(until=1.0)
        assert system.instances_of("counter")[0].processed_weight == 5

    def test_pause_flushes_pending_batch(self):
        system, _gen, _col = batched_system(max_tuples=1000, linger=60.0)
        mid = self._prime(system)
        mid.pause()
        assert not mid._batch_pending
        system.sim.run(until=1.0)
        assert system.instances_of("counter")[0].processed_weight == 5

    def test_stop_flushes_pending_batch(self):
        system, _gen, _col = batched_system(max_tuples=1000, linger=60.0)
        mid = self._prime(system)
        mid.stop()
        assert not mid._batch_pending
        system.sim.run(until=1.0)
        assert system.instances_of("counter")[0].processed_weight == 5

    def test_routing_update_flushes_pending_batch(self):
        system, _gen, _col = batched_system(max_tuples=1000, linger=60.0)
        mid = self._prime(system)
        mid.set_routing("counter", mid.routing["counter"])
        assert not mid._batch_pending
        system.sim.run(until=1.0)
        assert system.instances_of("counter")[0].processed_weight == 5

    def test_vm_failure_discards_pending_batch(self):
        system, _gen, _col = batched_system(max_tuples=1000, linger=60.0)
        mid = self._prime(system)
        mid.vm.fail()
        assert not mid._batch_pending
        assert mid._linger_event is None


class TestRecoveryEquivalence:
    """Failures mid-batch must not change results: pending batches die
    with the VM, and the standard checkpoint + replay + dedup machinery
    re-derives them exactly once."""

    @staticmethod
    def _wordcount(batching, fail_at=None, seed=0):
        query = build_word_count_query(
            rate=250.0, window=30.0, vocabulary_size=400, quantum=0.1
        )
        config = SystemConfig()
        config.seed = seed
        config.scaling.enabled = False
        config.batching = batching or BatchingConfig()
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, generators=query.generators)
        if fail_at is not None:
            system.injector.fail_target_at(
                lambda: system.vm_of("counter"), fail_at
            )
        system.run(until=100.0)
        return system, query

    @pytest.fixture(scope="class")
    def golden(self):
        """Unbatched, failure-free reference windows."""
        _system, query = self._wordcount(None)
        return {
            w: query.collector.counts_for_window(w)
            for w in sorted(query.collector.windows())
        }

    def test_batched_sink_output_identical(self, golden):
        _system, query = self._wordcount(BatchingConfig(enabled=True))
        windows = {
            w: query.collector.counts_for_window(w)
            for w in sorted(query.collector.windows())
        }
        assert windows == golden

    def test_batched_recovery_identical_results(self, golden):
        system, query = self._wordcount(
            BatchingConfig(enabled=True), fail_at=40.0
        )
        assert len(system.metrics.events_of_kind("recovery_complete")) == 1
        windows = {
            w: query.collector.counts_for_window(w)
            for w in sorted(query.collector.windows())
        }
        assert windows == golden
