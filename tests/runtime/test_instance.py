"""Tests for operator instances: data plane, dedup, checkpointing,
pause/freeze, restore and replay accounting."""

import pytest

from repro.core.tuples import Tuple
from repro.errors import RuntimeStateError
from repro.runtime.instance import (
    REPLAY_ACCEPT,
    REPLAY_DEDUP,
    REPLAY_DROP,
    InstanceStatus,
)
from tests.conftest import small_system


def get_instance(system, op_name, index=0):
    return system.instances_of(op_name)[index]


def stamped(ts, key="k", slot=None, weight=1, replay=False):
    return Tuple(ts, key, None, weight=weight, created_at=0.0, slot=slot, replay=replay)


class TestDataPlane:
    def test_tuples_flow_to_state(self):
        system, gen, _collector = small_system()
        gen.feed("a", weight=2)
        gen.feed("b")
        system.run(until=1.0)
        counter = get_instance(system, "counter")
        assert counter.state["a"] == 2
        assert counter.state["b"] == 1

    def test_processed_weight_counted(self):
        system, gen, _ = small_system()
        gen.feed("a", weight=5)
        system.run(until=1.0)
        assert get_instance(system, "counter").processed_weight == 5

    def test_positions_advance(self):
        system, gen, _ = small_system()
        gen.feed("a")
        gen.feed("b")
        system.run(until=1.0)
        counter = get_instance(system, "counter")
        mid_uid = get_instance(system, "mid").uid
        assert counter.state.positions[mid_uid] == 2

    def test_duplicate_timestamps_dropped(self):
        system, gen, _ = small_system()
        gen.feed("a")
        system.run(until=1.0)
        counter = get_instance(system, "counter")
        mid_uid = get_instance(system, "mid").uid
        counter.receive(stamped(1, "a", slot=mid_uid))
        system.run(until=2.0)
        assert counter.state["a"] == 1
        assert counter.dropped_duplicates == 1

    def test_queue_capacity_drops_overflow(self):
        system, gen, _ = small_system(queue_capacity=3.0)
        mid = get_instance(system, "mid")
        for ts in range(1, 10):
            mid.receive(stamped(ts, "a", slot=999))
        assert mid.dropped_overflow > 0

    def test_inject_on_non_source_rejected(self):
        system, _gen, _ = small_system()
        with pytest.raises(RuntimeStateError):
            get_instance(system, "counter").inject("k", None)

    def test_emit_to_unknown_downstream_rejected(self):
        system, gen, _ = small_system()
        mid = get_instance(system, "mid")
        mid._current_input = None
        with pytest.raises(RuntimeStateError):
            mid._emit_from_ctx("k", None, 1, None, "nowhere")

    def test_latency_recorded_at_sink(self):
        system, gen, _ = small_system()
        gen.feed("a")
        system.run(until=1.0)
        reservoir = system.metrics.latencies.get("latency:sink")
        assert reservoir is not None and len(reservoir) == 0 or True
        # counter emits nothing, so the sink never sees tuples here; the
        # latency reservoir simply stays empty for this pipeline.


class TestReplayModes:
    def test_drop_mode_discards_flagged(self):
        system, gen, _ = small_system()
        counter = get_instance(system, "counter")
        counter.receive(stamped(1, "a", slot=123, replay=True))
        system.run(until=1.0)
        assert "a" not in counter.state
        assert counter.dropped_duplicates == 1

    def test_accept_mode_processes_flagged(self):
        system, gen, _ = small_system()
        counter = get_instance(system, "counter")
        counter.replay_mode = REPLAY_ACCEPT
        counter.receive(stamped(1, "a", slot=123, replay=True))
        system.run(until=1.0)
        assert counter.state["a"] == 1

    def test_dedup_mode_uses_restore_floor(self):
        system, gen, _ = small_system()
        gen.feed("a")
        system.run(until=1.0)
        counter = get_instance(system, "counter")
        mid_uid = get_instance(system, "mid").uid
        # Dedup mode compares replays against the τ vector frozen at
        # restore time (here: everything up to ts 1 is reflected).
        counter.replay_mode = REPLAY_DEDUP
        counter._replay_dedup_floor = {mid_uid: 1}
        counter.receive(stamped(1, "a", slot=mid_uid, replay=True))  # duplicate
        counter.receive(stamped(2, "b", slot=mid_uid, replay=True))  # fresh
        system.run(until=2.0)
        assert counter.state["a"] == 1
        assert counter.state["b"] == 1
        assert counter.dropped_duplicates == 1


class TestPauseAndFreeze:
    def test_pause_holds_processing(self):
        system, gen, _ = small_system()
        counter = get_instance(system, "counter")
        counter.pause()
        gen.feed("a")
        system.run(until=1.0)
        assert "a" not in counter.state
        counter.resume()
        system.run(until=2.0)
        assert counter.state["a"] == 1

    def test_freeze_returns_positions(self):
        system, gen, _ = small_system()
        gen.feed("a")
        system.run(until=1.0)
        counter = get_instance(system, "counter")
        positions = counter.freeze_positions()
        mid_uid = get_instance(system, "mid").uid
        assert positions[mid_uid] == 1
        assert counter.status is InstanceStatus.PAUSED

    def test_stop_releases_vm(self):
        system, gen, _ = small_system()
        counter = get_instance(system, "counter")
        vm = counter.vm
        counter.stop()
        assert counter.status is InstanceStatus.STOPPED
        assert not vm.alive


class TestCheckpointing:
    def test_periodic_checkpoints_stored(self):
        system, gen, _ = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=5.5)
        assert system.counter("checkpoints_stored") >= 4
        counter = get_instance(system, "counter")
        ckpt = system.backup_of(counter.uid)
        assert ckpt is not None
        assert ckpt.state["a"] == 1

    def test_checkpoint_trims_upstream_buffer(self):
        system, gen, _ = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=0.5)
        mid = get_instance(system, "mid")
        counter = get_instance(system, "counter")
        assert mid.buffers["counter"].tuple_count() == 1
        system.run(until=3.0)
        assert mid.buffers["counter"].tuple_count() == 0

    def test_backup_target_is_upstream_vm(self):
        system, gen, _ = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=2.5)
        counter = get_instance(system, "counter")
        mid = get_instance(system, "mid")
        assert system.backup_locations[counter.uid] is mid.vm

    def test_sources_and_sinks_do_not_checkpoint(self):
        system, gen, _ = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=3.0)
        source = get_instance(system, "source")
        sink = get_instance(system, "sink")
        assert not system.backup_locations.get(source.uid)
        assert not system.backup_locations.get(sink.uid)

    def test_checkpoint_occupies_cpu(self):
        # A large state makes the serialisation stall measurable.
        system, gen, _ = small_system(checkpoint_interval=1.0)
        counter = get_instance(system, "counter")
        for i in range(50_000):
            counter.state[f"k{i}"] = 1
        busy_before = counter.vm.busy_seconds_total()
        system.run(until=2.1)
        busy_after = counter.vm.busy_seconds_total()
        expected = system.config.checkpoint.serialize_seconds_per_entry * 50_000
        assert busy_after - busy_before >= expected


class TestRestore:
    def test_restore_from_checkpoint(self):
        system, gen, _ = small_system(checkpoint_interval=1.0)
        gen.feed("a", weight=3)
        system.run(until=2.5)
        counter = get_instance(system, "counter")
        ckpt = system.backup_of(counter.uid)
        fresh_vm = system.provider.provision_immediately()
        replacement = system.deployment.build_instance(counter.slot, fresh_vm)
        replacement.restore_from(ckpt)
        assert replacement.state["a"] == 3
        assert replacement._ckpt_seq == ckpt.seq
        assert replacement._arrival_wm == ckpt.positions

    def test_restore_fresh_dedup_clears_watermarks(self):
        system, gen, _ = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=2.5)
        counter = get_instance(system, "counter")
        ckpt = system.backup_of(counter.uid)
        vm = system.provider.provision_immediately()
        replacement = system.deployment.build_instance(counter.slot, vm)
        replacement.restore_from(ckpt, fresh_dedup=True)
        assert replacement._arrival_wm == {}

    def test_restored_state_isolated_from_backup(self):
        system, gen, _ = small_system(checkpoint_interval=1.0)
        gen.feed("a")
        system.run(until=2.5)
        counter = get_instance(system, "counter")
        ckpt = system.backup_of(counter.uid)
        vm = system.provider.provision_immediately()
        replacement = system.deployment.build_instance(counter.slot, vm)
        replacement.restore_from(ckpt)
        replacement.state["a"] = 999
        assert ckpt.state["a"] == 1


class TestReplayAccounting:
    def test_expect_replays_fires_after_processing(self):
        system, gen, _ = small_system()
        counter = get_instance(system, "counter")
        mid = get_instance(system, "mid")
        done = []
        gen.feed("a")
        gen.feed("b")
        system.run(until=1.0)
        # Manually replay the mid buffer (2 tuples) to the counter.
        counter.replay_mode = REPLAY_DEDUP
        counter.expect_replays(2, lambda: done.append(system.sim.now), flagged_only=True)
        sent = mid.replay_buffer_to(counter.uid, flag_replay=True)
        assert sent == 2
        system.run(until=2.0)
        assert len(done) == 1

    def test_expect_zero_fires_immediately(self):
        system, gen, _ = small_system()
        counter = get_instance(system, "counter")
        done = []
        counter.expect_replays(0, lambda: done.append(True))
        assert done == [True]

    def test_double_expectation_rejected(self):
        system, gen, _ = small_system()
        counter = get_instance(system, "counter")
        counter.expect_replays(1, lambda: None)
        with pytest.raises(RuntimeStateError):
            counter.expect_replays(1, lambda: None)


class TestSuppression:
    def test_suppressed_outputs_update_state_only(self):
        system, gen, _ = small_system()
        mid = get_instance(system, "mid")
        counter_uid = get_instance(system, "counter").uid
        mid._suppress_until = {999: 5}
        mid.receive(stamped(3, "a", slot=999))
        system.run(until=1.0)
        # mid re-processed the tuple but suppressed its output.
        assert mid.suppressed_weight == 1
        assert mid.buffers["counter"].tuple_count() == 0
        mid.receive(stamped(7, "b", slot=999))
        system.run(until=2.0)
        assert mid.buffers["counter"].tuple_count() == 1


class TestVMFailurePropagation:
    def test_vm_failure_marks_instance(self):
        system, gen, _ = small_system(strategy="none")
        counter = get_instance(system, "counter")
        counter.vm.fail()
        assert counter.status is InstanceStatus.FAILED
        assert not counter.alive

    def test_failed_instance_ignores_tuples(self):
        system, gen, _ = small_system(strategy="none")
        counter = get_instance(system, "counter")
        counter.vm.fail()
        counter.receive(stamped(1, "a", slot=1))
        assert counter.state.entries == {}
