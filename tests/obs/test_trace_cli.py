"""End-to-end tests for ``python -m repro trace`` — the acceptance
criterion: a seeded recovery run dumps a JSONL trace whose critical-path
breakdown sums to the phase timeline's total duration, causally linked
back to the crash."""

import json

import pytest

from repro.obs import run_trace

DURATION = 55.0
FAIL_AT = 25.0


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    return run_trace(
        workload="wordcount",
        seed=7,
        duration=DURATION,
        fail_at=FAIL_AT,
        out=out,
    )


@pytest.fixture(scope="module")
def records(report):
    with open(report.path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


class TestTraceRun:
    def test_recovery_happened(self, report):
        assert report.critical_paths, "no reconfiguration was traced"
        path = report.critical_paths[0]
        assert path.kind == "recovery"
        assert path.outcome == "done"

    def test_header_carries_run_metadata(self, records):
        header = records[0]
        assert header["kind"] == "run_meta"
        assert header["seed"] == 7
        assert len(header["config_hash"]) == 16

    def test_critical_path_sums_to_timeline_total(self, report, records):
        """The acceptance criterion, on both the in-memory report and the
        dumped record."""
        cp_records = [r for r in records if r["kind"] == "critical_path"]
        assert cp_records
        for record in cp_records:
            assert sum(record["segments"].values()) == pytest.approx(
                record["total"]
            )
        for path, rows in zip(report.critical_paths, report.timelines):
            total = rows[-1][2] - rows[0][1]  # last end - first start
            assert path.total == pytest.approx(total)

    def test_trace_is_causally_linked(self, records):
        spans = {r["span"]: r for r in records if r["kind"] == "span"}
        roots = [s for s in spans.values() if s["type"] == "reconfig"]
        assert roots
        root = roots[0]
        detection = spans[root["parent"]]
        assert detection["type"] == "detection"
        failure = spans[detection["parent"]]
        assert failure["type"] == "failure"
        assert failure["trace"] == detection["trace"] == root["trace"]
        # the failure span sits at the injected crash
        assert failure["t"] == pytest.approx(FAIL_AT)
        # every engine phase is a child span of the root
        phases = [
            s for s in spans.values()
            if s["type"] == "phase" and s["parent"] == root["span"]
        ]
        assert {p["name"] for p in phases} >= {"PLAN", "REPLAY_DRAIN"}

    def test_spans_and_events_counted(self, report, records):
        assert report.span_count == sum(
            1 for r in records if r["kind"] == "span"
        )
        assert report.event_count >= 1

    def test_render_shows_timeline_and_breakdown(self, report):
        text = report.render()
        assert "phase timeline" in text
        assert "REPLAY_DRAIN" in text
        assert "dominant:" in text
        assert str(report.path) in text


class TestTraceErrors:
    def test_unknown_workload_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_trace(workload="nope", duration=1.0)
