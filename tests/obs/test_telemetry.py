"""Tests for the Telemetry facade: metric delegation, event mirroring,
engine observation, and the causally linked failure → detection →
reconfiguration chain."""

import json
from dataclasses import dataclass, field

import pytest

from repro.obs import Telemetry
from repro.sim.metrics import MetricsHub, PhaseTimeline


@dataclass
class FakeSlot:
    uid: int


@dataclass
class FakePlan:
    kind: str = "recovery"
    op_name: str = "counter"
    state_source: str = "backup"
    old_slots: list = field(default_factory=lambda: [FakeSlot(7)])
    failure_time: float | None = 5.0

    @property
    def is_recovery(self) -> bool:
        return self.kind == "recovery"


class FakeOp:
    """Duck-types the engine's operation: a plan plus a phase timeline."""

    def __init__(self, plan: FakePlan, started_at: float) -> None:
        self.plan = plan
        self.timeline = PhaseTimeline(
            plan.kind, plan.op_name, [s.uid for s in plan.old_slots],
            started_at,
        )


class FakeEngine:
    def __init__(self) -> None:
        self.listeners = []

    def on_phase_change(self, listener) -> None:
        self.listeners.append(listener)

    def fire(self, op, phase: str) -> None:
        # The real engine also advances op.timeline; tests drive the
        # timeline explicitly where a decomposition matters.
        for listener in self.listeners:
            listener(op, phase)


class Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestMetricsFacade:
    def test_delegates_to_hub(self):
        hub = MetricsHub()
        tel = Telemetry(hub=hub)
        assert tel.timeseries("a") is hub.timeseries("a")
        assert tel.rate("b") is hub.rate("b")
        assert tel.latency("c") is hub.latency("c")
        tel.increment("n", 2.0)
        assert tel.counter("n") == 2.0 == hub.counter("n")

    def test_owns_a_hub_by_default(self):
        tel = Telemetry()
        tel.increment("n")
        assert tel.hub.counter("n") == 1.0


class TestEventMirroring:
    def test_facade_event_reaches_hub_and_log(self):
        tel = Telemetry()
        tel.event("failure", "vm 3", time=1.5, slot=7)
        assert tel.hub.events_of_kind("failure") == [(1.5, "failure", "vm 3")]
        records = tel.log.of_kind("failure")
        assert records == [
            {"kind": "failure", "t": 1.5, "detail": "vm 3", "slot": 7}
        ]

    def test_direct_hub_events_are_mirrored_too(self):
        """Call sites that talk to the hub directly still land in the
        structured log — the listener, not the facade, does the mirroring."""
        tel = Telemetry()
        tel.hub.mark_event(2.0, "recovery_complete", "", duration=1.2)
        assert tel.log.of_kind("recovery_complete") == [
            {"kind": "recovery_complete", "t": 2.0, "duration": 1.2}
        ]

    def test_no_double_logging(self):
        tel = Telemetry()
        tel.event("failure", "x", time=1.0)
        assert len(tel.log.of_kind("failure")) == 1


class TestCausalChain:
    def test_failure_detection_recovery_share_a_trace(self):
        clock = Clock()
        tel = Telemetry(clock=clock)
        engine = FakeEngine()
        tel.observe_engine(engine)

        clock.t = 5.0
        failure = tel.record_failure(7, "counter", vm_id=3)
        clock.t = 6.0
        detection = tel.record_detection(7, "counter", failure_time=5.0)
        assert detection.parent_id == failure.span_id
        assert detection.start == 5.0 and detection.end == 6.0
        assert detection.attrs["latency"] == pytest.approx(1.0)

        op = FakeOp(FakePlan(failure_time=5.0), started_at=6.0)
        clock.t = 6.0
        engine.fire(op, "PLAN")
        root = tel.op_span(op)
        assert root is not None
        assert root.parent_id == detection.span_id
        assert root.trace_id == failure.trace_id == failure.span_id
        assert root.attrs["reconfig"] == "recovery"

        clock.t = 7.0
        engine.fire(op, "TRANSFER")
        phase = tel.phase_span(op)
        assert phase.name == "TRANSFER"
        assert phase.parent_id == root.span_id

        clock.t = 9.0
        op.timeline.close(9.0, "done")
        engine.fire(op, "DONE")
        assert root.end == 9.0
        assert root.attrs["outcome"] == "done"
        assert tel.op_span(op) is None  # bookkeeping cleared

    def test_scale_out_root_has_no_parent(self):
        clock = Clock()
        tel = Telemetry(clock=clock)
        engine = FakeEngine()
        tel.observe_engine(engine)
        plan = FakePlan(kind="scale_out", failure_time=None)
        op = FakeOp(plan, started_at=0.0)
        engine.fire(op, "PLAN")
        root = tel.op_span(op)
        assert root.parent_id is None
        assert root.trace_id == root.span_id

    def test_terminal_phase_records_critical_path(self):
        clock = Clock()
        tel = Telemetry(clock=clock)
        engine = FakeEngine()
        tel.observe_engine(engine)
        op = FakeOp(FakePlan(failure_time=5.0), started_at=6.0)
        op.timeline.enter("PLAN", 6.0)
        op.timeline.enter("TRANSFER", 7.0)
        op.timeline.enter("DONE", 9.0)
        op.timeline.close(9.0, "done")
        clock.t = 9.0
        engine.fire(op, "DONE")
        assert len(tel.finished_paths) == 1
        path = tel.finished_paths[0]
        assert path.total == pytest.approx(op.timeline.total_duration())
        assert path.detection == pytest.approx(1.0)
        records = tel.log.of_kind("critical_path")
        assert len(records) == 1
        assert records[0]["dominant"] == "transfer"


class TestNetworkObserver:
    def test_control_messages_logged_data_plane_skipped(self):
        tel = Telemetry()

        class Net:
            observer = None

        net = Net()
        tel.observe_network(net)
        net.observer(1, 2, 100.0, "control", 3.0, True)
        net.observer(1, 2, 100.0, "data", 3.0, True)
        records = tel.log.of_kind("net.control")
        assert len(records) == 1
        assert records[0]["src"] == 1 and records[0]["delivered"] is True


class TestDump:
    def test_dump_jsonl_contains_meta_events_and_spans(self, tmp_path):
        tel = Telemetry(run_meta={"seed": 7, "config_hash": "abc"})
        tel.event("failure", "x", time=2.0)
        span = tel.start_span("work", time=1.0)
        tel.end_span(span, time=3.0)
        out = tel.dump_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0] == {"kind": "run_meta", "seed": 7, "config_hash": "abc"}
        kinds = [r["kind"] for r in lines[1:]]
        assert "failure" in kinds and "span" in kinds
        # time-ordered after the header
        times = [r["t"] for r in lines[1:] if "t" in r]
        assert times == sorted(times)
