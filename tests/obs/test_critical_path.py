"""Tests for the critical-path decomposition of phase timelines."""

import pytest

from repro.obs import (
    SEGMENT_DETECTION,
    SEGMENT_PROVISION,
    SEGMENT_REPLAY_DRAIN,
    SEGMENT_TRANSFER,
    analyze,
)
from repro.sim.metrics import PhaseTimeline


def recovery_timeline():
    timeline = PhaseTimeline("recovery", "counter", [7], 10.0)
    timeline.enter("PLAN", 10.0)
    timeline.enter("ACQUIRE_VMS", 10.0)
    timeline.enter("CHECKPOINT_PARTITION", 13.0)
    timeline.enter("TRANSFER", 13.5)
    timeline.enter("RESTORE", 15.5)
    timeline.enter("COMMIT", 15.6)
    timeline.enter("REPLAY_DRAIN", 15.7)
    timeline.enter("DONE", 17.0)
    timeline.close(17.0, "done")
    return timeline


class TestAnalyze:
    def test_segments_sum_to_total_duration(self):
        timeline = recovery_timeline()
        path = analyze(timeline)
        assert path.total == pytest.approx(timeline.total_duration())
        assert sum(path.segments.values()) == pytest.approx(
            timeline.total_duration()
        )

    def test_phase_to_segment_mapping(self):
        path = analyze(recovery_timeline())
        assert path.segments[SEGMENT_PROVISION] == pytest.approx(3.0)
        assert path.segments["checkpoint-partition"] == pytest.approx(0.5)
        assert path.segments[SEGMENT_TRANSFER] == pytest.approx(2.0)
        # RESTORE + COMMIT both land in restore
        assert path.segments["restore"] == pytest.approx(0.2)
        assert path.segments[SEGMENT_REPLAY_DRAIN] == pytest.approx(1.3)

    def test_dominant_segment(self):
        path = analyze(recovery_timeline())
        assert path.dominant == SEGMENT_PROVISION

    def test_detection_from_failure_time(self):
        timeline = recovery_timeline()
        path = analyze(timeline, failure_time=8.0)
        assert path.detection == pytest.approx(2.0)
        assert path.total_with_detection == pytest.approx(
            timeline.total_duration() + 2.0
        )
        # detection is NOT inside the in-engine sum
        assert path.total == pytest.approx(timeline.total_duration())

    def test_detection_dominates_when_largest(self):
        timeline = recovery_timeline()
        path = analyze(timeline, failure_time=0.0)
        assert path.detection == pytest.approx(10.0)
        assert path.dominant == SEGMENT_DETECTION

    def test_no_failure_time_means_zero_detection(self):
        path = analyze(recovery_timeline())
        assert path.detection == 0.0
        assert path.total_with_detection == path.total

    def test_open_spans_are_skipped(self):
        timeline = PhaseTimeline("recovery", "counter", [7], 0.0)
        timeline.enter("PLAN", 0.0)
        timeline.enter("TRANSFER", 1.0)  # still open
        path = analyze(timeline)
        assert path.segments[SEGMENT_PROVISION] == pytest.approx(1.0)
        assert path.segments[SEGMENT_TRANSFER] == 0.0
        assert path.outcome is None

    def test_aborted_timeline(self):
        timeline = PhaseTimeline("recovery", "counter", [7], 0.0)
        timeline.enter("PLAN", 0.0)
        timeline.enter("ACQUIRE_VMS", 0.0)
        timeline.enter("ABORTED", 2.0)
        timeline.close(2.0, "aborted")
        path = analyze(timeline)
        assert path.outcome == "aborted"
        assert path.total == pytest.approx(timeline.total_duration())

    def test_reopened_phase_accumulates(self):
        timeline = PhaseTimeline("recovery", "counter", [7], 0.0)
        timeline.enter("PLAN", 0.0)
        timeline.enter("TRANSFER", 1.0)
        timeline.enter("PLAN", 2.0)  # retry loops back
        timeline.enter("TRANSFER", 2.5)
        timeline.enter("DONE", 4.0)
        timeline.close(4.0, "done")
        path = analyze(timeline)
        assert path.segments[SEGMENT_TRANSFER] == pytest.approx(2.5)
        assert path.total == pytest.approx(timeline.total_duration())

    def test_unknown_phase_goes_to_other_bucket(self):
        timeline = PhaseTimeline("recovery", "counter", [7], 0.0)
        timeline.enter("PLAN", 0.0)
        timeline.enter("MYSTERY_PHASE", 1.0)
        timeline.enter("DONE", 3.0)
        timeline.close(3.0, "done")
        path = analyze(timeline)
        assert path.segments["other"] == pytest.approx(2.0)
        assert path.total == pytest.approx(timeline.total_duration())


class TestRecord:
    def test_as_record_shape(self):
        record = analyze(recovery_timeline(), failure_time=9.0).as_record()
        assert record["kind"] == "critical_path"
        assert record["reconfig"] == "recovery"
        assert record["op"] == "counter"
        assert record["slots"] == [7]
        assert record["outcome"] == "done"
        assert record["detection"] == pytest.approx(1.0)
        assert record["total"] == pytest.approx(
            sum(record["segments"].values())
        )
        assert record["dominant"] == SEGMENT_PROVISION

    def test_render_mentions_every_segment(self):
        text = analyze(recovery_timeline(), failure_time=9.0).render()
        for name in ("detection", "provision", "transfer", "replay-drain",
                     "dominant:"):
            assert name in text
