"""Tests for the span/tracer primitives."""

from repro.obs import Tracer


class TestSpan:
    def test_open_and_close(self):
        tracer = Tracer()
        span = tracer.start("work", time=1.0)
        assert span.open
        assert span.duration is None
        tracer.end(span, 3.5, result="ok")
        assert not span.open
        assert span.duration == 2.5
        assert span.attrs["result"] == "ok"

    def test_close_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start("work", time=1.0)
        tracer.end(span, 2.0)
        tracer.end(span, 9.0)
        assert span.end == 2.0

    def test_to_record_shape(self):
        tracer = Tracer()
        parent = tracer.start("outer", time=0.0)
        child = tracer.start("inner", kind="phase", time=1.0, parent=parent)
        tracer.end(child, 2.0)
        record = child.to_record()
        assert record["kind"] == "span"
        assert record["type"] == "phase"
        assert record["name"] == "inner"
        assert record["parent"] == parent.span_id
        assert record["trace"] == parent.trace_id
        assert record["t"] == 1.0
        assert record["end"] == 2.0


class TestTracerCausality:
    def test_root_span_defines_trace_id(self):
        tracer = Tracer()
        root = tracer.start("root", time=0.0)
        assert root.trace_id == root.span_id
        child = tracer.start("child", time=1.0, parent=root)
        grandchild = tracer.start("gc", time=2.0, parent=child)
        assert child.trace_id == root.trace_id
        assert grandchild.trace_id == root.trace_id

    def test_independent_roots_get_distinct_traces(self):
        tracer = Tracer()
        a = tracer.start("a", time=0.0)
        b = tracer.start("b", time=0.0)
        assert a.trace_id != b.trace_id

    def test_link_registry_resolves_parent_across_boundaries(self):
        """The cross-VM pattern: a failure span registered under a causal
        key becomes the parent of a span started elsewhere, later."""
        tracer = Tracer()
        failure = tracer.start("failure:counter", time=5.0)
        tracer.end(failure, 5.0)
        tracer.link(("failure", 7), failure)
        detection = tracer.start(
            "detection:counter", time=5.0, link_from=("failure", 7)
        )
        assert detection.parent_id == failure.span_id
        assert detection.trace_id == failure.trace_id

    def test_unresolved_link_yields_root_span(self):
        tracer = Tracer()
        span = tracer.start("orphan", time=0.0, link_from=("missing", 1))
        assert span.parent_id is None
        assert span.trace_id == span.span_id

    def test_relink_overwrites(self):
        tracer = Tracer()
        first = tracer.start("first", time=0.0)
        second = tracer.start("second", time=1.0)
        tracer.link("key", first)
        tracer.link("key", second)
        assert tracer.resolve("key") is second

    def test_trace_and_children_queries(self):
        tracer = Tracer()
        root = tracer.start("root", time=0.0)
        kids = [tracer.start(f"k{i}", time=1.0, parent=root) for i in range(3)]
        other = tracer.start("other", time=0.0)
        assert tracer.children_of(root) == kids
        trace = tracer.trace(root.trace_id)
        assert root in trace and all(k in trace for k in kids)
        assert other not in trace
        assert len(tracer) == 5

    def test_explicit_parent_beats_link_from(self):
        tracer = Tracer()
        linked = tracer.start("linked", time=0.0)
        tracer.link("key", linked)
        explicit = tracer.start("explicit", time=0.0)
        span = tracer.start(
            "child", time=1.0, parent=explicit, link_from="key"
        )
        assert span.parent_id == explicit.span_id


class TestTracerQueries:
    def test_find_by_kind_and_name(self):
        tracer = Tracer()
        tracer.start("alpha", kind="phase", time=0.0)
        tracer.start("beta", kind="phase", time=0.0)
        tracer.start("alpha", kind="transfer", time=1.0)
        assert len(tracer.find(name="alpha")) == 2
        assert len(tracer.find(kind="phase")) == 2
        assert len(tracer.find(kind="phase", name="alpha")) == 1

    def test_get_unknown_returns_none(self):
        assert Tracer().get(99) is None
