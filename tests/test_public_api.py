"""The frozen public API: ``repro.__all__`` is the supported surface."""

import repro


class TestPublicApi:
    def test_all_names_actually_import(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_all_is_sorted_and_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_core_entry_points_are_exported(self):
        required = {
            "StreamProcessingSystem",
            "SystemConfig",
            "QueryGraph",
            "Operator",
            "Telemetry",
            "Tracer",
            "ChaosRunner",
            "ReconfigurationEngine",
            # The redesigned checkpoint seam (DESIGN.md §14).
            "Checkpointer",
            "EpochCut",
            "CHECKPOINT_MODE_PHASE",
            "CHECKPOINT_MODE_BARRIER",
        }
        assert required <= set(repro.__all__)

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro import *", namespace)
        exported = {name for name in namespace if not name.startswith("_")}
        assert exported == set(repro.__all__) - {"__version__"}

    def test_telemetry_is_reachable_from_a_system(self):
        """The facade is not just importable — every system instance
        carries one."""
        from repro import StreamProcessingSystem, SystemConfig, Telemetry

        system = StreamProcessingSystem(SystemConfig())
        assert isinstance(system.telemetry, Telemetry)
        assert system.telemetry.hub is system.metrics
