#!/usr/bin/env python3
"""Static cost model vs dynamic scale out (§2's "cost models [32]").

The paper argues that static scale-out decisions need cost models whose
inputs (rates, selectivities) are hard to know up front, which is why it
scales dynamically.  This example shows both sides on the LRB query:

1. the static cost model predicts the bottleneck, per-operator partition
   counts and the critical path for a *given* peak rate;
2. a dynamic run discovers the same structure from measurements alone;
3. the query graph is exported as GraphViz DOT with the final partition
   counts annotated.

Run:  python examples/cost_model_analysis.py
"""

from repro.core.analysis import CostModel, critical_path, to_dot
from repro.experiments import run_lrb
from repro.experiments.report import render_table
from repro.workloads.lrb import build_lrb_query

NUM_XWAYS = 24
DURATION = 240.0
PEAK_RATE = NUM_XWAYS * 1700.0  # tuples/s at the end of the LRB ramp


def main() -> None:
    query = build_lrb_query(NUM_XWAYS, DURATION).graph

    model = CostModel(
        query,
        selectivity={
            ("forwarder", "toll_calc"): 0.99,  # position reports
            ("forwarder", "toll_assess"): 0.01,  # balance queries
            ("toll_calc", "toll_assess"): 0.5,  # charges (tolls > 0 only)
        },
    )
    print(f"static cost model at the peak rate ({PEAK_RATE:,.0f} tuples/s):")
    estimates = model.estimate({"feeder": PEAK_RATE})
    print(
        render_table(
            ["operator", "input rate (t/s)", "CPU demand", "partitions needed"],
            [
                [e.name, e.input_rate, e.cpu_demand, e.partitions_needed]
                for e in estimates
            ],
        )
    )
    print(f"\npredicted bottleneck : {model.predicted_bottleneck({'feeder': PEAK_RATE})}")
    print(f"critical path        : {' -> '.join(critical_path(query))}")

    print("\nnow the dynamic run discovers the same structure by measurement:")
    run = run_lrb(num_xways=NUM_XWAYS, duration=DURATION, quantum=1.0, seed=9)
    qm = run.system.query_manager
    final = {name: qm.parallelism_of(name) for name in query.operators}
    print(
        render_table(
            ["operator", "partitions (dynamic)"],
            [[name, count] for name, count in final.items()],
        )
    )
    most_split = max(
        (n for n in final if not query.is_source(n) and not query.is_sink(n)),
        key=final.get,
    )
    print(f"dynamically most-partitioned: {most_split}")

    print("\nexecution graph (GraphViz DOT):")
    print(to_dot(query, parallelism=final))


if __name__ == "__main__":
    main()
