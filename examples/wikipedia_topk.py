#!/usr/bin/env python3
"""Open-loop map/reduce top-k over a synthetic Wikipedia trace (§6.1).

The system starts under-provisioned against a fixed 60k tuples/s input,
drops tuples while overloaded, and scales out until it sustains the rate;
the sink merges partial top-k rankings from the partitioned reducers.

Run:  python examples/wikipedia_topk.py
"""

from repro.experiments import run_wikipedia_openloop
from repro.experiments.report import render_table, sparkline


def main() -> None:
    rate = 60_000.0
    print(f"open-loop map/reduce top-k, input fixed at {rate:,.0f} tuples/s")
    run = run_wikipedia_openloop(rate=rate, duration=240.0, sources=4, seed=5)

    consumed_t, consumed = run.consumed_series()
    vm_t, vms = run.vm_series()
    print(f"\nconsumed t/s: {sparkline(consumed)}")
    print(f"worker VMs  : {sparkline(vms)}  final {run.final_worker_vms()}")
    print(f"dropped during overload: {run.dropped_weight():,.0f} tuples")
    sustain = run.time_to_sustain(tolerance=0.10)
    print(f"sustained the input rate from t≈{sustain:.0f} s" if sustain else "never sustained")

    qm = run.system.query_manager
    print(
        f"final parallelism: map={qm.parallelism_of('map')}, "
        f"reduce={qm.parallelism_of('reduce')}"
    )

    ranking = run.query.collector.ranking()
    print()
    print(
        render_table(
            ["rank", "language edition", "visits"],
            [[i + 1, lang, count] for i, (lang, count) in enumerate(ranking)],
            title="top-10 most visited language versions (last emission)",
        )
    )


if __name__ == "__main__":
    main()
