#!/usr/bin/env python3
"""Linear Road Benchmark with dynamic scale out (the paper's §6.1 demo).

Deploys the 7-operator LRB query with one VM per operator and lets the
bottleneck detector partition operators as the input rate ramps from
15 to 1700 tuples/s per express-way.  Prints the scale-out timeline and
the throughput/VM series, and checks the LRB 5-second latency target.

Run:  python examples/lrb_scaleout.py [num_xways]
"""

import sys

from repro.experiments import run_lrb
from repro.experiments.report import render_table, sparkline
from repro.workloads.lrb import LATENCY_TARGET_SECONDS


def main() -> None:
    num_xways = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    duration = 400.0
    print(f"Linear Road, L={num_xways}, {duration:.0f} s ramp (simulated)")
    run = run_lrb(num_xways=num_xways, duration=duration, quantum=1.0, seed=3)

    print("\nscale-out timeline:")
    for time, kind, detail in run.system.metrics.events:
        if kind in ("scale_out_started", "scale_out_complete", "scale_out_aborted"):
            print(f"  t={time:7.1f}  {kind}: {detail}")

    qm = run.system.query_manager
    rows = [
        [name, qm.parallelism_of(name)]
        for name in qm.query.operators  # type: ignore[union-attr]
    ]
    print()
    print(render_table(["operator", "partitions"], rows, title="final execution graph"))

    in_t, in_rates = run.input_rate_series()
    out_t, out_rates = run.processed_series("sink")
    vm_t, vm_counts = run.vm_series()
    print(f"\ninput rate : {sparkline(in_rates)}  peak {run.peak_input_rate():,.0f} t/s")
    print(f"throughput : {sparkline(out_rates)}  peak {run.peak_throughput():,.0f} t/s")
    print(f"worker VMs : {sparkline(vm_counts)}  final {run.final_worker_vms()}")

    median = run.latency_percentile(50) * 1e3
    p99 = run.latency_percentile(99)
    print(f"\nlatency: median {median:.0f} ms, p99 {p99 * 1e3:.0f} ms")
    print(
        f"LRB {LATENCY_TARGET_SECONDS:.0f} s target met: {p99 < LATENCY_TARGET_SECONDS}"
    )
    collector = run.query.collector
    print(
        f"results: {collector.toll_notifications:,.0f} toll notifications, "
        f"{collector.accident_alerts:,.0f} accident alerts, "
        f"{collector.balance_responses:,.0f} balance responses"
    )


if __name__ == "__main__":
    main()
