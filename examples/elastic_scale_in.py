#!/usr/bin/env python3
"""Elastic scale out *and* scale in over a load wave (§3.3/§8 extension).

The paper's future-work vision: "extend our scale out policy with support
for scale in to enable truly elastic deployments".  This example drives a
load wave — ramp up, plateau, ramp down — with the scale-out policy and
the low-utilisation scale-in policy both active, and prints how the
partition count of the stateful counter follows the load in both
directions while per-word counts stay exact.

Run:  python examples/elastic_scale_in.py
"""

from repro import StreamProcessingSystem, SystemConfig
from repro.experiments.report import sparkline
from repro.scaling.scale_in import ScaleInPolicy
from repro.workloads import build_word_count_query


def wave(t: float) -> float:
    """Sentences/s: ramp up to a plateau, then back down."""
    if t < 60.0:
        return 150.0 + (850.0 * t / 60.0)
    if t < 120.0:
        return 1000.0
    if t < 180.0:
        return max(150.0, 1000.0 - 850.0 * (t - 120.0) / 60.0)
    return 150.0


def main() -> None:
    query = build_word_count_query(
        rate=wave,
        window=30.0,
        vocabulary_size=1_000,
        words_per_sentence=5,
        counter_cost=2.5e-4,
    )
    config = SystemConfig()
    config.seed = 11
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)

    # Wire the scale-in policy into the detector's report stream.
    scale_in_policy = ScaleInPolicy(
        system, system.scale_in, low_threshold=0.30, consecutive_reports=3
    )

    def scale_in_tick() -> None:
        reports = system.detector.collect_reports()
        scale_in_policy.observe(reports)

    system.sim.every(system.config.scaling.report_interval, scale_in_tick,
                     start_after=system.config.scaling.report_interval + 2.5)

    parallelism_series = []
    system.sim.every(
        5.0,
        lambda: parallelism_series.append(
            system.query_manager.parallelism_of("counter")
        ),
    )
    system.run(until=260.0)

    print("counter partitions over the load wave:")
    print(f"  load      : {sparkline([wave(t) for t in range(0, 260, 5)])}")
    print(f"  partitions: {sparkline(parallelism_series)}")
    print(f"  final     : {system.query_manager.parallelism_of('counter')}")
    print("\nelasticity events:")
    for time, kind, detail in system.metrics.events:
        if kind in ("scale_out", "scale_in_complete"):
            print(f"  t={time:7.1f}  {kind}: {detail}")

    # Counts stay exact through every split and merge.
    counter_state = {}
    for instance in system.instances_of("counter"):
        for key, value in instance.state.items():
            counter_state[key] = value
    total_windowed = sum(
        count for buckets in counter_state.values() if isinstance(buckets, dict)
        for count in buckets.values()
    )
    flushed = sum(
        value for (_key, _window), value in query.collector.results.items()
    )
    generated = query.generators["source"].injected_weight * 5  # words
    print(
        f"\nwords generated {generated:,.0f} = flushed {flushed:,.0f} "
        f"+ still windowed {total_windowed:,.0f}: "
        f"{generated == flushed + total_windowed}"
    )


if __name__ == "__main__":
    main()
