#!/usr/bin/env python3
"""Compare the three fault-tolerance mechanisms on one failure (§6.2).

Runs the windowed word-count query three times, killing the counter's VM
at the same instant under each strategy:

* R+SM  — restore the latest checkpoint, replay a few seconds of tuples;
* SR    — stop the source, replay its buffer through the pipeline;
* UB    — replay the upstream operator's buffered outputs into fresh state.

Prints recovery time and what happened to the query results.

Run:  python examples/recovery_comparison.py
"""

from repro import StreamProcessingSystem, SystemConfig
from repro.experiments.report import render_table
from repro.workloads import build_word_count_query

FAIL_AT = 40.0
RATE = 400.0


def run(strategy: str, inject_failure: bool = True):
    query = build_word_count_query(rate=RATE, window=30.0, vocabulary_size=600)
    config = SystemConfig()
    config.scaling.enabled = False
    config.fault.strategy = strategy
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    if inject_failure:
        system.injector.fail_target_at(lambda: system.vm_of("counter"), FAIL_AT)
    system.run(until=110.0)
    return system, query


def main() -> None:
    print(f"word count at {RATE:.0f} sentences/s; counter VM killed at t={FAIL_AT}s\n")
    _base_system, base = run("rsm", inject_failure=False)

    rows = []
    for label, strategy in (
        ("R+SM (checkpoint c=5 s)", "rsm"),
        ("source replay", "source_replay"),
        ("upstream backup", "upstream_backup"),
        ("active replication (2x VMs)", "active_replication"),
    ):
        system, query = run(strategy)
        duration = system.recovery.last_recovery_duration
        per_window = []
        for window in sorted(base.collector.windows()):
            equal = base.collector.counts_for_window(
                window
            ) == query.collector.counts_for_window(window)
            per_window.append("=" if equal else "≠")
        rows.append([label, f"{duration:.2f}" if duration else "-", " ".join(per_window)])

    print(
        render_table(
            ["strategy", "recovery time (s)", "window results vs no-failure run"],
            rows,
        )
    )
    print(
        "\nR+SM restores state and replays only the tuples since the last\n"
        "checkpoint: fast, cheap and exact in every window.  The replay\n"
        "baselines re-process a full window of tuples and lose whatever\n"
        "their buffers no longer cover (UB) or whatever the stopped source\n"
        "never produced (SR).  Active replication is faster still (the\n"
        "replica is hot, so recovery is just the detection delay) and also\n"
        "exact — but it pays for a second VM per stateful operator for the\n"
        "whole run, which is why the paper rejects it at cloud scale."
    )


if __name__ == "__main__":
    main()
