#!/usr/bin/env python3
"""Quickstart: build a stateful streaming query, scale it out, kill it.

This walks the public API end to end on the paper's running example — a
windowed word-frequency query — and demonstrates the two headline
capabilities on one run:

* the bottleneck detector splits the hot word counter automatically;
* a VM crash is recovered from a checkpoint, with results identical to a
  failure-free run.

Run:  python examples/quickstart.py
"""

from repro import StreamProcessingSystem, SystemConfig
from repro.workloads import build_word_count_query
from repro.workloads.synthetic import linear_ramp


def run(with_failure: bool) -> tuple[StreamProcessingSystem, dict]:
    # A query graph: source -> splitter -> windowed counter -> sink.
    # The input rate ramps up so the stateful counter becomes a bottleneck
    # (a deliberately expensive counter keeps the demo fast to simulate).
    query = build_word_count_query(
        rate=linear_ramp(150.0, 900.0, 100.0),
        window=30.0,
        vocabulary_size=1_000,
        words_per_sentence=5,
        counter_cost=2.5e-4,
    )

    config = SystemConfig()           # paper defaults: c=5s, δ=70%, k=2, r=5s
    config.seed = 7
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)

    if with_failure:
        # Crash whatever VM hosts counter partition 0 at t=100 s.
        system.injector.fail_target_at(lambda: system.vm_of("counter"), 100.0)

    system.run(until=150.0)

    results = {
        (key, window): value
        for (key, window), value in query.collector.results.items()
    }
    return system, results


def main() -> None:
    print("== run 1: ramping load, no failures ==")
    baseline_system, baseline_results = run(with_failure=False)
    print_summary(baseline_system)

    print("\n== run 2: same workload + a VM crash at t=100 s ==")
    failure_system, failure_results = run(with_failure=True)
    print_summary(failure_system)

    same = baseline_results == failure_results
    print(f"\nwindow results identical across runs: {same}")
    assert same, "recovery must not change query results"


def print_summary(system: StreamProcessingSystem) -> None:
    summary = system.summary()
    print(f"  simulated time   : {summary['time']:.0f} s")
    print(f"  final parallelism: {summary['parallelism']}")
    print(f"  worker VMs       : {summary['worker_vms']}")
    print(f"  checkpoints      : {summary['checkpoints_stored']:.0f}")
    print(f"  scale outs       : {summary['scale_outs']}")
    print(f"  failures         : {summary['failures']}")
    print(f"  recoveries       : {summary['recoveries']}")
    for time, kind, detail in system.metrics.events:
        if kind in ("scale_out", "failure", "recovery_complete"):
            print(f"    t={time:7.2f}  {kind}: {detail}")
    reservoir = system.metrics.latencies.get("latency:counter")
    if reservoir is not None and len(reservoir):
        print(
            f"  latency (ms)     : median {reservoir.median() * 1e3:.1f}, "
            f"p95 {reservoir.percentile(95) * 1e3:.1f}"
        )


if __name__ == "__main__":
    main()
