"""Fig. 13: serial vs parallel recovery using state management.

Paper (500 tuples/s): at short checkpointing intervals parallel recovery
(π = 2) is slower — standing up two operators costs more than it saves —
but as the interval grows and replay dominates, splitting the replay
across two partitions wins.
"""

from conftest import is_quick, register_result

from repro.experiments import fig13_parallel_recovery


def params():
    if is_quick():
        return dict(intervals=(1.0, 15.0, 30.0), rate=500.0, repeats=1)
    return dict(
        intervals=(1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0), rate=500.0, repeats=1
    )


def test_fig13_parallel_recovery(benchmark):
    result = benchmark.pedantic(
        lambda: fig13_parallel_recovery(**params()), rounds=1, iterations=1
    )
    register_result(result)
    first, last = result.rows[0], result.rows[-1]
    # Short interval: parallel pays fixed overhead.
    assert first[2] > first[1]
    # Long interval: parallel recovers faster than serial.
    assert last[2] < last[1]
