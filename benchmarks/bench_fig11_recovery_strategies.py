"""Fig. 11: recovery time per fault-tolerance mechanism.

Paper (windowed word count, c = 5 s, 30 s window): recovery with state
management (R+SM) beats both source replay (SR) and upstream backup (UB)
at every rate because it replays at most one checkpoint interval instead
of the whole window; SR edges out UB at higher rates because it stops new
tuple generation during recovery.
"""

from conftest import is_quick, register_result

from repro.experiments import fig11_recovery_strategies


def params():
    if is_quick():
        return dict(rates=(100.0, 500.0), repeats=1)
    return dict(rates=(100.0, 500.0, 1000.0), repeats=2)


def test_fig11_recovery_strategies(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_recovery_strategies(**params()), rounds=1, iterations=1
    )
    register_result(result)
    for row in result.rows:
        _rate, rsm, sr, ub = row
        assert rsm < sr and rsm < ub  # R+SM always fastest
    # Recovery time grows with the input rate for the replay-based
    # baselines (more tuples to re-process).
    first, last = result.rows[0], result.rows[-1]
    assert last[2] > first[2]  # SR
    assert last[3] > first[3]  # UB
    # At the highest rate SR beats UB (new-tuple contention hits UB).
    assert last[2] < last[3]
