"""§6.1 headline: the maximum sustainable Linear Road load factor.

Paper: L=350 with 50 VMs, the second-highest L-rating reported at the
time; beyond that the sources and sinks saturate (~600k tuples/s of
serialisation capacity), not the scaled-out operators.
"""

from conftest import is_quick, register_result

from repro.experiments import lrating_probe


def params():
    if is_quick():
        return dict(l_values=(24, 64), duration=300.0, quantum=1.0)
    return dict(l_values=(350, 450), duration=2000.0, quantum=2.0)


def test_lrating(benchmark):
    result = benchmark.pedantic(lambda: lrating_probe(**params()), rounds=1, iterations=1)
    register_result(result)
    rows = result.rows
    # The lower L passes the LRB constraints...
    assert rows[0][5] is True
    if not is_quick():
        # ...and beyond the source/sink ceiling (~650k tuples/s) the
        # system can no longer satisfy them no matter how many workers.
        assert rows[1][5] is False
