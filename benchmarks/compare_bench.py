#!/usr/bin/env python
"""Compare a fresh bench report against the committed baseline.

Usage::

    python benchmarks/compare_bench.py BENCH_dataplane.json \
        benchmarks/BENCH_baseline.json [--threshold 0.30]

Exits non-zero when any gated wall-clock metric regressed by more than
``threshold`` (relative), or when a simulated-time metric changed at all
(sim time is deterministic — any drift is a behaviour change, not
noise).  Wall-clock metrics only gate in the *worse* direction; getting
faster never fails.  Stdlib only, so CI needs no extra installs.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Gated wall-clock metrics: (json path, higher_is_better).
GATED = [
    (("results", "kernel", "events_per_sec"), True),
    (("results", "throughput", "unbatched", "tuples_per_wall_sec"), True),
    (("results", "throughput", "batched", "tuples_per_wall_sec"), True),
    (("results", "throughput", "speedup"), True),
    # Columnar block plane: operator-level tuples/wall-sec both ways and
    # the headline speedup (acceptance floor is 3x; the gate only guards
    # against regression relative to the committed baseline).
    (("results", "dataplane", "rows", "tuples_per_wall_sec"), True),
    (("results", "dataplane", "columnar", "tuples_per_wall_sec"), True),
    (("results", "dataplane", "columnar_speedup"), True),
    (("results", "dataplane", "pipeline", "rows", "tuples_per_wall_sec"), True),
    (
        ("results", "dataplane", "pipeline", "columnar", "tuples_per_wall_sec"),
        True,
    ),
]

#: Deterministic simulated-time metrics: must match the baseline exactly.
EXACT = [
    ("results", "recovery", "sim_recovery_seconds"),
    ("results", "throughput", "batched", "network_messages"),
    ("results", "throughput", "unbatched", "network_messages"),
    ("results", "migration", "all_at_once", "max_pause_ms"),
    ("results", "migration", "chunked", "max_pause_ms"),
    ("results", "migration", "chunked", "chunks_shipped"),
    ("results", "migration", "pause_reduction"),
    # State-backend sweep: resident-set bounds are entry counts derived
    # purely from simulated execution, so any drift is a tiering bug.
    ("results", "backends", "memory", "peak_resident_entries"),
    ("results", "backends", "spill", "peak_resident_entries"),
    ("results", "backends", "external", "peak_resident_entries"),
    ("results", "backends", "spill", "migration_max_pause_ms"),
    ("results", "backends", "spill", "state_io_seconds"),
    ("results", "backends", "external", "external_write_io_seconds"),
    # Phi-detector sweep: detection latency and false-positive counts
    # come from deterministic simulated runs under seeded heartbeat
    # loss, so any drift is a detector behaviour change.
    ("results", "detection", "phi_2", "detection_latency_s"),
    ("results", "detection", "phi_2", "false_positives"),
    ("results", "detection", "phi_4", "detection_latency_s"),
    ("results", "detection", "phi_4", "false_positives"),
    ("results", "detection", "phi_8", "detection_latency_s"),
    ("results", "detection", "phi_8", "false_positives"),
    # Checkpoint-mode sweep: sink/data-path p99, per-cut delta bytes and
    # epoch counts are simulated-time numbers from seeded runs — any
    # drift is a barrier-protocol or incremental-cut behaviour change.
    ("results", "checkpoint_sweep", "no_checkpoint", "sink_p99_ms"),
    ("results", "checkpoint_sweep", "no_checkpoint", "counter_p99_ms"),
    ("results", "checkpoint_sweep", "phase", "sink_p99_ms"),
    ("results", "checkpoint_sweep", "phase", "counter_p99_ms"),
    ("results", "checkpoint_sweep", "phase_frequent", "sink_p99_ms"),
    ("results", "checkpoint_sweep", "phase_frequent", "counter_p99_ms"),
    ("results", "checkpoint_sweep", "barrier", "sink_p99_ms"),
    ("results", "checkpoint_sweep", "barrier", "counter_p99_ms"),
    ("results", "checkpoint_sweep", "barrier", "delta_bytes_per_cut"),
    ("results", "checkpoint_sweep", "barrier", "epochs_completed"),
    ("results", "checkpoint_sweep", "barrier_frequent", "sink_p99_ms"),
    ("results", "checkpoint_sweep", "barrier_frequent", "counter_p99_ms"),
    ("results", "checkpoint_sweep", "barrier_frequent", "delta_bytes_per_cut"),
    ("results", "checkpoint_sweep", "barrier_frequent", "epochs_completed"),
    # Zipf-skew sweep: interval-only splitting vs hot-key carve-out at
    # each skew exponent.  Throughput, tail latency, hot-slot saturation
    # and the operation counts are all simulated-time numbers from
    # seeded runs — any drift is a scaling-policy or carve-out
    # behaviour change.  The interval_only cells double as the
    # bit-identical guard for the default (hot-key-disabled) config.
    ("results", "skew_sweep", "zipf_1", "interval_only", "tuples_processed"),
    ("results", "skew_sweep", "zipf_1", "interval_only", "reduce_p99_ms"),
    ("results", "skew_sweep", "zipf_1", "interval_only", "hot_slot_final_util"),
    ("results", "skew_sweep", "zipf_1", "interval_only", "splits_completed"),
    ("results", "skew_sweep", "zipf_1", "hot_key_aware", "tuples_processed"),
    ("results", "skew_sweep", "zipf_1", "hot_key_aware", "reduce_p99_ms"),
    ("results", "skew_sweep", "zipf_1", "hot_key_aware", "carve_outs"),
    ("results", "skew_sweep", "zipf_1.5", "interval_only", "tuples_processed"),
    ("results", "skew_sweep", "zipf_1.5", "interval_only", "reduce_p99_ms"),
    ("results", "skew_sweep", "zipf_1.5", "interval_only", "hot_slot_final_util"),
    ("results", "skew_sweep", "zipf_1.5", "interval_only", "plateaued"),
    ("results", "skew_sweep", "zipf_1.5", "interval_only", "splits_completed"),
    ("results", "skew_sweep", "zipf_1.5", "hot_key_aware", "tuples_processed"),
    ("results", "skew_sweep", "zipf_1.5", "hot_key_aware", "reduce_p99_ms"),
    ("results", "skew_sweep", "zipf_1.5", "hot_key_aware", "hot_slot_final_util"),
    ("results", "skew_sweep", "zipf_1.5", "hot_key_aware", "carve_outs"),
    # Columnar block plane: the block path must be a pure fast path —
    # same simulated behaviour, same message counts — and the
    # backpressure ceiling is a deterministic function of the credit
    # protocol (bounded with flow on, monotonic queue growth with it
    # off).  Any drift is a data-plane behaviour change.
    ("results", "dataplane", "pipeline", "rows", "tuples_processed"),
    ("results", "dataplane", "pipeline", "columnar", "tuples_processed"),
    ("results", "dataplane", "pipeline", "rows", "network_messages"),
    ("results", "dataplane", "pipeline", "columnar", "network_messages"),
    ("results", "dataplane", "backpressure", "on", "bounded"),
    ("results", "dataplane", "backpressure", "on", "peak_queue_depth"),
    ("results", "dataplane", "backpressure", "on", "shed_weight"),
    ("results", "dataplane", "backpressure", "off", "monotonic_growth"),
    ("results", "dataplane", "backpressure", "off", "peak_queue_depth"),
]


def lookup(report: dict, path: tuple) -> float | None:
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench JSON report")
    parser.add_argument("baseline", help="committed baseline JSON report")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="max tolerated relative wall-clock regression (default 0.30)",
    )
    args = parser.parse_args(argv)

    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    if current.get("preset") != baseline.get("preset"):
        print(
            f"preset mismatch: current={current.get('preset')!r} "
            f"baseline={baseline.get('preset')!r}; not comparable"
        )
        return 2

    failures = []
    for path, higher_is_better in GATED:
        base = lookup(baseline, path)
        cur = lookup(current, path)
        name = ".".join(path)
        if base is None or cur is None:
            print(f"SKIP {name}: missing in current or baseline")
            continue
        if higher_is_better:
            regression = (base - cur) / base
        else:
            regression = (cur - base) / base
        status = "OK"
        if regression > args.threshold:
            status = "FAIL"
            failures.append(name)
        print(
            f"{status} {name}: baseline={base} current={cur} "
            f"({-regression:+.1%} vs baseline, floor -{args.threshold:.0%})"
        )

    for path in EXACT:
        base = lookup(baseline, path)
        cur = lookup(current, path)
        name = ".".join(path)
        if base is None or cur is None:
            print(f"SKIP {name}: missing in current or baseline")
            continue
        if base != cur:
            failures.append(name)
            print(f"FAIL {name}: deterministic value drifted "
                  f"baseline={base} current={cur}")
        else:
            print(f"OK {name}: {cur} (exact)")

    if failures:
        print(f"\n{len(failures)} metric(s) regressed: {', '.join(failures)}")
        return 1
    print("\nall gated metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
