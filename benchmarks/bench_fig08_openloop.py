"""Fig. 8: dynamic scale out for a map/reduce-style workload (open loop).

Paper: 18 sources inject 550k tuples/s into an under-provisioned query;
tuples are dropped during overload and the SPS scales out (stateless maps
faster than stateful reducers) until it sustains the incoming rate.
"""

from conftest import is_quick, register_result

from repro.experiments import fig08_openloop


def params():
    if is_quick():
        return dict(rate=60_000.0, duration=200.0, sources=4)
    return dict(rate=550_000.0, duration=600.0, sources=18)


def test_fig08_openloop(benchmark):
    result = benchmark.pedantic(
        lambda: fig08_openloop(**params()), rounds=1, iterations=1
    )
    register_result(result)
    metrics = {row[0]: row[1] for row in result.rows}
    assert metrics["tuples dropped during overload"] > 0
    assert metrics["time to sustain input (s)"] is not None
    assert metrics["final map parallelism"] >= 2
    assert metrics["final reduce parallelism"] >= 2
    assert metrics["peak consumed rate (tuples/s)"] >= 0.9 * metrics[
        "target input rate (tuples/s)"
    ]
