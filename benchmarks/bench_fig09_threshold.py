"""Fig. 9: impact of the scale-out threshold δ on latency and #VMs.

Paper (LRB, L=64): higher δ allocates fewer VMs; the median-latency curve
is concave — it rises at low δ (frequent scale outs disturb processing)
and at high δ (VMs run close to overload) — making δ = 50-70 % the sweet
spot.
"""

from conftest import is_quick, register_result

from repro.experiments import fig09_threshold


def params():
    if is_quick():
        return dict(
            thresholds=(0.30, 0.70, 0.90), num_xways=16, duration=300.0, quantum=1.0
        )
    return dict(
        thresholds=(0.10, 0.30, 0.50, 0.70, 0.90),
        num_xways=64,
        duration=1000.0,
        quantum=2.0,
    )


def test_fig09_threshold(benchmark):
    result = benchmark.pedantic(
        lambda: fig09_threshold(**params()), rounds=1, iterations=1
    )
    register_result(result)
    vms = [row[1] for row in result.rows]
    # Fewer VMs as δ grows (monotone non-increasing).
    assert all(a >= b for a, b in zip(vms, vms[1:]))
    # More scale-out churn at the lowest threshold than the highest.
    assert result.rows[0][4] >= result.rows[-1][4]
