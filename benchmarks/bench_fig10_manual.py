"""Fig. 10: dynamic vs manual (human expert) scale out.

Paper (LRB, L=115): a human expert's best static allocation needs 20 VMs
for low latency; the dynamic policy reaches comparable latency with ~25
VMs — automatic allocation costs ~25 % more resources than the optimum.

The steady-state comparison uses the last 30 % of the run: the dynamic
policy follows the ramp, so its full-run percentiles include the
under-provisioned climb that static allocations never experience.
"""

import math

from conftest import is_quick, register_result

from repro.experiments import fig10_manual_vs_dynamic


def params():
    if is_quick():
        return dict(vm_budgets=(5, 8, 12), num_xways=16, duration=300.0, quantum=1.0)
    return dict(
        vm_budgets=(10, 15, 20, 25, 30), num_xways=115, duration=1000.0, quantum=2.0
    )


def test_fig10_manual_vs_dynamic(benchmark):
    result = benchmark.pedantic(
        lambda: fig10_manual_vs_dynamic(**params()), rounds=1, iterations=1
    )
    register_result(result)
    manual = [row for row in result.rows if row[0] == "manual"]
    dynamic = [row for row in result.rows if row[0] == "dynamic"][0]
    # The smallest manual allocation is overloaded (worst p95); larger
    # manual allocations improve latency monotonically.
    p95s = [row[3] for row in manual]
    assert p95s[0] == max(p for p in p95s if not math.isnan(p))
    tails = [row[4] for row in manual]
    assert all(a >= b for a, b in zip(tails, tails[1:]))
    # The dynamic policy converges to fewer VMs than the largest manual
    # budget while staying within the LRB 5 s latency target.  (The paper's
    # dynamic run matched the manual optimum's latency with ~25 % more VMs;
    # ours trades more latency headroom for fewer VMs — see EXPERIMENTS.md.)
    biggest_budget = max(row[1] for row in manual)
    assert dynamic[1] <= biggest_budget
    assert dynamic[4] < 5_000.0
