"""Fig. 7: processing latency for the LRB workload.

Paper: median 153 ms, p95 700 ms, p99 1459 ms — all within the LRB 5 s
target — with latency peaks of up to ~4 s right after scale-out events.
Shares the cached closed-loop run with the Fig. 6 bench when parameters
match.
"""

from conftest import is_quick, register_result

from repro.experiments import fig07_lrb_latency


def params():
    if is_quick():
        return dict(num_xways=32, duration=300.0, quantum=1.0)
    return dict(num_xways=350, duration=2000.0, quantum=2.0)


def test_fig07_lrb_latency(benchmark):
    result = benchmark.pedantic(
        lambda: fig07_lrb_latency(**params()), rounds=1, iterations=1
    )
    register_result(result)
    metrics = {row[0]: row[1] for row in result.rows}
    assert metrics["within LRB 5 s target"]
    assert metrics["median latency (ms)"] < metrics["95th percentile (ms)"]
    # Scale out produces visible latency spikes: the max is well above
    # the median, yet bounded.
    assert metrics["max latency (s)"] < 10.0
