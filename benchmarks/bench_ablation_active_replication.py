"""Ablation: active replication vs R+SM (§7).

"Active replication strategies are ... impractical because they typically
double resource requirements" — here both sides of the trade are
measured: AR recovers in roughly the failure-detection time (no state
transfer, no replay backlog), but bills roughly twice the worker
VM-seconds for the whole run.
"""

from conftest import is_quick, register_result

from repro.experiments import ablation_active_replication


def params():
    if is_quick():
        return dict(rate=300.0, duration=60.0, fail_at=30.0)
    return dict(rate=500.0, duration=90.0, fail_at=45.0)


def test_ablation_active_replication(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_active_replication(**params()), rounds=1, iterations=1
    )
    register_result(result)
    rsm, ar = result.rows
    assert ar[1] < rsm[1]  # AR recovers faster...
    assert ar[2] > rsm[2] * 1.1  # ...but bills measurably more VM-seconds
