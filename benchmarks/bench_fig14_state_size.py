"""Fig. 14: checkpointing overhead vs state size and input rate.

Paper: the 95th percentile of tuple processing latency grows with the
operator's state size (serialising the dictionary under the state lock
steals CPU from tuple processing) and with the input rate (less headroom
for checkpointing); without checkpointing, latency is flat and low.
"""

from conftest import is_quick, register_result

from repro.experiments import fig14_state_size


def params():
    if is_quick():
        return dict(rates=(100.0, 500.0), duration=40.0)
    return dict(rates=(100.0, 500.0, 1000.0), duration=60.0)


def test_fig14_state_size(benchmark):
    result = benchmark.pedantic(
        lambda: fig14_state_size(**params()), rounds=1, iterations=1
    )
    register_result(result)
    by_label = {row[0]: row[1:] for row in result.rows}
    small = by_label["small (10^2)"]
    large = by_label["large (10^5)"]
    baseline = by_label["no checkpointing"]
    # Latency grows with state size at every rate.
    assert all(l > s for s, l in zip(small, large))
    # Checkpointing costs something relative to the baseline for large state.
    assert all(l > b for b, l in zip(baseline, large))
