"""Ablation: the VM pool (§5.2).

Not a paper figure, but the design choice DESIGN.md calls out: without a
pre-allocated pool, every scale out waits out the IaaS provisioning delay
(minutes), prolonging the overload it was meant to relieve.
"""

from conftest import is_quick, register_result

from repro.experiments import ablation_vm_pool


def params():
    if is_quick():
        return dict(pool_sizes=(0, 3), num_xways=12, duration=250.0, quantum=1.0,
                    provisioning_delay=60.0)
    return dict(pool_sizes=(0, 2, 4), num_xways=64, duration=800.0, quantum=2.0)


def test_ablation_vm_pool(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_vm_pool(**params()), rounds=1, iterations=1
    )
    register_result(result)
    no_pool = result.rows[0]
    pooled = result.rows[-1]
    if no_pool[2] is not None and pooled[2] is not None:
        # Scale outs complete orders of magnitude faster with a pool.
        assert no_pool[2] > pooled[2] * 3
