"""Fig. 15: the checkpoint-interval trade-off (word count at 1000 t/s).

Paper: the 95th-percentile processing latency *decreases* with longer
checkpointing intervals (fewer serialisation stalls) while the expected
recovery time *increases* (more tuples to replay) — the interval should
be chosen from the anticipated failure rate and latency requirements.
"""

from conftest import is_quick, register_result

from repro.experiments import fig15_tradeoff


def params():
    if is_quick():
        return dict(intervals=(1.0, 10.0, 30.0), rate=500.0)
    return dict(intervals=(1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0), rate=1000.0)


def test_fig15_tradeoff(benchmark):
    result = benchmark.pedantic(
        lambda: fig15_tradeoff(**params()), rounds=1, iterations=1
    )
    register_result(result)
    first, last = result.rows[0], result.rows[-1]
    assert first[1] >= last[1]  # latency overhead falls with the interval
    assert first[2] < last[2]  # recovery time grows with the interval
