"""Ablation: incremental checkpointing (§3.2, [17]).

The paper notes that "to reduce the size of checkpoints, it is also
possible to use incremental checkpointing techniques".  This bench
quantifies the claim on the Fig. 14 setup: with 10^5 mostly-cold state
entries, delta checkpoints should nearly erase the p95 latency overhead
of full checkpoints.
"""

from conftest import is_quick, register_result

from repro.experiments import ablation_incremental_checkpoints


def params():
    if is_quick():
        return dict(rates=(500.0,), duration=40.0)
    return dict(rates=(500.0, 1000.0), duration=60.0)


def test_ablation_incremental_checkpoints(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_incremental_checkpoints(**params()), rounds=1, iterations=1
    )
    register_result(result)
    full = result.rows[0]
    incremental = result.rows[1]
    # Incremental checkpointing removes most of the overhead at every rate.
    for f, i in zip(full[1:], incremental[1:]):
        assert i < f / 2
