"""Fig. 6: dynamic scale out for the LRB workload (closed loop).

Paper: at L=350 the system ramps from ~12k to ~600k tuples/s, allocating
VMs on demand up to ~50, with result throughput tracking the input rate.
"""

from conftest import is_quick, register_result

from repro.experiments import fig06_lrb_scaleout


def params():
    if is_quick():
        return dict(num_xways=32, duration=300.0, quantum=1.0)
    return dict(num_xways=350, duration=2000.0, quantum=2.0)


def test_fig06_lrb_scaleout(benchmark):
    result = benchmark.pedantic(
        lambda: fig06_lrb_scaleout(**params()), rounds=1, iterations=1
    )
    register_result(result)
    metrics = {row[0]: row[1] for row in result.rows}
    # Shape checks: the system scaled out and kept up with the ramp.
    assert metrics["scale-out operations"] >= (1 if is_quick() else 3)
    assert metrics["final worker VMs"] >= (6 if is_quick() else 10)
    assert metrics["input sustained at end"]
    assert metrics["peak result throughput (tuples/s)"] >= (
        0.8 * metrics["peak input rate (tuples/s)"]
    )
