"""Benchmark harness support.

Each benchmark regenerates one figure of the paper (see DESIGN.md §4) and
registers its rendered result here; the terminal summary prints them all
after the timing table, and a copy lands in ``benchmarks/results/``.

Scale control: set ``REPRO_BENCH_SCALE=quick`` for reduced parameters
(minutes → seconds); the default regenerates the figures at paper scale.
"""

from __future__ import annotations

import os
from pathlib import Path

_RESULTS: list = []

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


def is_quick() -> bool:
    return bench_scale() == "quick"


def register_result(result) -> None:
    """Record a FigureResult for the terminal summary and results dir."""
    _RESULTS.append(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = result.figure_id.lower().replace(".", "").replace(" ", "_")
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(result.render() + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "regenerated figures (paper §6)")
    terminalreporter.write_line(f"scale: {bench_scale()}")
    for result in _RESULTS:
        terminalreporter.write_line("")
        for line in result.render().splitlines():
            terminalreporter.write_line(line)
