"""Fig. 12: recovery time vs R+SM checkpointing interval.

Paper: recovery time increases with the checkpointing interval (more
tuples to replay) and with the input rate (each replayed second carries
more tuples); frequent checkpointing keeps recovery fast even at high
rates.
"""

from conftest import is_quick, register_result

from repro.experiments import fig12_checkpoint_interval


def params():
    if is_quick():
        return dict(intervals=(1.0, 10.0, 30.0), rates=(100.0, 500.0))
    return dict(
        intervals=(1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
        rates=(100.0, 500.0, 1000.0),
    )


def test_fig12_checkpoint_interval(benchmark):
    result = benchmark.pedantic(
        lambda: fig12_checkpoint_interval(**params()), rounds=1, iterations=1
    )
    register_result(result)
    columns = list(zip(*result.rows))
    intervals = columns[0]
    for rate_column in columns[1:]:
        # Monotone growth with the interval (within small tolerance).
        assert rate_column[-1] > rate_column[0]
    # Higher rates recover slower at the longest interval.
    last_row = result.rows[-1]
    assert last_row[-1] >= last_row[1]
