"""repro — a reproduction of "Integrating Scale Out and Fault Tolerance in
Stream Processing using Operator State Management" (SIGMOD 2013).

The public API in one import::

    from repro import (
        StreamProcessingSystem, SystemConfig, QueryGraph, Operator,
        SourceOperator, SinkOperator, build_word_count_query,
    )

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.config import (
    CHECKPOINT_MODE_BARRIER,
    CHECKPOINT_MODE_PHASE,
    CheckpointConfig,
    CloudConfig,
    FaultToleranceConfig,
    NetworkConfig,
    ScalingConfig,
    STRATEGY_NONE,
    STRATEGY_RSM,
    STRATEGY_SOURCE_REPLAY,
    STRATEGY_UPSTREAM_BACKUP,
    SystemConfig,
)
from repro.core import (
    Checkpoint,
    Checkpointer,
    CostModel,
    EpochCut,
    KeyInterval,
    Operator,
    OperatorContext,
    ProcessingState,
    QueryGraph,
    RoutingState,
    SpillableState,
    Tuple,
    WindowedJoinOperator,
)
from repro.errors import ReproError
from repro.runtime import (
    OperatorInstance,
    SinkOperator,
    SourceOperator,
    StreamProcessingSystem,
)

# The runtime import above must precede these: chaos and scaling both
# import repro.runtime internally, and obs is imported by runtime.system.
from repro.chaos import ChaosRunner
from repro.obs import Telemetry, Tracer
from repro.scaling.reconfig import ReconfigurationEngine
from repro.workloads import build_word_count_query, build_wikipedia_topk_query
from repro.workloads.lrb import build_lrb_query

__version__ = "1.0.0"

#: The frozen public surface: ``from repro import <name>`` for every name
#: here is the supported way in; everything else is internal layout.
__all__ = [
    "CHECKPOINT_MODE_BARRIER",
    "CHECKPOINT_MODE_PHASE",
    "Checkpoint",
    "Checkpointer",
    "ChaosRunner",
    "CostModel",
    "CheckpointConfig",
    "CloudConfig",
    "EpochCut",
    "FaultToleranceConfig",
    "KeyInterval",
    "NetworkConfig",
    "Operator",
    "OperatorContext",
    "OperatorInstance",
    "ProcessingState",
    "QueryGraph",
    "ReconfigurationEngine",
    "ReproError",
    "RoutingState",
    "STRATEGY_NONE",
    "STRATEGY_RSM",
    "STRATEGY_SOURCE_REPLAY",
    "STRATEGY_UPSTREAM_BACKUP",
    "ScalingConfig",
    "SinkOperator",
    "SpillableState",
    "SourceOperator",
    "StreamProcessingSystem",
    "SystemConfig",
    "Telemetry",
    "Tracer",
    "Tuple",
    "WindowedJoinOperator",
    "__version__",
    "build_lrb_query",
    "build_word_count_query",
    "build_wikipedia_topk_query",
]
