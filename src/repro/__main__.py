"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro list
    python -m repro fig11                # paper-scale parameters
    python -m repro fig06 --quick        # reduced parameters
    python -m repro all --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figures
from repro.experiments.chaos import chaos_sweep

#: Figure name → (driver, paper-scale kwargs, quick kwargs).
FIGURES: dict[str, tuple] = {
    "fig06": (
        figures.fig06_lrb_scaleout,
        {},
        {"num_xways": 32, "duration": 300.0, "quantum": 1.0},
    ),
    "fig07": (
        figures.fig07_lrb_latency,
        {},
        {"num_xways": 32, "duration": 300.0, "quantum": 1.0},
    ),
    "fig08": (
        figures.fig08_openloop,
        {},
        {"rate": 60_000.0, "duration": 200.0, "sources": 4},
    ),
    "fig09": (
        figures.fig09_threshold,
        {},
        {"thresholds": (0.3, 0.7, 0.9), "num_xways": 16, "duration": 300.0,
         "quantum": 1.0},
    ),
    "fig10": (
        figures.fig10_manual_vs_dynamic,
        {},
        {"vm_budgets": (5, 8, 12), "num_xways": 16, "duration": 300.0,
         "quantum": 1.0},
    ),
    "fig11": (figures.fig11_recovery_strategies, {}, {"rates": (100.0, 500.0),
                                                      "repeats": 1}),
    "fig12": (
        figures.fig12_checkpoint_interval,
        {},
        {"intervals": (1.0, 10.0, 30.0), "rates": (100.0, 500.0)},
    ),
    "fig13": (
        figures.fig13_parallel_recovery,
        {},
        {"intervals": (1.0, 15.0, 30.0)},
    ),
    "fig14": (figures.fig14_state_size, {}, {"rates": (100.0, 500.0),
                                             "duration": 40.0}),
    "fig15": (figures.fig15_tradeoff, {}, {"intervals": (1.0, 10.0, 30.0),
                                           "rate": 500.0}),
    "lrating": (
        figures.lrating_probe,
        {},
        {"l_values": (24, 64), "duration": 300.0, "quantum": 1.0},
    ),
    "vmpool": (
        figures.ablation_vm_pool,
        {},
        {"pool_sizes": (0, 3), "num_xways": 12, "duration": 250.0,
         "quantum": 1.0, "provisioning_delay": 60.0},
    ),
    "chaos": (
        chaos_sweep,
        {},
        {"seeds": tuple(range(5))},
    ),
}


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and regenerate the requested figure(s)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from the SIGMOD'13 operator state "
        "management paper.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig11), 'all', or 'list'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced parameters (seconds instead of minutes)",
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        for name in FIGURES:
            print(name)
        return 0

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    for name in names:
        driver, paper_kwargs, quick_kwargs = FIGURES[name]
        kwargs = quick_kwargs if args.quick else paper_kwargs
        start = time.time()
        result = driver(**kwargs)
        print(result.render())
        print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
