"""Command-line entry point: regenerate figures, trace or bench one run.

Usage::

    python -m repro list
    python -m repro fig11                # paper-scale parameters
    python -m repro fig06 --quick        # reduced parameters
    python -m repro all --quick
    python -m repro trace wordcount --seed 7   # causal trace + critical path
    python -m repro bench --preset small       # data-plane perf harness

All console output flows through a structured :class:`EventLog` with a
console sink, so every line the CLI prints is also a well-formed event
record — nothing in ``repro`` calls ``print`` directly.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figures
from repro.experiments.chaos import chaos_sweep
from repro.obs import EventLog, console_sink, run_trace

#: Figure name → (driver, paper-scale kwargs, quick kwargs).
FIGURES: dict[str, tuple] = {
    "fig06": (
        figures.fig06_lrb_scaleout,
        {},
        {"num_xways": 32, "duration": 300.0, "quantum": 1.0},
    ),
    "fig07": (
        figures.fig07_lrb_latency,
        {},
        {"num_xways": 32, "duration": 300.0, "quantum": 1.0},
    ),
    "fig08": (
        figures.fig08_openloop,
        {},
        {"rate": 60_000.0, "duration": 200.0, "sources": 4},
    ),
    "fig09": (
        figures.fig09_threshold,
        {},
        {"thresholds": (0.3, 0.7, 0.9), "num_xways": 16, "duration": 300.0,
         "quantum": 1.0},
    ),
    "fig10": (
        figures.fig10_manual_vs_dynamic,
        {},
        {"vm_budgets": (5, 8, 12), "num_xways": 16, "duration": 300.0,
         "quantum": 1.0},
    ),
    "fig11": (figures.fig11_recovery_strategies, {}, {"rates": (100.0, 500.0),
                                                      "repeats": 1}),
    "fig12": (
        figures.fig12_checkpoint_interval,
        {},
        {"intervals": (1.0, 10.0, 30.0), "rates": (100.0, 500.0)},
    ),
    "fig13": (
        figures.fig13_parallel_recovery,
        {},
        {"intervals": (1.0, 15.0, 30.0)},
    ),
    "fig14": (figures.fig14_state_size, {}, {"rates": (100.0, 500.0),
                                             "duration": 40.0}),
    "fig15": (figures.fig15_tradeoff, {}, {"intervals": (1.0, 10.0, 30.0),
                                           "rate": 500.0}),
    "lrating": (
        figures.lrating_probe,
        {},
        {"l_values": (24, 64), "duration": 300.0, "quantum": 1.0},
    ),
    "vmpool": (
        figures.ablation_vm_pool,
        {},
        {"pool_sizes": (0, 3), "num_xways": 12, "duration": 250.0,
         "quantum": 1.0, "provisioning_delay": 60.0},
    ),
    "chaos": (
        chaos_sweep,
        {},
        {"seeds": tuple(range(5))},
    ),
}


def _trace_main(argv: list[str]) -> int:
    """``python -m repro trace <workload>``: trace one seeded recovery."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one seeded recovery, dump its causal JSONL trace "
        "and render the phase timeline + critical-path breakdown.",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        default="wordcount",
        choices=("wordcount", "lrb"),
        help="workload to run (default: wordcount)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--duration", type=float, default=90.0, help="run length in sim-s"
    )
    parser.add_argument(
        "--fail-at", type=float, default=40.0,
        help="sim time of the injected primary-VM crash",
    )
    parser.add_argument(
        "--checkpoint-mode", default=None, choices=("phase", "barrier"),
        help="checkpoint coordination mode (default: config default, phase)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=2.0,
        help="checkpoint interval in sim-s (default: 2.0)",
    )
    parser.add_argument(
        "--out", default=None,
        help="trace output path (default: trace-<workload>-seed<N>.jsonl)",
    )
    args = parser.parse_args(argv)
    report = run_trace(
        workload=args.workload,
        seed=args.seed,
        duration=args.duration,
        fail_at=args.fail_at,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_mode=args.checkpoint_mode,
        out=args.out,
    )
    log = EventLog(sink=console_sink())
    log.emit("trace_report", text=report.render())
    return 0


def _bench_main(argv: list[str]) -> int:
    """``python -m repro bench``: run the data-plane perf harness."""
    from repro.experiments.bench import PRESETS, render_report, run_bench

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Seeded data-plane benchmarks: kernel events/sec, "
        "batched vs unbatched tuple throughput, copy-on-write checkpoint "
        "latency, and simulated recovery time.",
    )
    parser.add_argument(
        "--preset",
        default="small",
        choices=tuple(PRESETS),
        help="benchmark scale (default: small)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_dataplane.json",
        help="JSON report path (default: BENCH_dataplane.json)",
    )
    args = parser.parse_args(argv)
    report = run_bench(preset=args.preset, out=args.out)
    log = EventLog(sink=console_sink())
    log.emit("bench_report", preset=args.preset, text=render_report(report))
    log.emit("bench_written", text=f"[report written to {args.out}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the requested subcommand."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from the SIGMOD'13 operator state "
        "management paper.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig11), 'all', 'list', 'trace', or 'bench'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced parameters (seconds instead of minutes)",
    )
    args = parser.parse_args(argv)
    log = EventLog(sink=console_sink())

    if args.figure == "list":
        for name in FIGURES:
            log.emit("figure_id", text=name)
        log.emit("figure_id", text="trace")
        log.emit("figure_id", text="bench")
        return 0

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    for name in names:
        driver, paper_kwargs, quick_kwargs = FIGURES[name]
        kwargs = quick_kwargs if args.quick else paper_kwargs
        start = time.time()
        result = driver(**kwargs)
        log.emit("figure_rendered", figure=name, text=result.render())
        log.emit(
            "figure_timing",
            figure=name,
            seconds=round(time.time() - start, 1),
            text=f"[{name} regenerated in {time.time() - start:.1f}s]\n",
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
