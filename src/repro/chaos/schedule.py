"""Phase-triggered fault schedules.

Hooks :meth:`ReconfigurationEngine.on_phase_change` so a crash can be
injected precisely when a reconfiguration enters a chosen phase — e.g.
"kill the backup VM the moment CHECKPOINT_PARTITION begins" or "kill the
target VM while state is in TRANSFER".  These are the windows the paper's
protocol must survive (failures *during* a scale-out or recovery), which
interval-based injection almost never hits.

Kills are never performed synchronously inside the engine's phase
transition: the listener schedules the failure at delay 0 with
``PRIORITY_FAILURE`` so the engine finishes its own bookkeeping for the
phase entry first, then observes the crash through its normal failure
listeners on the very next event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.simulator import PRIORITY_FAILURE
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import StreamProcessingSystem
    from repro.scaling.reconfig import Reconfiguration

#: The VM hosting the instance being replaced (the "old" operator).
TARGET_SOURCE_VM = "source"
#: The freshly acquired VM the replacement instance deploys onto.
TARGET_TARGET_VM = "target"
#: The VM holding the upstream backup of the replaced slot's state.
TARGET_BACKUP_VM = "backup"


class _KillRule:
    def __init__(
        self, phase: str, target: str, op_name: str | None, once: bool
    ) -> None:
        self.phase = phase
        self.target = target
        self.op_name = op_name
        self.once = once
        self.exhausted = False


class _ChunkKillRule:
    def __init__(self, index: int, target: str, op_name: str | None) -> None:
        self.index = index
        self.target = target
        self.op_name = op_name
        self.exhausted = False


class PhaseTriggeredFaults:
    """Kills a role-resolved VM when reconfiguration enters a phase."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        self._rules: list[_KillRule] = []
        self._chunk_rules: list[_ChunkKillRule] = []
        #: (time, phase, target role, vm_id) for every kill performed.
        self.fired: list[tuple[float, str, str, int]] = []
        system.reconfig.on_phase_change(self._on_phase)
        system.reconfig.on_chunk_commit(self._on_chunk)

    def kill_on_phase(
        self,
        phase: str,
        target: str = TARGET_TARGET_VM,
        op_name: str | None = None,
        once: bool = True,
    ) -> None:
        """Arm a kill for the first (or every) entry into ``phase``.

        ``target`` is one of :data:`TARGET_SOURCE_VM`,
        :data:`TARGET_TARGET_VM`, :data:`TARGET_BACKUP_VM`; ``op_name``
        optionally restricts the rule to reconfigurations of one
        operator.
        """
        if target not in (TARGET_SOURCE_VM, TARGET_TARGET_VM, TARGET_BACKUP_VM):
            raise ValueError(f"unknown kill target: {target!r}")
        self._rules.append(_KillRule(phase, target, op_name, once))

    def kill_on_chunk_commit(
        self,
        index: int,
        target: str = TARGET_TARGET_VM,
        op_name: str | None = None,
    ) -> None:
        """Arm a kill for the commit of fluid chunk ``index`` (0-based).

        The kill lands *mid-migration*: the chunk's routing swap has
        committed, later chunks have not started.  ``target`` resolves
        the same roles as :meth:`kill_on_phase` — the live source being
        drained, the first target VM, or the backup VM holding the
        frozen pre-migration checkpoint and the per-chunk commit
        backups.  Fires once.
        """
        if target not in (TARGET_SOURCE_VM, TARGET_TARGET_VM, TARGET_BACKUP_VM):
            raise ValueError(f"unknown kill target: {target!r}")
        self._chunk_rules.append(_ChunkKillRule(index, target, op_name))

    # ------------------------------------------------------------ internals

    def _on_phase(self, op: "Reconfiguration", phase: str) -> None:
        for rule in self._rules:
            if rule.exhausted or rule.phase != phase:
                continue
            if rule.op_name is not None and op.plan.op_name != rule.op_name:
                continue
            vm = self._resolve(op, rule.target)
            if vm is None or not vm.alive:
                continue
            if rule.once:
                rule.exhausted = True
            self.fired.append((self.system.sim.now, phase, rule.target, vm.vm_id))
            # Delay-0 failure event: the crash lands after the engine
            # completes this phase entry, not inside it.
            self.system.sim.schedule(
                0.0,
                self.system.injector.fail_now,
                vm,
                priority=PRIORITY_FAILURE,
            )

    def _on_chunk(self, op: "Reconfiguration", index: int, total: int) -> None:
        for rule in self._chunk_rules:
            if rule.exhausted or rule.index != index:
                continue
            if rule.op_name is not None and op.plan.op_name != rule.op_name:
                continue
            vm = self._resolve(op, rule.target)
            if vm is None or not vm.alive:
                continue
            rule.exhausted = True
            self.fired.append(
                (self.system.sim.now, f"chunk:{index}/{total}", rule.target, vm.vm_id)
            )
            # As for phase kills: the crash lands after the commit's own
            # bookkeeping (including the drain arm) completes.
            self.system.sim.schedule(
                0.0,
                self.system.injector.fail_now,
                vm,
                priority=PRIORITY_FAILURE,
            )

    def _resolve(
        self, op: "Reconfiguration", target: str
    ) -> VirtualMachine | None:
        system = self.system
        if target == TARGET_SOURCE_VM:
            instance = system.instances.get(op.old_slot.uid)
            return instance.vm if instance is not None else None
        if target == TARGET_TARGET_VM:
            if op.vms:
                return op.vms[0]
            if op.instances:
                return op.instances[0].vm
            return None
        if op.backup_vm is not None:
            return op.backup_vm
        return system.backup_locations.get(op.old_slot.uid)


class GrayFailureSchedule:
    """Timed gray failures: the process is up but looks dead (or slow).

    Two modes, both sub-crash:

    * :meth:`mute_heartbeats_at` — the instance keeps processing but its
      heartbeats stop reaching the monitor for a window ("alive but not
      heartbeating": a wedged emitter thread, an asymmetric link).  The
      phi detector accrues suspicion exactly as for a crash, so a long
      enough mute manufactures a false detection and a zombie primary.
    * :meth:`straggle_at` — the VM keeps its heartbeats but runs at a
      fraction of its CPU capacity for a window (the classic 10 %-CPU
      gray node).  Detection must *not* fire: heartbeat emission is a
      timer, not a data-plane product, so phi stays low while throughput
      collapses — the scenario that separates liveness from health.
    """

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        #: (time, mode, detail) for every gray failure armed.
        self.armed: list[tuple[float, str, str]] = []

    def mute_heartbeats_at(
        self, op_name: str, time: float, duration: float
    ) -> None:
        """Silence ``op_name``'s first slot's heartbeats for ``duration``.

        Requires the phi detector (``fault.detector="phi"``); resolved
        lazily at fire time so the slot's then-current uid is muted.
        """
        self.armed.append((time, "mute", f"{op_name} for {duration}s"))
        self.system.sim.schedule_at(time, self._mute, op_name, duration)

    def straggle_at(
        self,
        op_name: str,
        time: float,
        factor: float = 0.1,
        duration: float | None = None,
    ) -> None:
        """Degrade ``op_name``'s VM to ``factor`` CPU at ``time``."""
        self.armed.append((time, "straggle", f"{op_name} at {factor:g}x"))
        self.system.injector.straggle_vm_at(
            lambda: self.system.vm_of(op_name),
            time,
            factor=factor,
            duration=duration,
        )

    def _mute(self, op_name: str, duration: float) -> None:
        system = self.system
        detector = system.phi_detector
        if detector is None:
            return
        slots = system.query_manager.slots_of(op_name)
        if not slots:
            return
        detector.mute(slots[0].uid, duration)
