"""End-to-end invariant checker.

After a chaos run quiesces, :class:`InvariantChecker` audits the system
against the guarantees the paper's protocol claims:

* **quiesced engine** — no reconfiguration left in flight, no slot or
  operator still marked busy, no trim lock held;
* **coherent timelines** — every recorded :class:`PhaseTimeline` is
  closed with an outcome and its phase spans are contiguous (no gap or
  overlap between a span's end and the next span's start);
* **no leaked VMs** — every running VM billed by the provider is either
  sitting in the pool, hosting a live registered operator instance, or
  hosting an active-replication replica.  Anything else is a VM the
  reconfiguration machinery acquired and forgot;
* **trimmed buffers** — upstream output buffers hold no tuple already
  covered by the destination's latest surviving backup (Algorithm 1's
  trim discipline).  This check assumes the run ended with a settle
  period of at least one checkpoint interval after the last failure, so
  every slot stored a post-failure checkpoint with no trim lock held;
* **network accounting** — per-edge ``delivered + dropped`` never
  exceeds ``sent + duplicated``;
* **exactly-once sink output** — via :func:`compare_windows`, the chaos
  run's windowed sink results equal a failure-free golden run's over all
  windows that both runs must have finalised (no lost and no duplicated
  contributions survive at the result level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.sink import WindowedResultCollector
    from repro.runtime.system import StreamProcessingSystem


@dataclass
class Violation:
    """One invariant breach, with enough detail to debug the seed."""

    name: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.name}] {self.detail}"


class InvariantChecker:
    """Audits a quiesced system for protocol-invariant violations."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    def check(self) -> list[Violation]:
        """Run every structural invariant; returns all violations found."""
        violations: list[Violation] = []
        violations += self.check_engine_quiesced()
        violations += self.check_timelines()
        violations += self.check_no_leaked_vms()
        violations += self.check_buffers_trimmed()
        violations += self.check_network_accounting()
        return violations

    # ------------------------------------------------------------- checks

    def check_engine_quiesced(self) -> list[Violation]:
        """No reconfiguration state may survive the run."""
        violations: list[Violation] = []
        engine = self.system.reconfig
        if engine is None:
            return violations
        for op in engine.active_operations():
            violations.append(
                Violation("engine_quiesced", f"operation still active: {op!r}")
            )
        if engine._busy_slots:
            violations.append(
                Violation(
                    "engine_quiesced",
                    f"busy slots never cleared: {dict(engine._busy_slots)}",
                )
            )
        if engine._busy_merges:
            violations.append(
                Violation(
                    "engine_quiesced",
                    f"busy merges never cleared: {set(engine._busy_merges)}",
                )
            )
        if self.system.trim_locks:
            violations.append(
                Violation(
                    "engine_quiesced",
                    f"trim locks still held: {set(self.system.trim_locks)}",
                )
            )
        return violations

    def check_timelines(self) -> list[Violation]:
        """Every timeline must be closed and contiguous."""
        violations: list[Violation] = []
        for timeline in self.system.metrics.timelines():
            label = f"{timeline.kind}/{timeline.op_name}"
            if timeline.outcome is None:
                violations.append(
                    Violation("timelines", f"{label}: never closed")
                )
            rows = timeline.as_rows()
            for i, (phase, _start, end) in enumerate(rows):
                if end is None:
                    if i != len(rows) - 1 or timeline.outcome is not None:
                        violations.append(
                            Violation(
                                "timelines",
                                f"{label}: open span {phase!r} at index {i}",
                            )
                        )
                    continue
                if i + 1 < len(rows) and rows[i + 1][1] != end:
                    violations.append(
                        Violation(
                            "timelines",
                            f"{label}: gap between {phase!r} (ends {end}) and "
                            f"{rows[i + 1][0]!r} (starts {rows[i + 1][1]})",
                        )
                    )
        return violations

    def check_no_leaked_vms(self) -> list[Violation]:
        """Every running billed VM must be pooled or hosting something."""
        system = self.system
        violations: list[Violation] = []
        pooled = {id(vm) for vm in system.pool._available}
        occupied = {
            id(inst.vm) for inst in system.instances.values() if inst.alive
        }
        if system.replication is not None:
            occupied |= {
                id(replica.vm)
                for replica in system.replication.replicas.values()
                if replica.alive
            }
        for vm in system.provider.vms:
            if not vm.alive:
                continue
            if id(vm) in pooled or id(vm) in occupied:
                continue
            violations.append(
                Violation(
                    "vm_leak",
                    f"VM {vm.vm_id} is running but neither pooled nor "
                    f"hosting a live instance (occupant: {vm.occupant!r})",
                )
            )
        return violations

    def check_buffers_trimmed(self) -> list[Violation]:
        """No buffered tuple already covered by the dest's latest backup."""
        system = self.system
        violations: list[Violation] = []
        for instance in system.instances.values():
            if not instance.alive:
                continue
            for buf in instance.buffers.values():
                for dest_uid in buf.destinations():
                    ckpt = system.backup_of(dest_uid)
                    if ckpt is None:
                        continue
                    stale = sum(
                        1
                        for tup in buf.tuples_for(dest_uid)
                        if tup.ts <= ckpt.positions.get(tup.slot, -1)
                    )
                    if stale:
                        violations.append(
                            Violation(
                                "buffers_trimmed",
                                f"{instance.slot!r} holds {stale} tuple(s) "
                                f"toward slot {dest_uid} already covered by "
                                f"its backup (seq {ckpt.seq})",
                            )
                        )
        return violations

    def check_network_accounting(self) -> list[Violation]:
        """Per-edge conservation: delivered + dropped <= sent + duplicated."""
        violations: list[Violation] = []
        for edge, stats in self.system.network.edge_stats.items():
            if stats.delivered + stats.dropped > stats.sent + stats.duplicated:
                violations.append(
                    Violation(
                        "network_accounting",
                        f"edge {edge}: delivered={stats.delivered} "
                        f"dropped={stats.dropped} exceeds sent={stats.sent} "
                        f"+ duplicated={stats.duplicated}",
                    )
                )
        return violations


def eligible_windows(
    duration: float, window: float, grace: float, margin: float = 5.0
) -> list[int]:
    """Window indices both a golden and a chaos run must have finalised.

    A tumbling window ``idx`` covers ``[idx*window, (idx+1)*window)`` in
    event time and is flushed once the grace period passes; ``margin``
    seconds of slack absorb queueing and recovery delays near the end of
    the run.
    """
    result = []
    idx = 0
    while (idx + 1) * window + grace + margin <= duration:
        result.append(idx)
        idx += 1
    return result


def compare_windows(
    golden: "WindowedResultCollector",
    chaos: "WindowedResultCollector",
    windows: Iterable[int],
) -> list[Violation]:
    """Exactly-once oracle: per-window key→count equality vs the golden run.

    A missing key or lower count means sink output was lost; an extra key
    or higher count means a duplicate contribution survived the filters.
    """
    violations: list[Violation] = []
    for window in windows:
        expected: dict[Any, Any] = golden.counts_for_window(window)
        actual: dict[Any, Any] = chaos.counts_for_window(window)
        if expected == actual:
            continue
        missing = {
            key: value
            for key, value in expected.items()
            if actual.get(key) != value
        }
        extra = {
            key: value
            for key, value in actual.items()
            if key not in expected
        }
        detail = f"window {window}: "
        if missing:
            sample = dict(list(missing.items())[:3])
            detail += (
                f"{len(missing)} key(s) lost or mismatched "
                f"(e.g. {sample}, got "
                f"{ {k: actual.get(k) for k in sample} }) "
            )
        if extra:
            sample = dict(list(extra.items())[:3])
            detail += f"{len(extra)} unexpected key(s) (e.g. {sample})"
        violations.append(Violation("sink_output", detail.strip()))
    return violations
