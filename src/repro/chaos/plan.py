"""Network fault plans.

A :class:`NetworkFaultPlan` is installed into a
:class:`~repro.sim.network.Network` via ``install_fault_plan`` and is
consulted once per *data* message send (control traffic — checkpoints,
state transfer, replica snapshots — is never perturbed).  The network
models a reliable transport (TCP-like) over a faulty physical layer, so
each fault maps onto an observable, recoverable effect:

* **drop** — the first transmission is lost and retransmitted; the
  message arrives ``retransmit_delay`` late instead of disappearing.
  True message loss only happens through VM death, which is what the
  upstream-backup/replay path is designed for.
* **reorder** — the message is held for ``reorder_hold``; the network's
  per-edge FIFO clamp then releases it in order (head-of-line blocking),
  so later messages queue behind it exactly like a TCP receive window.
* **delay spike** — as reorder, with the larger ``delay_spike``
  magnitude; models transient congestion.
* **duplicate** — the message is delivered *twice*: once in order and a
  second copy ``duplicate_lag`` later.  The second copy reaches the
  application, exercising the timestamp duplicate filter
  (:meth:`OperatorInstance.receive`).

Rules are scoped by edge (source/destination VM ids) and by a time
window, so a plan can target e.g. "the splitter→counter edge during the
first minute".  All randomness comes from a dedicated ``random.Random``
seeded at construction: the same plan seed yields the same perturbation
sequence.  Each applicable rule consumes exactly four RNG draws per
message regardless of which faults fire, keeping the stream stable when
probabilities change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

EdgeKey = tuple[int | None, int]


@dataclass
class FaultRule:
    """One scoped source of network faults.

    Probabilities are per data message; magnitudes are seconds of extra
    delay added on top of the modelled transfer time.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    retransmit_delay: float = 0.05
    reorder_hold: float = 0.02
    delay_spike: float = 0.2
    #: restrict to exact (src_vm_id, dst_vm_id) edges; empty = all edges.
    edges: frozenset[EdgeKey] = field(default_factory=frozenset)
    #: restrict by source VM id / destination VM id; empty = no restriction.
    src_vms: frozenset[int] = field(default_factory=frozenset)
    dst_vms: frozenset[int] = field(default_factory=frozenset)
    #: active [start, end) simulation-time window; ``None`` = always.
    window: tuple[float, float] | None = None

    def applies(self, edge: EdgeKey, now: float) -> bool:
        """Whether this rule is in scope for ``edge`` at time ``now``."""
        if self.window is not None:
            start, end = self.window
            if not (start <= now < end):
                return False
        if self.edges and edge not in self.edges:
            return False
        src, dst = edge
        if self.src_vms and src not in self.src_vms:
            return False
        if self.dst_vms and dst not in self.dst_vms:
            return False
        return True


class NetworkFaultPlan:
    """A seeded collection of :class:`FaultRule`\\ s.

    ``draw(edge, now)`` returns ``(extra_delay, duplicate)``: the total
    extra latency injected into this message and whether a duplicate
    copy should also be delivered.
    """

    def __init__(
        self,
        rules: list[FaultRule],
        seed: int = 0,
        duplicate_lag: float = 0.005,
    ) -> None:
        self.rules = list(rules)
        self.seed = seed
        #: how far behind the in-order delivery the duplicate copy lands.
        self.duplicate_lag = duplicate_lag
        self._rng = random.Random(seed)
        self.drops_injected = 0
        self.duplicates_injected = 0
        self.reorders_injected = 0
        self.delay_spikes_injected = 0

    def draw(self, edge: EdgeKey, now: float) -> tuple[float, bool]:
        """Sample the faults hitting one data message on ``edge``."""
        extra = 0.0
        duplicate = False
        for rule in self.rules:
            if not rule.applies(edge, now):
                continue
            # Always burn four draws so the random stream is independent
            # of which faults actually fire.
            r_drop = self._rng.random()
            r_dup = self._rng.random()
            r_reorder = self._rng.random()
            r_delay = self._rng.random()
            if r_drop < rule.drop_rate:
                self.drops_injected += 1
                extra += rule.retransmit_delay
            if r_dup < rule.duplicate_rate:
                self.duplicates_injected += 1
                duplicate = True
            if r_reorder < rule.reorder_rate:
                self.reorders_injected += 1
                extra += rule.reorder_hold
            if r_delay < rule.delay_rate:
                self.delay_spikes_injected += 1
                extra += rule.delay_spike
        return extra, duplicate

    def faults_injected(self) -> int:
        """Total number of individual faults injected so far."""
        return (
            self.drops_injected
            + self.duplicates_injected
            + self.reorders_injected
            + self.delay_spikes_injected
        )
