"""Network fault plans.

A :class:`NetworkFaultPlan` is installed into a
:class:`~repro.sim.network.Network` via ``install_fault_plan`` and is
consulted once per message send.  The network models a reliable
transport (TCP-like) over a faulty physical layer, so each per-message
fault maps onto an observable, recoverable effect:

* **drop** — the first transmission is lost and retransmitted; the
  message arrives ``retransmit_delay`` late instead of disappearing.
  True message loss only happens through VM death, which is what the
  upstream-backup/replay path is designed for.
* **reorder** — the message is held for ``reorder_hold``; the network's
  per-edge FIFO clamp then releases it in order (head-of-line blocking),
  so later messages queue behind it exactly like a TCP receive window.
* **delay spike** — as reorder, with the larger ``delay_spike``
  magnitude; models transient congestion.
* **duplicate** — the message is delivered *twice*: once in order and a
  second copy ``duplicate_lag`` later.  The second copy reaches the
  application, exercising the timestamp duplicate filter
  (:meth:`OperatorInstance.receive`).

Traffic classes
---------------
Each :class:`FaultRule` names the message kinds it may perturb through
``kinds``.  The default is ``{"data"}`` — data-plane tuples only, with
control traffic (checkpoints, state transfer, replica snapshots)
modelling an already-reliable RPC layer, exactly the pre-partition
behaviour.  A rule can opt into ``"heartbeat"`` (and, for completeness,
``"control"``/``"migration"``) to perturb the failure detector's input.

:class:`PartitionRule` is stronger: it severs *all* links between two
VM sets for a time window, regardless of traffic class.  Because the
transport is reliable, data/control/migration messages crossing a
partition are *held* and released (in per-edge FIFO order) when the
partition heals — TCP retransmitting into a black hole until
connectivity returns.  Heartbeats are timeliness signals, not state:
a heartbeat crossing a partition is **dropped outright** (a late
heartbeat is a missed heartbeat), which is what drives the phi
detector's false suspicions.

Rules are scoped by edge (source/destination VM ids) and by a time
window, so a plan can target e.g. "the splitter→counter edge during the
first minute".  All randomness comes from a dedicated ``random.Random``
seeded at construction: the same plan seed yields the same perturbation
sequence.  Each applicable rule consumes exactly four RNG draws per
message regardless of which faults fire, keeping the stream stable when
probabilities change; partition checks consume no randomness at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

EdgeKey = tuple[int | None, int]

#: Message kinds a rule may perturb (mirrors repro.sim.network constants;
#: duplicated here to keep the chaos layer import-light).
TRAFFIC_DATA = "data"
TRAFFIC_CONTROL = "control"
TRAFFIC_MIGRATION = "migration"
TRAFFIC_HEARTBEAT = "heartbeat"


@dataclass
class FaultRule:
    """One scoped source of per-message network faults.

    Probabilities are per message of a matching traffic class;
    magnitudes are seconds of extra delay added on top of the modelled
    transfer time.  ``kinds`` declares exactly which traffic classes the
    rule can perturb — data tuples by default; heartbeats only when a
    plan opts in; control/state-transfer messages keep their ordering
    and reliability guarantees even when perturbed (delay/duplication
    only — the transport never silently loses them).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    retransmit_delay: float = 0.05
    reorder_hold: float = 0.02
    delay_spike: float = 0.2
    #: restrict to exact (src_vm_id, dst_vm_id) edges; empty = all edges.
    edges: frozenset[EdgeKey] = field(default_factory=frozenset)
    #: restrict by source VM id / destination VM id; empty = no restriction.
    src_vms: frozenset[int] = field(default_factory=frozenset)
    dst_vms: frozenset[int] = field(default_factory=frozenset)
    #: active [start, end) simulation-time window; ``None`` = always.
    window: tuple[float, float] | None = None
    #: traffic classes this rule may perturb.
    kinds: frozenset[str] = frozenset({TRAFFIC_DATA})

    def applies(self, edge: EdgeKey, now: float, kind: str = TRAFFIC_DATA) -> bool:
        """Whether this rule is in scope for ``edge``/``kind`` at ``now``."""
        if kind not in self.kinds:
            return False
        if self.window is not None:
            start, end = self.window
            if not (start <= now < end):
                return False
        if self.edges and edge not in self.edges:
            return False
        src, dst = edge
        if self.src_vms and src not in self.src_vms:
            return False
        if self.dst_vms and dst not in self.dst_vms:
            return False
        return True


@dataclass
class PartitionRule:
    """Sever all links between two VM sets for a time window.

    Applies to *every* traffic class crossing the cut, in both
    directions.  Messages from a VM in neither set are unaffected.
    """

    a_vms: frozenset[int]
    b_vms: frozenset[int]
    #: active [start, end) simulation-time window; the partition heals
    #: at ``end``.
    window: tuple[float, float]

    def severs(self, edge: EdgeKey, now: float) -> bool:
        """Whether ``edge`` crosses the cut while the partition holds."""
        start, end = self.window
        if not (start <= now < end):
            return False
        src, dst = edge
        if src is None:
            return False  # external feeds originate outside the cluster
        return (src in self.a_vms and dst in self.b_vms) or (
            src in self.b_vms and dst in self.a_vms
        )

    @property
    def heals_at(self) -> float:
        return self.window[1]


class NetworkFaultPlan:
    """A seeded collection of :class:`FaultRule`\\ s and partitions.

    ``draw(edge, now, kind)`` returns ``(extra_delay, duplicate)``: the
    total extra latency injected into this message and whether a
    duplicate copy should also be delivered.  ``partition_verdict``
    answers, without consuming randomness, whether a message is severed
    by a partition — and if so whether it is held until heal (reliable
    classes) or dropped (heartbeats).
    """

    def __init__(
        self,
        rules: list[FaultRule],
        seed: int = 0,
        duplicate_lag: float = 0.005,
        partitions: list[PartitionRule] | None = None,
    ) -> None:
        self.rules = list(rules)
        self.partitions = list(partitions or [])
        self.seed = seed
        #: how far behind the in-order delivery the duplicate copy lands.
        self.duplicate_lag = duplicate_lag
        self._rng = random.Random(seed)
        self.drops_injected = 0
        self.duplicates_injected = 0
        self.reorders_injected = 0
        self.delay_spikes_injected = 0
        #: heartbeats swallowed by an active partition.
        self.partition_drops = 0
        #: reliable-class messages held back until a partition healed.
        self.partition_holds = 0

    def perturbs_kind(self, kind: str) -> bool:
        """Whether any per-message rule can touch this traffic class.

        Partitions are checked separately (``partition_verdict``): a
        message already held by a partition takes the perturbed path
        regardless of rule coverage.
        """
        return any(kind in rule.kinds for rule in self.rules)

    def partition_verdict(
        self, edge: EdgeKey, now: float, kind: str
    ) -> float | None:
        """Partition effect on one message, or 0.0 when unaffected.

        Returns ``None`` when the message must be dropped (a heartbeat
        crossing an active cut), otherwise the extra delay that holds a
        reliable-class message until the last severing partition heals.
        Consumes no randomness.
        """
        release = now
        for partition in self.partitions:
            if partition.severs(edge, now):
                if kind == TRAFFIC_HEARTBEAT:
                    self.partition_drops += 1
                    return None
                release = max(release, partition.heals_at)
        if release > now:
            self.partition_holds += 1
        return release - now

    def draw(
        self, edge: EdgeKey, now: float, kind: str = TRAFFIC_DATA
    ) -> tuple[float, bool]:
        """Sample the per-message faults hitting one message on ``edge``."""
        extra, duplicate, _lost = self.draw_full(edge, now, kind)
        return extra, duplicate

    def draw_full(
        self, edge: EdgeKey, now: float, kind: str = TRAFFIC_DATA
    ) -> tuple[float, bool, bool]:
        """Sample faults for one message: ``(extra_delay, duplicate, lost)``.

        ``lost`` can only be true for heartbeats: they are fire-and-forget
        timeliness signals, so a drop fault loses them outright instead of
        surfacing as retransmit latency the way reliable classes do.
        """
        extra = 0.0
        duplicate = False
        lost = False
        for rule in self.rules:
            if not rule.applies(edge, now, kind):
                continue
            # Always burn four draws so the random stream is independent
            # of which faults actually fire.
            r_drop = self._rng.random()
            r_dup = self._rng.random()
            r_reorder = self._rng.random()
            r_delay = self._rng.random()
            if r_drop < rule.drop_rate:
                self.drops_injected += 1
                if kind == TRAFFIC_HEARTBEAT:
                    lost = True
                else:
                    extra += rule.retransmit_delay
            if r_dup < rule.duplicate_rate:
                self.duplicates_injected += 1
                duplicate = True
            if r_reorder < rule.reorder_rate:
                self.reorders_injected += 1
                extra += rule.reorder_hold
            if r_delay < rule.delay_rate:
                self.delay_spikes_injected += 1
                extra += rule.delay_spike
        return extra, duplicate, lost

    def faults_injected(self) -> int:
        """Total number of individual faults injected so far."""
        return (
            self.drops_injected
            + self.duplicates_injected
            + self.reorders_injected
            + self.delay_spikes_injected
            + self.partition_drops
            + self.partition_holds
        )
