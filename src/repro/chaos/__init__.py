"""Chaos engineering for the simulated SPS.

The paper's evaluation only injects clean crash-stop failures between
reconfigurations over a lossless network.  This package supplies the
adversarial cases:

* :mod:`repro.chaos.plan` — pluggable network fault plans (message loss,
  duplication, re-ordering, latency spikes) installed into
  :class:`~repro.sim.network.Network`;
* :mod:`repro.chaos.schedule` — phase-triggered crash schedules that kill
  the source, target or backup VM exactly when a reconfiguration enters a
  chosen phase;
* :mod:`repro.chaos.invariants` — the correctness oracle checked after a
  chaos run (exactly-once sink output vs a golden run, no leaked VMs,
  trimmed buffers, contiguous phase timelines, quiesced engine);
* :mod:`repro.chaos.runner` — seed sweeps over randomized fault
  schedules, reporting survival and violation counts.
"""

from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.plan import FaultRule, NetworkFaultPlan
from repro.chaos.runner import ChaosRunner, ChaosRunResult
from repro.chaos.schedule import (
    TARGET_BACKUP_VM,
    TARGET_SOURCE_VM,
    TARGET_TARGET_VM,
    PhaseTriggeredFaults,
)

__all__ = [
    "ChaosRunner",
    "ChaosRunResult",
    "FaultRule",
    "InvariantChecker",
    "NetworkFaultPlan",
    "PhaseTriggeredFaults",
    "TARGET_BACKUP_VM",
    "TARGET_SOURCE_VM",
    "TARGET_TARGET_VM",
    "Violation",
]
