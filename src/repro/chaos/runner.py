"""Chaos experiment runner.

One :class:`ChaosRunner` owns a workload configuration (word count by
default, LRB optionally) and runs it three ways:

* **golden** — no faults at all; its sink output is the exactly-once
  reference.  The workload RNG derives from ``config.seed``, which the
  runner keeps *fixed* across every run of a sweep, so one golden run
  serves all chaos seeds and any sink difference is attributable to the
  injected faults alone.
* **run_seed(seed)** — network faults (loss, duplication, re-ordering,
  delay spikes) plus Poisson crash-stop failures of worker VMs, all
  derived from the single chaos ``seed``.  A violating seed reproduces
  from the seed alone.
* **run_phase_kill(phase, target)** — a deterministic schedule: the
  primary VM is killed to trigger a recovery, and a second kill fires
  exactly when the reconfiguration enters ``phase``.

After each chaos run the :class:`InvariantChecker` audits the system and
the sink output is compared window-by-window against the golden run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.chaos.invariants import (
    InvariantChecker,
    Violation,
    compare_windows,
    eligible_windows,
)
from repro.chaos.plan import FaultRule, NetworkFaultPlan, PartitionRule
from repro.chaos.schedule import GrayFailureSchedule, PhaseTriggeredFaults
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.runtime.system import StreamProcessingSystem


@dataclass
class ChaosRunResult:
    """Outcome of one chaos run."""

    seed: int
    violations: list[Violation] = field(default_factory=list)
    failures: int = 0
    stragglers: int = 0
    faults: int = 0
    recoveries: int = 0
    aborts: int = 0
    results_received: int = 0
    #: Phi-detector detections that condemned a live instance.
    false_suspicions: int = 0
    #: Superseded primaries that self-terminated on a fence notice.
    zombies_fenced: int = 0
    #: JSONL trace dumped for this run (violating seeds only).
    trace_path: str | None = None

    @property
    def survived(self) -> bool:
        """Whether the run upheld every invariant."""
        return not self.violations

    def describe(self) -> str:
        """One line per violation, or an OK summary."""
        if self.survived:
            extra = ""
            if self.false_suspicions or self.zombies_fenced:
                extra = (
                    f", {self.false_suspicions} false suspicions, "
                    f"{self.zombies_fenced} zombies fenced"
                )
            return (
                f"seed {self.seed}: OK "
                f"({self.failures} failures, {self.faults} network faults, "
                f"{self.recoveries} recoveries, {self.aborts} aborts{extra})"
            )
        lines = [f"seed {self.seed}: {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations]
        if self.trace_path is not None:
            lines.append(f"  trace: {self.trace_path}")
        return "\n".join(lines)


class ChaosRunner:
    """Sweeps randomized fault schedules over one workload."""

    def __init__(
        self,
        workload: str = "wordcount",
        rate: float = 200.0,
        duration: float = 150.0,
        window: float = 15.0,
        checkpoint_interval: float = 2.0,
        checkpoint_mode: str = "phase",
        settle: float = 25.0,
        workload_seed: int = 0,
        recovery_parallelism: int = 1,
        drop_rate: float = 0.02,
        duplicate_rate: float = 0.01,
        reorder_rate: float = 0.02,
        delay_rate: float = 0.005,
        mtbf: float = 60.0,
        margin: float = 10.0,
        lrb_xways: int = 1,
        lrb_tolerance: float = 0.0,
        trace_dir: str | None = None,
        batching: bool = False,
        columnar: bool = False,
        flow: bool = False,
        migration_chunks: int = 1,
        state_backend: str | None = None,
        max_hot_entries: int = 100_000,
        detector: str = "omniscient",
    ) -> None:
        if workload not in ("wordcount", "lrb"):
            raise ReproError(f"unknown chaos workload: {workload!r}")
        self.workload = workload
        #: When set, any violating run dumps its full causal trace
        #: (spans + event log) as JSONL under this directory, named by
        #: workload and seed so the run reproduces from the seed alone.
        self.trace_dir = trace_dir
        self.rate = rate
        self.duration = duration
        self.window = window
        self.checkpoint_interval = checkpoint_interval
        #: Checkpoint coordination for the whole sweep (golden included):
        #: "phase" (per-instance daemons) or "barrier" (epoch-aligned
        #: cuts with incremental deltas) — see CheckpointConfig.mode.
        self.checkpoint_mode = checkpoint_mode
        #: Quiet tail after the last injected fault: long enough for every
        #: recovery to finish and for each slot to store a fresh,
        #: un-trim-locked checkpoint (the buffers_trimmed oracle needs it).
        self.settle = settle
        self.workload_seed = workload_seed
        self.recovery_parallelism = recovery_parallelism
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.delay_rate = delay_rate
        self.mtbf = mtbf
        self.margin = margin
        self.lrb_xways = lrb_xways
        self.lrb_tolerance = lrb_tolerance
        #: Run the whole sweep (golden included) on the batched data plane.
        #: Columnar blocks and credit flow control both ride batching, so
        #: either flag implies it.
        self.batching = batching or columnar or flow
        #: Ship batches as columnar TupleBlocks (vectorized kernels).
        self.columnar = columnar
        #: Credit-based backpressure, closed-loop: source shedding is
        #: disabled so the golden-equivalence oracle sees every tuple —
        #: backpressure defers output in pending batches instead of
        #: dropping input.
        self.flow = flow
        #: Scale-outs migrate state fluidly in up to this many chunks.
        self.migration_chunks = migration_chunks
        #: State backend kind for the whole sweep (golden included):
        #: None/"memory", "spill" or "external" — see StateBackendConfig.
        self.state_backend = state_backend
        self.max_hot_entries = max_hot_entries
        #: Failure detector for the chaos runs: "omniscient" (instant,
        #: infallible) or "phi" (message heartbeats, can be fooled by
        #: partitions/mutes into false suspicions).  The golden run always
        #: uses the omniscient detector — it sees no faults, and keeping
        #: it heartbeat-free keeps the reference stream canonical.
        self.detector = detector
        self._golden = None

    # ------------------------------------------------------------- building

    def _config(self, detector: str | None = None) -> SystemConfig:
        config = SystemConfig()
        config.seed = self.workload_seed
        config.scaling.enabled = False
        config.checkpoint.interval = self.checkpoint_interval
        config.checkpoint.mode = self.checkpoint_mode
        config.checkpoint.stagger = True
        config.fault.recovery_parallelism = self.recovery_parallelism
        config.fault.detector = detector if detector is not None else self.detector
        # Chaos runs recover often; a deep pool with fast refills keeps VM
        # acquisition from dominating every schedule.
        config.cloud.pool_size = 4
        config.cloud.provisioning_delay = 12.0
        config.batching.enabled = self.batching
        config.batching.columnar = self.columnar
        if self.flow:
            config.flow.enabled = True
            config.flow.shed_at_source = False
        config.migration.max_chunks = self.migration_chunks
        if self.state_backend is not None:
            config.state_backend.kind = self.state_backend
            config.state_backend.max_hot_entries = self.max_hot_entries
        return config

    def _build(self, detector: str | None = None):
        if self.workload == "lrb":
            from repro.workloads.lrb.query import build_lrb_query

            query = build_lrb_query(self.lrb_xways, self.duration)
        else:
            from repro.workloads.wordcount import build_word_count_query

            query = build_word_count_query(
                rate=self.rate,
                window=self.window,
                vocabulary_size=500,
                words_per_sentence=6,
                quantum=0.1,
            )
        system = StreamProcessingSystem(self._config(detector))
        system.deploy(query.graph, generators=query.generators)
        return system, query

    def _fault_plan(self, seed: int) -> NetworkFaultPlan:
        rule = FaultRule(
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            delay_rate=self.delay_rate,
            # Keep injected delays well inside the windows' grace period,
            # so delayed tuples still land in open windows.
            retransmit_delay=0.05,
            reorder_hold=0.02,
            delay_spike=0.2,
            window=(0.0, self.duration - self.settle),
        )
        return NetworkFaultPlan([rule], seed=seed)

    # --------------------------------------------------------------- golden

    def golden(self):
        """The failure-free reference run (cached per runner).

        Always runs with the omniscient detector: the reference sees no
        faults, so a detector choice could only perturb it, never inform
        it.
        """
        if self._golden is None:
            system, query = self._build(detector="omniscient")
            system.run(until=self.duration)
            self._golden = (system, query)
        return self._golden

    def _oracle_windows(self) -> list[int]:
        return eligible_windows(
            self.duration, self.window, grace=10.0, margin=self.margin
        )

    def _sink_violations(self, query) -> list[Violation]:
        _golden_system, golden_query = self.golden()
        if self.workload == "lrb":
            expected = golden_query.collector.total()
            actual = query.collector.total()
            slack = self.lrb_tolerance * max(expected, 1.0)
            if abs(expected - actual) > slack:
                return [
                    Violation(
                        "sink_output",
                        f"LRB totals differ: golden={expected} chaos={actual}",
                    )
                ]
            return []
        return compare_windows(
            golden_query.collector, query.collector, self._oracle_windows()
        )

    # ----------------------------------------------------------- chaos runs

    @staticmethod
    def _fault_model_victims(system: StreamProcessingSystem):
        """Worker VMs that may crash without leaving the fault model.

        The paper's guarantee covers one failure at a time per slot: a
        slot survives losing its primary *or* its checkpoint backup, but
        not both at once (§3.3 acknowledges concurrent node failures may
        lose state).  A chaos harness validates the claimed guarantee, so
        the Poisson sampler exempts any VM that currently holds the sole
        surviving copy of some slot's state:

        * a VM storing the backup of a slot whose primary is dead (the
          recovery in flight is reading that backup), and
        * a VM hosting an instance that has not stored a checkpoint yet
          (its state exists nowhere else).

        Everything else — including VMs involved in an ongoing
        reconfiguration — is fair game.
        """
        sole_backup_vms = {
            id(vm)
            for uid, vm in system.backup_locations.items()
            if system.live_instance(uid) is None
        }
        victims = []
        for inst in system.worker_instances():
            if id(inst.vm) in sole_backup_vms:
                continue
            if system.backup_of(inst.uid) is None:
                continue
            victims.append(inst.vm)
        return victims

    def run_seed(self, seed: int) -> ChaosRunResult:
        """One fully randomized chaos run, reproducible from ``seed``."""
        system, query = self._build()
        plan = self._fault_plan(seed)
        system.network.install_fault_plan(plan)
        rng = np.random.default_rng(seed)
        system.injector.poisson_failures(
            lambda: self._fault_model_victims(system),
            mtbf=self.mtbf,
            rng=rng,
            until=self.duration - self.settle,
        )
        system.run(until=self.duration)
        return self._audit(seed, system, query, plan)

    def run_phase_kill(
        self,
        phase: str,
        target: str,
        fail_op: str | None = None,
        fail_at: float = 45.0,
        seed: int = 0,
    ) -> ChaosRunResult:
        """Deterministic mid-reconfiguration kill.

        Kills the ``fail_op`` primary VM at ``fail_at`` to trigger a
        recovery, then kills the ``target``-role VM the moment that
        reconfiguration enters ``phase``.
        """
        if fail_op is None:
            fail_op = "counter" if self.workload == "wordcount" else "toll_calc"
        system, query = self._build()
        schedule = PhaseTriggeredFaults(system)
        schedule.kill_on_phase(phase, target=target, op_name=fail_op)
        system.injector.fail_target_at(
            lambda: system.vm_of(fail_op), fail_at
        )
        system.run(until=self.duration)
        result = self._audit(seed, system, query, plan=None)
        if not schedule.fired:
            result.violations.append(
                Violation(
                    "phase_kill",
                    f"schedule never fired: no reconfiguration of "
                    f"{fail_op!r} entered {phase!r}",
                )
            )
        return result

    def run_scale_out_kill(
        self,
        phase: str,
        target: str,
        op_name: str | None = None,
        scale_at: float = 45.0,
        parallelism: int = 2,
        seed: int = 0,
    ) -> ChaosRunResult:
        """Deterministic mid-scale-out kill.

        Starts a scale-out of ``op_name`` (still alive) at ``scale_at``
        and kills the ``target``-role VM when that reconfiguration enters
        ``phase``.  Unlike :meth:`run_phase_kill` the operator's primary
        survives, so killing the *backup* VM stays inside the fault
        model: the engine re-checkpoints from the live primary.
        """
        if op_name is None:
            op_name = "counter" if self.workload == "wordcount" else "toll_calc"
        system, query = self._build()
        schedule = PhaseTriggeredFaults(system)
        schedule.kill_on_phase(phase, target=target, op_name=op_name)

        def start() -> None:
            slot = system.query_manager.slots_of(op_name)[0]
            system.scale_out.scale_out_slot(slot.uid, parallelism)

        system.sim.schedule_at(scale_at, start)
        system.run(until=self.duration)
        result = self._audit(seed, system, query, plan=None)
        if not schedule.fired:
            result.violations.append(
                Violation(
                    "phase_kill",
                    f"schedule never fired: no scale-out of {op_name!r} "
                    f"entered {phase!r}",
                )
            )
        return result

    def run_chunk_kill(
        self,
        chunk_index: int,
        target: str,
        op_name: str | None = None,
        scale_at: float = 45.0,
        parallelism: int = 2,
        seed: int = 0,
        network_faults: bool = True,
    ) -> ChaosRunResult:
        """Kill a role VM at the commit of one fluid migration chunk.

        Starts a chunked scale-out of ``op_name`` at ``scale_at`` and
        kills the ``target``-role VM the moment chunk ``chunk_index``
        commits — the precise window where part of the key range has
        moved and the rest is still leaving.  ``seed`` additionally
        derives a network fault plan (loss, duplication, re-ordering)
        unless ``network_faults`` is off, so every seed is a distinct
        run while the kill itself stays deterministic.
        """
        if op_name is None:
            op_name = "counter" if self.workload == "wordcount" else "toll_calc"
        system, query = self._build()
        schedule = PhaseTriggeredFaults(system)
        schedule.kill_on_chunk_commit(chunk_index, target=target, op_name=op_name)
        plan = None
        if network_faults:
            plan = self._fault_plan(seed)
            system.network.install_fault_plan(plan)

        def start() -> None:
            slot = system.query_manager.slots_of(op_name)[0]
            system.scale_out.scale_out_slot(slot.uid, parallelism)

        system.sim.schedule_at(scale_at, start)
        system.run(until=self.duration)
        result = self._audit(seed, system, query, plan=plan)
        if not schedule.fired:
            result.violations.append(
                Violation(
                    "chunk_kill",
                    f"schedule never fired: no fluid migration of "
                    f"{op_name!r} committed chunk {chunk_index}",
                )
            )
        return result

    def run_carveout_kill(
        self,
        target: str,
        op_name: str | None = None,
        carve_at: float = 45.0,
        seed: int = 0,
        network_faults: bool = True,
    ) -> ChaosRunResult:
        """Kill a role VM at the commit of a hot-key carve-out chunk.

        At ``carve_at`` picks the operator's heaviest key straight from
        its live state (deterministic: max count, ties broken by key) and
        carves its singleton interval out into a dedicated slot — the
        partial fluid migration behind hot-key elasticity.  The
        ``target``-role VM is killed the moment the carve's chunk
        commits: the hot key's routing has swapped to the new slot, the
        source has just shed the moved range from its frozen backup, and
        parked tuples are still replaying.  ``seed`` additionally derives
        a network fault plan unless ``network_faults`` is off.
        """
        from repro.core.state import KeyInterval
        from repro.core.tuples import stable_hash

        if op_name is None:
            op_name = "counter" if self.workload == "wordcount" else "toll_calc"
        system, query = self._build()
        schedule = PhaseTriggeredFaults(system)
        schedule.kill_on_chunk_commit(0, target=target, op_name=op_name)
        plan = None
        if network_faults:
            plan = self._fault_plan(seed)
            system.network.install_fault_plan(plan)

        def start() -> None:
            slot = system.query_manager.slots_of(op_name)[0]
            instance = system.live_instance(slot.uid)
            if instance is None or not instance.state:
                return
            def weight(value) -> float:
                if isinstance(value, dict):
                    return float(sum(value.values()))
                return float(value) if isinstance(value, (int, float)) else 0.0

            hot = max(
                instance.state.items(),
                key=lambda kv: (weight(kv[1]), str(kv[0])),
            )
            pos = stable_hash(hot[0])
            system.scale_out.carve_out_slot(
                slot.uid, [KeyInterval(pos, pos + 1)], reason="chaos carve"
            )

        system.sim.schedule_at(carve_at, start)
        system.run(until=self.duration)
        result = self._audit(seed, system, query, plan=plan)
        if not schedule.fired:
            result.violations.append(
                Violation(
                    "carveout_kill",
                    f"schedule never fired: no carve-out of {op_name!r} "
                    "committed a chunk",
                )
            )
        return result

    def run_last_resort_kill(
        self,
        fail_op: str | None = None,
        fail_at: float = 45.0,
        seed: int = 0,
        network_faults: bool = False,
    ) -> ChaosRunResult:
        """Kill an operator's primary VM *and* its backup VM back-to-back.

        With both the primary and every backup copy gone, a memory-backend
        run is unrecoverable by design (§3.3 scopes the guarantee to one
        failure at a time).  With the external state backend the last
        flushed cut survives in the external store, so the recovery falls
        back to the restore-of-last-resort path; the run is audited like
        any other chaos run and must additionally have taken that path
        (a ``recovery_external`` event).
        """
        if fail_op is None:
            fail_op = "counter" if self.workload == "wordcount" else "toll_calc"
        system, query = self._build()
        plan = None
        if network_faults:
            plan = self._fault_plan(seed)
            system.network.install_fault_plan(plan)
        slot_uid = system.query_manager.slots_of(fail_op)[0].uid
        system.injector.fail_target_at(lambda: system.vm_of(fail_op), fail_at)
        # The backup VM dies right behind the primary — before detection
        # (1 s) lets the recovery read the backup store.
        system.injector.fail_target_at(
            lambda: system.backup_locations.get(slot_uid), fail_at + 0.05
        )
        system.run(until=self.duration)
        result = self._audit(seed, system, query, plan=plan)
        if not system.metrics.events_of_kind("recovery_external"):
            result.violations.append(
                Violation(
                    "last_resort",
                    f"no external-tier restore happened for {fail_op!r} "
                    "(source and backup VMs were both killed)",
                )
            )
        return result

    def run_epoch_kill(
        self, seed: int, network_faults: bool = True
    ) -> ChaosRunResult:
        """Kill a worker VM mid-epoch under barrier checkpointing.

        Requires ``checkpoint_mode="barrier"``.  The kill lands a few
        (seeded) milliseconds after a barrier injection boundary — while
        barriers are in flight, inputs are aligning, or the epoch cut is
        being serialised — so the in-flight epoch is lost and recovery
        must fall back to the last *complete* epoch's cuts.  ``seed``
        additionally derives a network fault plan (loss, duplication,
        re-ordering) unless ``network_faults`` is off.  The audit is the
        standard exactly-once one: the sink output must match the golden
        run window for window.
        """
        import random as _random

        if self.checkpoint_mode != "barrier":
            raise ReproError(
                "run_epoch_kill requires checkpoint_mode='barrier'"
            )
        system, query = self._build()
        plan = None
        if network_faults:
            plan = self._fault_plan(seed)
            system.network.install_fault_plan(plan)
        rng = _random.Random(seed)
        # Pick a barrier boundary well inside the chaos window, then a
        # small offset landing inside the barrier propagation / cut
        # serialisation that follows it.
        last_k = int((self.duration - self.settle) / self.checkpoint_interval)
        k = rng.randint(2, max(2, last_k - 1))
        fail_at = k * self.checkpoint_interval + rng.uniform(0.002, 0.035)

        def victim():
            victims = self._fault_model_victims(system)
            return rng.choice(victims) if victims else None

        system.injector.fail_target_at(victim, fail_at)
        system.run(until=self.duration)
        result = self._audit(seed, system, query, plan=plan)
        if not system.metrics.events_of_kind("recovery_complete"):
            result.violations.append(
                Violation(
                    "epoch_kill",
                    f"no recovery completed after the mid-epoch kill at "
                    f"{fail_at:.3f}s",
                )
            )
        if system.checkpointer.last_complete_epoch == 0:
            result.violations.append(
                Violation(
                    "epoch_kill",
                    "barrier protocol never completed an epoch",
                )
            )
        return result

    def epoch_kill_sweep(self, seeds: list[int]) -> list[ChaosRunResult]:
        """Run every mid-epoch-kill seed; the golden run is shared."""
        return [self.run_epoch_kill(seed) for seed in seeds]

    def sweep(self, seeds: list[int]) -> list[ChaosRunResult]:
        """Run every seed; the golden run is shared across the sweep."""
        return [self.run_seed(seed) for seed in seeds]

    # ------------------------------------------------------- partition chaos

    def run_partition_seed(self, seed: int) -> ChaosRunResult:
        """One seeded partition-and-gray-failure run under the phi detector.

        Reproducible from ``seed`` alone, the schedule mixes the three
        ways a healthy instance can look dead:

        * one or two **network partitions**, each severing a worker VM
          from the monitor (sink) VM for a few seconds — its heartbeats
          are dropped while its data/control traffic is held, so the phi
          detector manufactures a false suspicion and the recovery
          installs a successor while the condemned primary keeps
          running (a zombie, later fenced);
        * optionally a **heartbeat mute** ("alive but not heartbeating"):
          the instance processes normally but its emitter goes silent;
        * optionally a **10 %-CPU straggler**, which must *not* trip the
          detector (heartbeats keep flowing).

        Every window closes before the settle period so held traffic is
        released, fences resolve, and the audit sees a quiesced system.
        Runs under ``detector="phi"`` regardless of the runner default.
        """
        import random as _random

        rng = _random.Random(seed)
        system, query = self._build(detector="phi")
        workers = sorted(
            {
                inst.vm.vm_id
                for inst in system.worker_instances()
            }
        )
        sink_vms = frozenset(
            inst.vm.vm_id
            for inst in system.instances.values()
            if inst.is_sink
        )
        worker_ops = sorted(
            {
                inst.op_name
                for inst in system.worker_instances()
            }
        )
        chaos_end = self.duration - self.settle
        partitions = []
        for _ in range(rng.randint(1, 2)):
            victim = rng.choice(workers)
            start = rng.uniform(10.0, max(chaos_end - 8.0, 11.0))
            length = rng.uniform(3.0, 6.0)
            partitions.append(
                PartitionRule(
                    frozenset({victim}),
                    sink_vms,
                    (start, min(start + length, chaos_end)),
                )
            )
        plan = NetworkFaultPlan([], seed=seed, partitions=partitions)
        system.network.install_fault_plan(plan)
        gray = GrayFailureSchedule(system)
        if rng.random() < 0.5:
            gray.mute_heartbeats_at(
                rng.choice(worker_ops),
                time=rng.uniform(10.0, chaos_end - 10.0),
                duration=rng.uniform(2.5, 4.0),
            )
        if rng.random() < 0.5:
            gray.straggle_at(
                rng.choice(worker_ops),
                time=rng.uniform(10.0, chaos_end - 10.0),
                factor=0.1,
                duration=rng.uniform(3.0, 6.0),
            )
        # A sprinkle of real crashes so genuine and false detections
        # coexist (concurrent zombies next to actual recoveries).
        np_rng = np.random.default_rng(seed)
        system.injector.poisson_failures(
            lambda: self._fault_model_victims(system),
            mtbf=self.mtbf * 2,
            rng=np_rng,
            until=chaos_end,
        )
        system.run(until=self.duration)
        return self._audit(seed, system, query, plan)

    def partition_sweep(self, seeds: list[int]) -> list[ChaosRunResult]:
        """Run every partition seed; the golden run is shared."""
        return [self.run_partition_seed(seed) for seed in seeds]

    # -------------------------------------------------------------- utility

    def _audit(
        self,
        seed: int,
        system: StreamProcessingSystem,
        query,
        plan: NetworkFaultPlan | None,
    ) -> ChaosRunResult:
        violations = InvariantChecker(system).check()
        violations += self._sink_violations(query)
        trace_path: str | None = None
        if violations and self.trace_dir is not None:
            path = (
                Path(self.trace_dir)
                / f"chaos-{self.workload}-seed{seed}.jsonl"
            )
            system.telemetry.dump_jsonl(path)
            trace_path = str(path)
        collector = query.collector
        received = getattr(collector, "received", None)
        if received is None:
            received = int(collector.total())
        detector = system.phi_detector
        return ChaosRunResult(
            seed=seed,
            violations=violations,
            failures=len(system.injector.failures_injected),
            stragglers=len(system.injector.stragglers_injected),
            faults=plan.faults_injected() if plan is not None else 0,
            recoveries=len(system.metrics.events_of_kind("recovery_complete")),
            aborts=len(system.metrics.events_of_kind("recovery_aborted"))
            + len(system.metrics.events_of_kind("scale_out_aborted")),
            results_received=int(received),
            false_suspicions=(
                detector.false_detections if detector is not None else 0
            ),
            zombies_fenced=int(system.counter("zombies_fenced")),
            trace_path=trace_path,
        )
