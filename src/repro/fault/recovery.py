"""Recovery coordinator (§4.2, Fig. 4).

Dispatches detected failures to the configured strategy:

* ``rsm`` — recovery using state management: restore the most recent
  checkpoint and replay unprocessed tuples.  With
  ``recovery_parallelism == 1`` this is serial recovery via
  :meth:`~repro.scaling.coordinator.ScaleOutCoordinator.recover_slot`;
  with a higher value the failed operator is *scaled out during
  recovery* (parallel recovery), splitting the replay across partitions.
* ``upstream_backup`` / ``source_replay`` — the rebuild-based baselines.

Overload and failure are handled by the same machinery (Algorithm 3), so
"operator recovery becomes a special case of scale out".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import (
    STRATEGY_ACTIVE_REPLICATION,
    STRATEGY_NONE,
    STRATEGY_RSM,
    STRATEGY_SOURCE_REPLAY,
    STRATEGY_UPSTREAM_BACKUP,
)
from repro.fault.strategies import SourceReplayRecovery, UpstreamBackupRecovery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem


class RecoveryCoordinator:
    """Routes failure notifications to the active recovery strategy."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        self._upstream_backup = UpstreamBackupRecovery(system)
        self._source_replay = SourceReplayRecovery(system)
        #: Completed recoveries as (completion_time, duration) pairs.
        self.recovery_durations: list[tuple[float, float]] = []
        self._handled: set[int] = set()
        #: Retry attempts so far, per failed instance identity.
        self._attempts: dict[int, int] = {}
        #: Recoveries abandoned after exhausting the retry budget.
        self.giveups = 0

    def on_failure_detected(self, instance: "OperatorInstance") -> None:
        """Handle one detected failure (idempotent per instance)."""
        system = self.system
        current = system.instances.get(instance.uid)
        if current is not instance:
            return  # already replaced by some earlier recovery
        if id(instance) in self._handled:
            return
        self._handled.add(id(instance))
        strategy = system.config.fault.strategy
        if strategy == STRATEGY_NONE:
            return
        if instance.is_source or instance.is_sink:
            system.metrics.mark_event(
                system.sim.now,
                "unrecoverable",
                f"{instance.slot!r}: sources/sinks are assumed reliable",
            )
            return
        failure_time = (
            instance.vm.failed_at
            if instance.vm.failed_at is not None
            else system.sim.now
        )
        # Detection span: crash instant → this handoff, parented on the
        # failure span and registered so the recovery's reconfiguration
        # root span links back to it (the causal chain a trace renders
        # as failure -> detection -> recovery -> phases).
        system.telemetry.record_detection(
            instance.uid, instance.op_name, failure_time
        )
        if strategy == STRATEGY_RSM:
            self._recover_rsm(instance, failure_time)
        elif strategy == STRATEGY_UPSTREAM_BACKUP:
            self._upstream_backup.recover(instance, failure_time, self._record)
        elif strategy == STRATEGY_SOURCE_REPLAY:
            self._source_replay.recover(instance, failure_time, self._record)
        elif strategy == STRATEGY_ACTIVE_REPLICATION:
            assert self.system.replication is not None
            self.system.replication.promote(instance, failure_time, self._record)

    def _recover_rsm(
        self, instance: "OperatorInstance", failure_time: float
    ) -> None:
        system = self.system
        parallelism = system.config.fault.recovery_parallelism
        assert system.scale_out is not None
        if parallelism == 1:
            started = system.scale_out.recover_slot(
                instance.uid, failure_time, on_complete=self._record
            )
        else:
            started = system.scale_out.scale_out_slot(
                instance.uid,
                parallelism=parallelism,
                reason="parallel recovery",
                failure_time=failure_time,
                on_complete=self._record,
            )
        if not started:
            # Backup unavailable right now (e.g. backup VM also failed and
            # a re-checkpoint is in flight): retry with backoff.
            self.schedule_retry(instance, failure_time)

    def schedule_retry(
        self, instance: "OperatorInstance", failure_time: float
    ) -> None:
        """Schedule the next recovery attempt under capped exponential
        backoff with seeded jitter.

        Attempt *n* waits ``min(retry_base * retry_multiplier^(n-1),
        retry_cap)`` seconds, scaled by a uniform ±``retry_jitter``
        factor drawn from the run's seeded RNG (no draw when jitter is
        0, keeping default runs on their historical schedules).  The
        attempt is abandoned — with a ``recovery_giveup`` event — once
        ``max_retries`` attempts were made or ``retry_deadline`` seconds
        passed since the failure; both are off by default.
        """
        system = self.system
        cfg = system.config.fault
        key = id(instance)
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        now = system.sim.now
        if (cfg.max_retries is not None and attempt > cfg.max_retries) or (
            cfg.retry_deadline is not None
            and now - failure_time > cfg.retry_deadline
        ):
            self.giveups += 1
            system.telemetry.event(
                "recovery_giveup",
                repr(instance.slot),
                slot=instance.uid,
                attempts=attempt - 1,
                elapsed=now - failure_time,
            )
            return
        delay = min(
            cfg.retry_base * cfg.retry_multiplier ** (attempt - 1),
            cfg.retry_cap,
        )
        if cfg.retry_jitter > 0:
            rng = system.rng.stream("recovery-backoff")
            delay *= 1.0 + cfg.retry_jitter * (2.0 * rng.random() - 1.0)
        system.telemetry.event(
            "recovery_retry",
            repr(instance.slot),
            slot=instance.uid,
            attempt=attempt,
            delay=delay,
        )
        system.sim.schedule(delay, self._retry, instance, failure_time)

    def _retry(self, instance: "OperatorInstance", failure_time: float) -> None:
        current = self.system.instances.get(instance.uid)
        if current is not instance:
            return
        # Re-dispatch through the *configured* strategy: an aborted
        # upstream-backup or source-replay recovery must not silently
        # fall back to checkpoint restore (there are no checkpoints).
        strategy = self.system.config.fault.strategy
        if strategy == STRATEGY_UPSTREAM_BACKUP:
            self._upstream_backup.recover(instance, failure_time, self._record)
        elif strategy == STRATEGY_SOURCE_REPLAY:
            self._source_replay.recover(instance, failure_time, self._record)
        elif strategy == STRATEGY_RSM:
            self._recover_rsm(instance, failure_time)

    def retry_recovery(
        self, instance: "OperatorInstance", failure_time: float
    ) -> None:
        """Re-attempt recovery of a still-dead instance (e.g. after an
        aborted scale-out/recovery operation lost its backup VM)."""
        self._retry(instance, failure_time)

    def _record(self, duration: float) -> None:
        self.recovery_durations.append((self.system.sim.now, duration))

    @property
    def last_recovery_duration(self) -> float | None:
        if not self.recovery_durations:
            return None
        return self.recovery_durations[-1][1]
