"""Failure detection.

The default path models detection latency directly: when a VM crashes,
recovery is notified ``detection_delay`` seconds later (a heartbeat
timeout).  :class:`HeartbeatMonitor` is the explicit alternative — it
polls liveness every heartbeat period and declares failure after a number
of missed beats, matching how the paper's system treats an unresponsive
operator ("scales out an operator when it has become unresponsive",
§4.2).  Recovery dispatch is idempotent, so both may run together.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.simulator import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import StreamProcessingSystem


class HeartbeatMonitor:
    """Polls instance liveness and reports missing heartbeats."""

    def __init__(
        self,
        system: "StreamProcessingSystem",
        period: float = 0.5,
        missed_beats: int = 2,
    ) -> None:
        self.system = system
        self.period = period
        self.missed_beats = missed_beats
        self._missed: dict[int, int] = {}
        self._reported: set[int] = set()
        self._task: PeriodicTask | None = None
        self.detections = 0

    def start(self) -> None:
        """Begin periodic liveness polling."""
        if self._task is None:
            self._task = self.system.sim.every(self.period, self._tick)

    def stop(self) -> None:
        """Stop polling."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        system = self.system
        # Prune bookkeeping for slots that no longer exist (replaced by a
        # scale out or a fresh-slot recovery): without this, stale
        # ``_missed``/``_reported`` entries accumulate across every
        # reconfiguration of a long run.
        known = set(system.instances)
        for uid in list(self._missed):
            if uid not in known:
                del self._missed[uid]
        self._reported &= known
        for uid, instance in list(system.instances.items()):
            if instance.is_source or instance.is_sink:
                continue
            if instance.vm.alive:
                self._missed[uid] = 0
                self._reported.discard(uid)
                continue
            if uid in self._reported:
                continue
            missed = self._missed.get(uid, 0) + 1
            self._missed[uid] = missed
            if missed >= self.missed_beats:
                self._reported.add(uid)
                self.detections += 1
                system.telemetry.event(
                    "heartbeat_detection",
                    repr(instance.slot),
                    slot=uid,
                    missed_beats=missed,
                    period=self.period,
                )
                if system.recovery is not None:
                    system.recovery.on_failure_detected(instance)
