"""Failure detection.

Three detection paths, from most to least abstract:

* The default path models detection latency directly: when a VM
  crashes, recovery is notified ``detection_delay`` seconds later (a
  heartbeat timeout collapsed to a constant).
* :class:`HeartbeatMonitor` polls liveness every heartbeat period and
  declares failure after a number of missed beats, matching how the
  paper's system treats an unresponsive operator ("scales out an
  operator when it has become unresponsive", §4.2).
* :class:`PhiFailureDetector` (``fault.detector = "phi"``) drops the
  omniscient liveness oracle entirely: every worker instance sends
  real heartbeat *messages* through the simulated network — subject to
  latency, loss and partitions — to a monitor, which accrues suspicion
  per slot with a :class:`~repro.fault.phi.PhiEstimator`.  Suspicion
  crosses three thresholds (``phi_suspect`` → ``phi_confirm`` →
  ``phi_dead``); only the last dispatches recovery.  Because the
  detector can only observe messages, a network partition is
  indistinguishable from a crash — false detections are *expected*,
  and epoch fencing (see :mod:`repro.runtime.system`) is what keeps
  the falsely-replaced zombie from corrupting the successor's output.

Recovery dispatch is idempotent, so the paths may run together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fault.phi import PhiEstimator
from repro.sim.network import KIND_HEARTBEAT
from repro.sim.simulator import PeriodicTask
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem


class HeartbeatMonitor:
    """Polls instance liveness and reports missing heartbeats."""

    def __init__(
        self,
        system: "StreamProcessingSystem",
        period: float = 0.5,
        missed_beats: int = 2,
    ) -> None:
        self.system = system
        self.period = period
        self.missed_beats = missed_beats
        self._missed: dict[int, int] = {}
        self._reported: set[int] = set()
        self._task: PeriodicTask | None = None
        self.detections = 0

    def start(self) -> None:
        """Begin periodic liveness polling."""
        if self._task is None:
            self._task = self.system.sim.every(self.period, self._tick)

    def stop(self) -> None:
        """Stop polling and forget accrued miss counts.

        A stopped monitor must come back with a clean slate: carrying
        ``_missed``/``_reported`` across a stop/start pair would let a
        restarted monitor instantly re-report a slot it suspected in a
        previous life (or skip beats toward a fresh instance reusing
        the uid).
        """
        if self._task is not None:
            self._task.stop()
            self._task = None
        self._missed.clear()
        self._reported.clear()

    def _tick(self) -> None:
        system = self.system
        # Prune bookkeeping for slots that no longer exist (replaced by a
        # scale out or a fresh-slot recovery): without this, stale
        # ``_missed``/``_reported`` entries accumulate across every
        # reconfiguration of a long run.
        known = set(system.instances)
        for uid in list(self._missed):
            if uid not in known:
                del self._missed[uid]
        self._reported &= known
        for uid, instance in list(system.instances.items()):
            if instance.is_source or instance.is_sink:
                continue
            if instance.vm.alive:
                self._missed[uid] = 0
                self._reported.discard(uid)
                continue
            if uid in self._reported:
                continue
            missed = self._missed.get(uid, 0) + 1
            self._missed[uid] = missed
            if missed >= self.missed_beats:
                self._reported.add(uid)
                self.detections += 1
                system.telemetry.event(
                    "heartbeat_detection",
                    repr(instance.slot),
                    slot=uid,
                    missed_beats=missed,
                    period=self.period,
                )
                if system.recovery is not None:
                    system.recovery.on_failure_detected(instance)


#: Suspicion lifecycle states, in escalation order.
STATE_ALIVE = "alive"
STATE_SUSPECT = "suspect"
STATE_CONFIRMED = "confirmed"
STATE_DEAD = "dead"


@dataclass
class _Watch:
    """Per-slot monitoring record: one instance, one heartbeat stream."""

    instance: "OperatorInstance"
    estimator: PhiEstimator
    state: str = STATE_ALIVE
    emit_task: PeriodicTask | None = field(default=None, repr=False)


class PhiFailureDetector:
    """Message-based phi-accrual failure detection for worker slots.

    Each watched instance runs a periodic heartbeat task that sends a
    small ``kind="heartbeat"`` message from its own VM to the monitor
    VM (the sink's — sinks are assumed reliable, §2.2).  The messages
    ride the simulated network, so chaos plans and partitions perturb
    exactly what a real detector would see.  A periodic check task
    evaluates phi per slot and walks the suspect → confirmed → dead
    lifecycle; only ``dead`` dispatches recovery.

    Heartbeats carry the sender's fencing epoch.  A heartbeat from a
    superseded epoch — a zombie that was falsely declared dead and
    replaced — is never fed to the estimator; instead the monitor sends
    a fence notice back so the zombie learns of its replacement and
    self-terminates.

    ``mute`` models a gray failure: the instance keeps processing but
    its heartbeat task stops producing for a window (a wedged reporter
    thread), which is exactly the failure mode a liveness-polling
    detector cannot represent.
    """

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        cfg = system.config.fault
        self.heartbeat_interval = cfg.heartbeat_interval
        self.heartbeat_bytes = cfg.heartbeat_bytes
        self.phi_suspect = cfg.phi_suspect
        self.phi_confirm = cfg.phi_confirm
        self.phi_dead = cfg.phi_dead
        self.check_interval = cfg.phi_check_interval
        self._window = cfg.phi_window
        self._min_stddev = cfg.phi_min_stddev
        self._watches: dict[int, _Watch] = {}
        self._mute_until: dict[int, float] = {}
        self._check_task: PeriodicTask | None = None
        self.detections = 0
        #: Detections whose target was in fact alive (asynchrony, loss,
        #: partitions, muted reporters) — the zombies fencing must handle.
        self.false_detections = 0
        self.suspicions = 0
        self.suspicions_cleared = 0
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.heartbeats_muted = 0
        #: Heartbeats carrying a superseded epoch (answered with a fence
        #: notice instead of being fed to the estimator).
        self.zombie_heartbeats = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start the periodic phi check and watch all current workers."""
        if self._check_task is None:
            self._check_task = self.system.sim.every(
                self.check_interval, self._check
            )
        for instance in list(self.system.instances.values()):
            self.watch(instance)

    def stop(self) -> None:
        """Stop checking and every heartbeat task; forget all watches."""
        if self._check_task is not None:
            self._check_task.stop()
            self._check_task = None
        for watch in self._watches.values():
            self._stop_emit(watch)
        self._watches.clear()
        self._mute_until.clear()

    def watch(self, instance: "OperatorInstance") -> None:
        """Begin monitoring one worker instance (idempotent).

        Sources and sinks are assumed reliable (§2.2) and replicas are
        shadowed by the replication manager, so none of them heartbeat.
        A replacement instance reusing its predecessor's uid gets a
        fresh estimator — the predecessor's inter-arrival history says
        nothing about the new VM.
        """
        if instance.is_source or instance.is_sink or instance.is_replica:
            return
        existing = self._watches.get(instance.uid)
        if existing is not None:
            if existing.instance is instance:
                return
            self._stop_emit(existing)
        estimator = PhiEstimator(
            window=self._window,
            min_stddev=self._min_stddev,
            bootstrap_interval=self.heartbeat_interval,
        )
        # Silence accrues from the moment monitoring starts: a watched
        # instance that never sends a single heartbeat must still be
        # detected.
        estimator.heartbeat(self.system.sim.now)
        watch = _Watch(instance=instance, estimator=estimator)
        self._watches[instance.uid] = watch
        watch.emit_task = self.system.sim.every(
            self.heartbeat_interval, self._emit, watch
        )

    def mute(self, uid: int, duration: float) -> None:
        """Gray failure: suppress a slot's heartbeats for ``duration``
        seconds while it keeps processing normally."""
        self._mute_until[uid] = self.system.sim.now + duration

    def state_of(self, uid: int) -> str | None:
        """The suspicion state of a watched slot (None if unwatched)."""
        watch = self._watches.get(uid)
        return watch.state if watch is not None else None

    def phi_of(self, uid: int) -> float:
        """Current phi of a watched slot (0.0 if unwatched)."""
        watch = self._watches.get(uid)
        if watch is None:
            return 0.0
        return watch.estimator.phi(self.system.sim.now)

    # ----------------------------------------------------------- heartbeat

    def _monitor_vm(self) -> VirtualMachine | None:
        """Where heartbeats are delivered: the first live sink VM.

        Sinks are assumed reliable, making them the natural monitor
        host; routing heartbeats over real sink-bound network edges is
        what lets partitions between workers and the sink manufacture
        false suspicions.
        """
        for instance in self.system.instances.values():
            if instance.is_sink and instance.vm.alive:
                return instance.vm
        for instance in self.system.instances.values():
            if instance.is_source and instance.vm.alive:
                return instance.vm
        return None

    def _emit(self, watch: _Watch) -> None:
        instance = watch.instance
        if (
            self._watches.get(instance.uid) is not watch
            or not instance.alive
            or not instance.vm.alive
        ):
            self._stop_emit(watch)
            return
        if self._mute_until.get(instance.uid, 0.0) > self.system.sim.now:
            self.heartbeats_muted += 1
            return
        target = self._monitor_vm()
        if target is None:
            return
        self.heartbeats_sent += 1
        self.system.network.send(
            instance.vm,
            target,
            self.heartbeat_bytes,
            self._on_heartbeat,
            watch,
            instance.epoch,
            kind=KIND_HEARTBEAT,
        )

    def _on_heartbeat(self, watch: _Watch, epoch: int) -> None:
        instance = watch.instance
        system = self.system
        if (
            epoch < system.epoch_of(instance.uid)
            or system.instances.get(instance.uid) is not instance
        ):
            # A zombie's heartbeat: its slot was re-epoched by a recovery
            # install.  Never feed it to the (successor's) estimator;
            # tell the sender it has been superseded instead.
            self.zombie_heartbeats += 1
            system.notify_fenced(instance)
            return
        self.heartbeats_received += 1
        watch.estimator.heartbeat(system.sim.now)

    def _stop_emit(self, watch: _Watch) -> None:
        if watch.emit_task is not None and not watch.emit_task.stopped:
            watch.emit_task.stop()
        watch.emit_task = None

    # --------------------------------------------------------------- check

    def _check(self) -> None:
        system = self.system
        now = system.sim.now
        for uid, watch in list(self._watches.items()):
            instance = watch.instance
            if system.instances.get(uid) is not instance:
                # Replaced (recovery or scale out): the successor was
                # (or will be) watched with a fresh estimator.
                self._stop_emit(watch)
                if self._watches.get(uid) is watch:
                    del self._watches[uid]
                continue
            if watch.state == STATE_DEAD:
                continue  # recovery dispatched; wait for the replacement
            phi = watch.estimator.phi(now)
            system.telemetry.suspicion(instance.op_name, uid, phi, watch.state)
            if phi >= self.phi_dead:
                watch.state = STATE_DEAD
                self.detections += 1
                false_positive = instance.alive and instance.vm.alive
                if false_positive:
                    self.false_detections += 1
                system.telemetry.event(
                    "phi_detection",
                    repr(instance.slot),
                    slot=uid,
                    phi=phi,
                    false_positive=false_positive,
                )
                if system.recovery is not None:
                    system.recovery.on_failure_detected(instance)
            elif phi >= self.phi_confirm:
                if watch.state in (STATE_ALIVE, STATE_SUSPECT):
                    if watch.state == STATE_ALIVE:
                        self.suspicions += 1
                    watch.state = STATE_CONFIRMED
                    system.telemetry.event(
                        "suspicion_confirmed",
                        repr(instance.slot),
                        slot=uid,
                        phi=phi,
                    )
            elif phi >= self.phi_suspect:
                if watch.state == STATE_ALIVE:
                    watch.state = STATE_SUSPECT
                    self.suspicions += 1
                    system.telemetry.event(
                        "suspicion", repr(instance.slot), slot=uid, phi=phi
                    )
            elif watch.state in (STATE_SUSPECT, STATE_CONFIRMED):
                watch.state = STATE_ALIVE
                self.suspicions_cleared += 1
                system.telemetry.event(
                    "suspicion_cleared", repr(instance.slot), slot=uid, phi=phi
                )
