"""Baseline fault-tolerance strategies (§6.2).

* **Upstream backup (UB)** [8]: no checkpoints; every operator buffers its
  output tuples (a window's worth) and, after a failure, replays them to a
  fresh replacement that rebuilds its state by re-processing.
* **Source replay (SR)** [29]: a variant of UB where only the *source*
  buffers tuples.  On failure, the source stops generating new tuples and
  replays its buffer through the whole pipeline; intermediate operators
  re-process the replayed tuples to regenerate the failed operator's
  input.

Both rebuild state rather than restoring it, so recovery time scales with
the full window of tuples instead of the checkpoint interval — the
comparison in Fig. 11.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.execution import Slot
from repro.errors import RecoveryError
from repro.runtime.instance import REPLAY_ACCEPT, REPLAY_DROP
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem


def _replace_with_fresh_slot(
    system: "StreamProcessingSystem", failed: "OperatorInstance", vm: VirtualMachine
) -> "OperatorInstance":
    """Create a fresh-state replacement under a *new* slot uid.

    Rebuild-based strategies re-emit results from a zeroed output clock;
    a new slot identity keeps downstream duplicate filters from wrongly
    discarding those emissions.
    """
    qm = system.query_manager
    op_name = failed.op_name
    new_slot = qm.new_slot(op_name, failed.slot.index)
    qm.replace_slots(op_name, [failed.slot], [new_slot])
    new_routing = qm.routing_to(op_name).reassign(failed.uid, new_slot.uid)
    qm.store_routing(op_name, new_routing)
    system.instances.pop(failed.uid, None)
    instance = system.deployment.deploy_replacement(new_slot, vm)
    system.deployment.configure_services(instance)
    for up_name in qm.upstream_of(op_name):
        for slot in qm.slots_of(up_name):
            upstream = system.live_instance(slot.uid)
            if upstream is not None:
                upstream.set_routing(op_name, new_routing)
                upstream.repartition_buffer(op_name)
    if system.detector is not None:
        system.detector.tracker.forget(failed.uid)
        system.detector.policy.forget_slot(failed.uid)
    return instance


def _upstream_instances(
    system: "StreamProcessingSystem", op_name: str
) -> list["OperatorInstance"]:
    result = []
    for up_name in system.query_manager.upstream_of(op_name):
        for slot in system.query_manager.slots_of(up_name):
            upstream = system.live_instance(slot.uid)
            if upstream is not None:
                result.append(upstream)
    return result


class UpstreamBackupRecovery:
    """Recover by replaying upstream output buffers into a fresh operator."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    def recover(
        self,
        failed: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None = None,
    ) -> None:
        """Rebuild the failed operator on a fresh VM from replayed tuples."""
        self.system.metrics.mark_event(
            self.system.sim.now, "recovery_started", f"UB {failed.slot!r}"
        )
        self.system.pool.acquire(
            lambda vm: self._vm_ready(failed, failure_time, on_complete, vm)
        )

    def _vm_ready(
        self,
        failed: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None,
        vm: VirtualMachine,
    ) -> None:
        system = self.system
        instance = _replace_with_fresh_slot(system, failed, vm)
        # Unlike R+SM's coordinated scale-out path, plain upstream backup
        # does not stop upstream operators: replayed tuples compete with
        # fresh input at the rebuilt operator, which is what makes UB
        # slower than SR at high rates (§6.2).
        instance.replay_mode = REPLAY_ACCEPT
        upstreams = _upstream_instances(system, instance.op_name)
        sent = 0
        for upstream in upstreams:
            sent += upstream.replay_buffer_to(instance.uid, flag_replay=True)
        instance.expect_replays(
            sent,
            lambda: self._finish(instance, failure_time, on_complete),
            flagged_only=True,
        )
        system.record_vm_count()

    def _finish(
        self,
        instance: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None,
    ) -> None:
        system = self.system
        instance.replay_mode = REPLAY_DROP
        duration = system.sim.now - failure_time
        system.metrics.mark_event(
            system.sim.now, "recovery_complete", f"UB {instance.slot!r} {duration:.3f}s"
        )
        system.metrics.time_series_for("recovery_time").record(
            system.sim.now, duration
        )
        if on_complete is not None:
            on_complete(duration)


class SourceReplayRecovery:
    """Recover by replaying buffered source tuples through the pipeline.

    The source stops generating new tuples during recovery (§6.2), which
    is why SR can beat UB on short pipelines despite re-processing at
    every hop.  Completion is detected by pipeline quiescence: no work
    queued anywhere and no message deliveries between consecutive polls.
    """

    #: Poll period for quiescence detection.
    POLL = 0.25
    #: Consecutive quiet polls required before declaring recovery done.
    QUIET_POLLS = 2

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    def recover(
        self,
        failed: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None = None,
    ) -> None:
        """Rebuild the failed operator on a fresh VM from replayed tuples."""
        self.system.metrics.mark_event(
            self.system.sim.now, "recovery_started", f"SR {failed.slot!r}"
        )
        self.system.pool.acquire(
            lambda vm: self._vm_ready(failed, failure_time, on_complete, vm)
        )

    def _vm_ready(
        self,
        failed: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None,
        vm: VirtualMachine,
    ) -> None:
        system = self.system
        instance = _replace_with_fresh_slot(system, failed, vm)
        marked = self._mark_replay_path(instance)
        for controller in system.source_controllers.values():
            controller.pause()
        query = system.query_manager.query
        assert query is not None
        replayed = 0
        for src_name in query.sources:
            for source in system.instances_of(src_name):
                if source.alive:
                    replayed += source.replay_all_buffers(flag_replay=True)
        if replayed == 0:
            self._finish(instance, marked, failure_time, on_complete)
            system.record_vm_count()
            return
        state = {"delivered": system.network.messages_delivered, "quiet": 0}
        system.sim.schedule(
            self.POLL,
            self._poll,
            instance,
            marked,
            failure_time,
            on_complete,
            state,
        )
        system.record_vm_count()

    def _mark_replay_path(
        self, instance: "OperatorInstance"
    ) -> list["OperatorInstance"]:
        """Put the rebuilt operator and its ancestors into replay-accept
        mode; healthy partitions elsewhere keep dropping flagged tuples."""
        system = self.system
        query = system.query_manager.query
        assert query is not None
        ancestors: set[str] = set()
        frontier = [instance.op_name]
        while frontier:
            name = frontier.pop()
            for up in query.upstream_of(name):
                if up not in ancestors:
                    ancestors.add(up)
                    frontier.append(up)
        marked = [instance]
        instance.replay_mode = REPLAY_ACCEPT
        for name in ancestors:
            if query.is_source(name):
                continue
            for inst in system.instances_of(name):
                if inst.alive:
                    inst.replay_mode = REPLAY_ACCEPT
                    marked.append(inst)
        return marked

    def _poll(
        self,
        instance: "OperatorInstance",
        marked: list["OperatorInstance"],
        failure_time: float,
        on_complete: Callable[[float], None] | None,
        state: dict,
    ) -> None:
        system = self.system
        delivered = system.network.messages_delivered
        busy = any(
            inst.vm.alive and (inst.vm.busy or inst.vm.queue_length > 0)
            for inst in system.instances.values()
            if inst.alive
        )
        if not busy and delivered == state["delivered"]:
            state["quiet"] += 1
        else:
            state["quiet"] = 0
        state["delivered"] = delivered
        if state["quiet"] >= self.QUIET_POLLS:
            self._finish(instance, marked, failure_time, on_complete)
            return
        system.sim.schedule(
            self.POLL, self._poll, instance, marked, failure_time, on_complete, state
        )

    def _finish(
        self,
        instance: "OperatorInstance",
        marked: list["OperatorInstance"],
        failure_time: float,
        on_complete: Callable[[float], None] | None,
    ) -> None:
        system = self.system
        for inst in marked:
            inst.replay_mode = REPLAY_DROP
        for controller in system.source_controllers.values():
            controller.resume()
        duration = system.sim.now - failure_time
        system.metrics.mark_event(
            system.sim.now, "recovery_complete", f"SR {instance.slot!r} {duration:.3f}s"
        )
        system.metrics.time_series_for("recovery_time").record(
            system.sim.now, duration
        )
        if on_complete is not None:
            on_complete(duration)
