"""Baseline fault-tolerance strategies (§6.2).

* **Upstream backup (UB)** [8]: no checkpoints; every operator buffers its
  output tuples (a window's worth) and, after a failure, replays them to a
  fresh replacement that rebuilds its state by re-processing.
* **Source replay (SR)** [29]: a variant of UB where only the *source*
  buffers tuples.  On failure, the source stops generating new tuples and
  replays its buffer through the whole pipeline; intermediate operators
  re-process the replayed tuples to regenerate the failed operator's
  input.

Both rebuild state rather than restoring it, so recovery time scales with
the full window of tuples instead of the checkpoint interval — the
comparison in Fig. 11.

Each strategy is a thin policy adapter: it constructs a
:class:`~repro.scaling.reconfig.ReconfigPlan` whose *state source*
(``fresh`` for UB, ``source_replay`` for SR) tells the shared
:class:`~repro.scaling.reconfig.ReconfigurationEngine` how to rebuild
the replacement and how to detect that the replay has drained.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.scaling.reconfig import (
    KIND_RECOVERY,
    SOURCE_FRESH,
    SOURCE_SOURCE_REPLAY,
    ReconfigPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem


class UpstreamBackupRecovery:
    """Recover by replaying upstream output buffers into a fresh operator."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    def recover(
        self,
        failed: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Rebuild the failed operator on a fresh VM from replayed tuples."""
        assert self.system.reconfig is not None
        return self.system.reconfig.submit(
            ReconfigPlan(
                kind=KIND_RECOVERY,
                op_name=failed.op_name,
                old_slots=[failed.slot],
                parallelism=1,
                state_source=SOURCE_FRESH,
                reason="failure",
                failure_time=failure_time,
                on_complete=on_complete,
                label="UB",
            )
        )


class SourceReplayRecovery:
    """Recover by replaying buffered source tuples through the pipeline.

    The source stops generating new tuples during recovery (§6.2), which
    is why SR can beat UB on short pipelines despite re-processing at
    every hop.  Completion is detected by pipeline quiescence: no work
    queued anywhere and no message deliveries between consecutive polls.
    """

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    def recover(
        self,
        failed: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Rebuild the failed operator on a fresh VM from replayed tuples."""
        assert self.system.reconfig is not None
        return self.system.reconfig.submit(
            ReconfigPlan(
                kind=KIND_RECOVERY,
                op_name=failed.op_name,
                old_slots=[failed.slot],
                parallelism=1,
                state_source=SOURCE_SOURCE_REPLAY,
                reason="failure",
                failure_time=failure_time,
                on_complete=on_complete,
                label="SR",
            )
        )
