"""Active replication (§7 comparison point).

The paper rejects active replication for cloud deployments because it
"doubles the number of required VMs"; this module implements it so the
trade-off can be measured instead of asserted.  Every *stateful* worker
operator gets a dedicated replica on its own VM:

* upstream dispatchers tee every tuple to the replica, which processes it
  and maintains state but suppresses all emissions;
* on primary failure, the replica is promoted: routing is re-pointed at
  it and upstream buffers are replayed (its duplicate filter drops almost
  everything — it was current), so recovery is detection-time plus
  epsilon, with no state transfer;
* after a promotion, a fresh replica is stood up from a snapshot of the
  new primary, restoring the 2× footprint.

Results stay exact for timer-emitting (windowed) operators: pre-failover
flushes were emitted by the primary, post-failover flushes come from the
promoted replica's complete state, and the sink collects windows
idempotently.  Stateless operators are not replicated (they recover
trivially); dynamic scale out is not combined with replication here, as
in the paper's framing of the two as alternative architectures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.checkpoint import Checkpoint
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem


class ActiveReplicationManager:
    """Creates replicas at deploy time and promotes them on failure."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        #: primary slot uid → replica instance.
        self.replicas: dict[int, "OperatorInstance"] = {}
        self.promotions = 0

    # ------------------------------------------------------------ creation

    def replicate_all(self) -> None:
        """Stand up a replica for every stateful worker instance."""
        for instance in list(self.system.worker_instances()):
            if instance.operator.stateful:
                self.create_replica(instance)

    def create_replica(
        self, primary: "OperatorInstance", state_from: Checkpoint | None = None
    ) -> "OperatorInstance":
        """Provision a VM and build a suppressed replica of ``primary``."""
        system = self.system
        vm = system.provider.provision_immediately()
        slot = system.query_manager.new_slot(primary.op_name, primary.slot.index)
        query = system.query_manager.query
        assert query is not None
        from repro.runtime.instance import OperatorInstance

        replica = OperatorInstance(
            system,
            primary.operator,
            slot,
            vm,
            downstream_names=query.downstream_of(primary.op_name),
            buffered_downstreams=set(),
        )
        replica.is_replica = True
        system.deployment.wire_routing(replica)
        replica.start_timers()
        if state_from is not None:
            replica.restore_from(state_from)
        self.replicas[primary.uid] = replica
        system.record_vm_count()
        return replica

    def replica_of(self, primary_uid: int) -> "OperatorInstance | None":
        """The live replica for a primary slot, if any."""
        replica = self.replicas.get(primary_uid)
        if replica is not None and replica.alive and replica.vm.alive:
            return replica
        return None

    # ----------------------------------------------------------- promotion

    def promote(
        self,
        failed: "OperatorInstance",
        failure_time: float,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Fail over to the replica of ``failed``; returns success."""
        system = self.system
        qm = system.query_manager
        replica = self.replica_of(failed.uid)
        self.replicas.pop(failed.uid, None)
        if replica is None:
            system.metrics.mark_event(
                system.sim.now, "unrecoverable", f"{failed.slot!r}: replica lost"
            )
            return False
        self.promotions += 1
        system.metrics.mark_event(
            system.sim.now, "recovery_started", f"AR promote {replica.slot!r}"
        )
        qm.replace_slots(failed.op_name, [failed.slot], [replica.slot])
        routing = qm.routing_to(failed.op_name).reassign(failed.uid, replica.uid)
        qm.store_routing(failed.op_name, routing)
        system.instances.pop(failed.uid, None)
        system.instances[replica.uid] = replica
        replica.is_replica = False  # starts emitting from here on

        upstreams: list["OperatorInstance"] = []
        for up_name in qm.upstream_of(failed.op_name):
            for up_slot in qm.slots_of(up_name):
                upstream = system.live_instance(up_slot.uid)
                if upstream is not None:
                    upstreams.append(upstream)
        for upstream in upstreams:
            upstream.set_routing(failed.op_name, routing)
            upstream.repartition_buffer(failed.op_name)
        # Replay anything the replica may have missed (it was teed all
        # traffic, so nearly everything is dropped as already-seen).
        from repro.runtime.instance import REPLAY_DEDUP, REPLAY_DROP

        replica.replay_mode = REPLAY_DEDUP
        replica._replay_dedup_floor = dict(replica.state.positions)
        sent = 0
        floor = dict(replica.state.positions)
        for upstream in upstreams:
            sent += upstream.replay_buffer_to(
                replica.uid, flag_replay=True, after_positions=floor
            )

        def finish() -> None:
            replica.replay_mode = REPLAY_DROP
            duration = system.sim.now - failure_time
            system.metrics.mark_event(
                system.sim.now,
                "recovery_complete",
                f"AR {replica.slot!r} {duration:.3f}s",
            )
            system.metrics.timeseries("recovery_time").record(
                system.sim.now, duration
            )
            if on_complete is not None:
                on_complete(duration)
            # Restore the 2x footprint: a fresh replica from a snapshot of
            # the promoted primary.
            self._rearm(replica)

        replica.expect_replays(sent, finish, flagged_only=True)
        system.record_vm_count()
        return True

    def _rearm(self, primary: "OperatorInstance") -> None:
        system = self.system
        snapshot = Checkpoint(
            op_name=primary.op_name,
            slot_uid=-1,
            state=primary.state.snapshot(),
            buffers={},
            taken_at=system.sim.now,
            seq=0,
        )
        replica = self.create_replica(primary, state_from=None)
        snapshot.slot_uid = replica.slot.uid
        # Ship the snapshot over the network before applying it.
        cfg = system.config.checkpoint
        size = snapshot.size_bytes(cfg.bytes_per_entry, cfg.bytes_per_tuple)
        system.network.send(
            primary.vm,
            replica.vm,
            size,
            replica.restore_from,
            snapshot,
            kind="control",
        )

    # ------------------------------------------------------------- metrics

    def replica_vm_count(self) -> int:
        """Number of live replica VMs currently allocated."""
        return sum(
            1 for replica in self.replicas.values() if replica.vm.alive
        )
