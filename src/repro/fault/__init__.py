"""Fault tolerance: detection, recovery coordination, baseline strategies."""

from repro.fault.detector import HeartbeatMonitor
from repro.fault.recovery import RecoveryCoordinator
from repro.fault.strategies import SourceReplayRecovery, UpstreamBackupRecovery

__all__ = [
    "HeartbeatMonitor",
    "RecoveryCoordinator",
    "SourceReplayRecovery",
    "UpstreamBackupRecovery",
]
