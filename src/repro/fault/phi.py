"""Phi-accrual failure estimation (Hayashibara et al., SRDS 2004).

A crisp heartbeat timeout answers "is the peer dead?" with a boolean
that is wrong exactly when the network is misbehaving.  The phi-accrual
detector instead maintains a sliding window of observed heartbeat
inter-arrival times and reports a *suspicion level*::

    phi(t_now) = -log10( P_later(t_now - t_last) )

where ``P_later(dt)`` is the probability — under a normal fit of the
window — that a heartbeat arrives more than ``dt`` after the previous
one.  Phi grows continuously with silence: phi = 1 means roughly a 10 %
chance the peer is still fine, phi = 8 a 1e-8 chance.  Callers pick
thresholds per consequence (suspect / confirm / dead) instead of one
timeout, and the window adapts to whatever delays the (simulated)
network actually exhibits.

Pure math, no simulator dependencies — the detector in
:mod:`repro.fault.detector` owns transport and lifecycle.
"""

from __future__ import annotations

import math
from collections import deque

#: Phi is clamped here: beyond ~1e-40 tail probabilities the normal fit
#: has no meaning and callers only compare against single-digit
#: thresholds anyway.
PHI_MAX = 40.0


class PhiEstimator:
    """Sliding-window inter-arrival statistics for one heartbeat stream."""

    def __init__(
        self,
        window: int = 100,
        min_stddev: float = 0.05,
        bootstrap_interval: float | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2: {window}")
        if min_stddev <= 0:
            raise ValueError(f"min_stddev must be > 0: {min_stddev}")
        self._intervals: deque[float] = deque(maxlen=window)
        self.min_stddev = min_stddev
        self.last_arrival: float | None = None
        if bootstrap_interval is not None:
            # Seed the window with the configured send period so phi is
            # meaningful from the very first silence — a peer that never
            # manages a single heartbeat must still become suspect.
            self._intervals.append(bootstrap_interval)

    # ------------------------------------------------------------ recording

    def heartbeat(self, now: float) -> None:
        """Record a heartbeat arrival at simulated time ``now``."""
        if self.last_arrival is not None:
            interval = now - self.last_arrival
            if interval >= 0:
                self._intervals.append(interval)
        self.last_arrival = now

    # ----------------------------------------------------------- statistics

    @property
    def sample_count(self) -> int:
        return len(self._intervals)

    def mean(self) -> float:
        return sum(self._intervals) / len(self._intervals)

    def stddev(self) -> float:
        mu = self.mean()
        var = sum((x - mu) ** 2 for x in self._intervals) / len(self._intervals)
        return max(math.sqrt(var), self.min_stddev)

    # ------------------------------------------------------------------ phi

    def phi(self, now: float) -> float:
        """Suspicion level accrued by the silence ``now - last_arrival``."""
        if self.last_arrival is None or not self._intervals:
            return 0.0
        elapsed = now - self.last_arrival
        if elapsed <= 0:
            return 0.0
        mu = self.mean()
        sigma = self.stddev()
        # P(interval > elapsed) under N(mu, sigma^2), via the
        # complementary error function (stable far into the tail).
        p_later = 0.5 * math.erfc((elapsed - mu) / (sigma * math.sqrt(2.0)))
        if p_later <= 0.0:
            return PHI_MAX
        return min(-math.log10(p_later), PHI_MAX)
