"""CPU utilisation reports (§5.1).

Every ``r`` seconds each VM hosting an operator reports the fraction of
the report window its CPU spent executing the operator (user + system
time).  Reports feed the bottleneck detector.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UtilizationReport:
    """One VM's utilisation over one report window."""

    time: float
    op_name: str
    slot_uid: int
    vm_id: int
    window: float
    utilization: float

    def above(self, threshold: float) -> bool:
        """Whether this report exceeds the given threshold."""
        return self.utilization >= threshold


class UtilizationTracker:
    """Computes per-window utilisation deltas from VM busy-time totals."""

    def __init__(self) -> None:
        self._last_busy: dict[int, float] = {}
        self._last_time: dict[int, float] = {}

    def sample(
        self,
        time: float,
        op_name: str,
        slot_uid: int,
        vm_id: int,
        busy_total: float,
    ) -> UtilizationReport | None:
        """Produce a report for one slot; ``None`` on the first sample."""
        previous_busy = self._last_busy.get(slot_uid)
        previous_time = self._last_time.get(slot_uid)
        self._last_busy[slot_uid] = busy_total
        self._last_time[slot_uid] = time
        if previous_busy is None or previous_time is None:
            return None
        window = time - previous_time
        if window <= 0:
            return None
        utilization = max(0.0, min(1.0, (busy_total - previous_busy) / window))
        return UtilizationReport(time, op_name, slot_uid, vm_id, window, utilization)

    def forget(self, slot_uid: int) -> None:
        """Drop tracking for a retired slot."""
        self._last_busy.pop(slot_uid, None)
        self._last_time.pop(slot_uid, None)
