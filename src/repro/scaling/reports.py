"""CPU utilisation reports (§5.1) and per-key rate statistics.

Every ``r`` seconds each VM hosting an operator reports the fraction of
the report window its CPU spent executing the operator (user + system
time).  Reports feed the bottleneck detector.

Hot-key detection adds a second, finer-grained signal: a per-slot
Space-Saving heavy-hitter sketch sampled from the operator's admission
path.  Interval-based splitting cannot relieve a slot whose load is one
dominating key, so the detector combines both signals — "the slot is
hot *and* one key carries most of its weight" — to trigger a key-level
carve-out instead of another futile interval split.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UtilizationReport:
    """One VM's utilisation over one report window."""

    time: float
    op_name: str
    slot_uid: int
    vm_id: int
    window: float
    utilization: float

    def above(self, threshold: float) -> bool:
        """Whether this report is at or above the given threshold.

        Boundary semantics are inclusive (``>=``), matching the scaling
        policy: a report sitting exactly at ``ScalingConfig.threshold``
        counts as a breach.
        """
        return self.utilization >= threshold


class UtilizationTracker:
    """Computes per-window utilisation deltas from VM busy-time totals."""

    def __init__(self) -> None:
        self._last_busy: dict[int, float] = {}
        self._last_time: dict[int, float] = {}

    def sample(
        self,
        time: float,
        op_name: str,
        slot_uid: int,
        vm_id: int,
        busy_total: float,
    ) -> UtilizationReport | None:
        """Produce a report for one slot; ``None`` on the first sample."""
        previous_busy = self._last_busy.get(slot_uid)
        previous_time = self._last_time.get(slot_uid)
        self._last_busy[slot_uid] = busy_total
        self._last_time[slot_uid] = time
        if previous_busy is None or previous_time is None:
            return None
        window = time - previous_time
        if window <= 0:
            return None
        utilization = max(0.0, min(1.0, (busy_total - previous_busy) / window))
        return UtilizationReport(time, op_name, slot_uid, vm_id, window, utilization)

    def forget(self, slot_uid: int) -> None:
        """Drop tracking for a retired slot."""
        self._last_busy.pop(slot_uid, None)
        self._last_time.pop(slot_uid, None)


class SpaceSavingSketch:
    """Space-Saving top-k heavy-hitter sketch (Metwally et al.).

    Tracks at most ``capacity`` keys with approximate weights.  When a
    new key arrives at a full sketch it evicts the minimum counter and
    inherits its count (the classic over-estimate), which preserves the
    guarantee that any key with true weight above ``total / capacity``
    is present.  ``offer`` is O(capacity) in this simple implementation
    — capacities are small (tens) and offers are sampled per processed
    tuple, which is fine for the simulator's data plane.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"sketch capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._counts: dict = {}
        #: Total weight offered since the last reset (exact).
        self.total = 0.0

    def offer(self, key, weight: float = 1.0) -> None:
        """Record ``weight`` units of load for ``key``."""
        self.total += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            return
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        counts[key] = floor + weight

    def top(self, n: int = 1) -> list[tuple]:
        """The ``n`` heaviest keys as ``(key, estimated_weight)`` pairs,
        heaviest first; ties break on the key's repr for determinism."""
        ranked = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )
        return ranked[:n]

    def reset(self) -> None:
        """Clear counters for the next report window."""
        self._counts.clear()
        self.total = 0.0

    def __len__(self) -> int:
        return len(self._counts)


@dataclass(frozen=True)
class HotKeyReport:
    """Per-slot heavy-hitter summary over one report window."""

    time: float
    op_name: str
    slot_uid: int
    #: The slot's heaviest key this window (None when nothing arrived).
    key: object
    #: Estimated share of the slot's processed weight carried by ``key``.
    share: float
    #: Total weight the slot processed this window.
    total_weight: float
