"""Scale in: merging operator partitions (§3.3, §8).

The paper lists merging two operators' state as the natural extension of
the primitive set ("to scale in operators when resources are
under-utilised, the state of two operators can be merged") and names
elastic scale in as future work.

The implementation uses *quiesce-and-merge*, which is exact:

1. pick two live partitions whose key intervals are adjacent;
2. stop their upstream operators (tuples buffer upstream, Alg. 3 style);
3. let both partitions drain their input queues — afterwards, for every
   input connection, every tuple at or below the per-connection maximum
   has been processed by exactly the partition owning its key, so the
   element-wise max of the two τ vectors is a consistent merged τ;
4. merge the live state snapshots with the operator's ``merge_values``,
   restore onto a pooled VM, swap routing, re-bucket upstream buffers,
   restart the upstreams, and release both old VMs.

This module only selects the pair and validates the request; the
quiesce, merge, restore and commit steps run as a *merge-sourced*
:class:`~repro.scaling.reconfig.ReconfigPlan` in the shared
:class:`~repro.scaling.reconfig.ReconfigurationEngine`.  Scale in is
triggered manually or by :class:`ScaleInPolicy`, which watches for
sustained low utilisation — the inverse of the §5.1 policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ScaleOutError
from repro.scaling.reconfig import KIND_SCALE_IN, SOURCE_MERGE, ReconfigPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.scaling.reconfig import ReconfigurationEngine
    from repro.runtime.system import StreamProcessingSystem


class ScaleInCoordinator:
    """Merges two adjacent partitions of an operator into one."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    @property
    def _engine(self) -> "ReconfigurationEngine":
        assert self.system.reconfig is not None
        return self.system.reconfig

    @property
    def merges_completed(self) -> int:
        return self._engine.merges_completed

    @property
    def merges_aborted(self) -> int:
        return self._engine.merges_aborted

    def is_busy(self, op_name: str) -> bool:
        """Whether a merge of ``op_name`` is in flight."""
        return self._engine.is_merging(op_name)

    # ------------------------------------------------------------ selection

    def mergeable_pair(
        self, op_name: str
    ) -> tuple["OperatorInstance", "OperatorInstance"] | None:
        """Find two live partitions owning adjacent key intervals."""
        system = self.system
        routing = system.query_manager.routing_to(op_name)
        entries = list(routing)
        for (left_iv, left_uid), (right_iv, right_uid) in zip(entries, entries[1:]):
            if left_uid == right_uid or left_iv.hi != right_iv.lo:
                continue
            left = system.live_instance(left_uid)
            right = system.live_instance(right_uid)
            if left is not None and right is not None:
                return left, right
        return None

    def neighbor_of(
        self, slot_uid: int
    ) -> tuple["OperatorInstance", "OperatorInstance"] | None:
        """Find a live partition adjacent to ``slot_uid``'s intervals.

        Returns the pair ordered by key range (left, right), where one
        side is ``slot_uid``.  Used by hot-key cool-down to re-absorb a
        carved-out slot into whichever neighbour borders it.
        """
        system = self.system
        instance = system.live_instance(slot_uid)
        if instance is None:
            return None
        routing = system.query_manager.routing_to(instance.op_name)
        entries = list(routing)
        for (left_iv, left_uid), (right_iv, right_uid) in zip(entries, entries[1:]):
            if left_uid == right_uid or left_iv.hi != right_iv.lo:
                continue
            if slot_uid not in (left_uid, right_uid):
                continue
            left = system.live_instance(left_uid)
            right = system.live_instance(right_uid)
            if left is not None and right is not None:
                return left, right
        return None

    # -------------------------------------------------------------- merging

    def scale_in(
        self,
        op_name: str,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Merge one adjacent pair of ``op_name`` partitions.

        Returns whether a merge was started.
        """
        system = self.system
        if self._engine.is_merging(op_name):
            return False
        if self._engine.is_replacing(op_name):
            return False
        if system.query_manager.parallelism_of(op_name) < 2:
            return False
        from repro.core.operator import Operator

        operator = system.query_manager.query.operator(op_name)  # type: ignore[union-attr]
        if operator.stateful and type(operator).merge_values is Operator.merge_values:
            raise ScaleOutError(
                f"operator {op_name} does not define merge_values; "
                "scale in needs it to combine overlapping entries"
            )
        pair = self.mergeable_pair(op_name)
        if pair is None:
            return False
        left, right = pair
        plan = ReconfigPlan(
            kind=KIND_SCALE_IN,
            op_name=op_name,
            old_slots=[left.slot, right.slot],
            parallelism=1,
            state_source=SOURCE_MERGE,
            reason="under-utilised",
            on_complete=on_complete,
        )
        return self._engine.submit(plan)

    def merge_slot(
        self,
        slot_uid: int,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Merge ``slot_uid`` with an adjacent live partition.

        The targeted form of :meth:`scale_in`, used to re-absorb a
        cooled-down hot-key carve-out into its neighbour.  Returns
        whether a merge was started.
        """
        system = self.system
        instance = system.live_instance(slot_uid)
        if instance is None:
            return False
        op_name = instance.op_name
        if self._engine.is_merging(op_name):
            return False
        if self._engine.is_replacing(op_name):
            return False
        if system.query_manager.parallelism_of(op_name) < 2:
            return False
        from repro.core.operator import Operator

        operator = system.query_manager.query.operator(op_name)  # type: ignore[union-attr]
        if operator.stateful and type(operator).merge_values is Operator.merge_values:
            raise ScaleOutError(
                f"operator {op_name} does not define merge_values; "
                "scale in needs it to combine overlapping entries"
            )
        pair = self.neighbor_of(slot_uid)
        if pair is None:
            return False
        left, right = pair
        plan = ReconfigPlan(
            kind=KIND_SCALE_IN,
            op_name=op_name,
            old_slots=[left.slot, right.slot],
            parallelism=1,
            state_source=SOURCE_MERGE,
            reason="hot-key cooled",
            on_complete=on_complete,
        )
        return self._engine.submit(plan)


class ScaleInPolicy:
    """Triggers scale in after sustained low utilisation (the §8 vision).

    When every partition of an operator stays below ``low_threshold`` for
    ``consecutive_reports`` rounds, one adjacent pair is merged.
    """

    def __init__(
        self,
        system: "StreamProcessingSystem",
        coordinator: ScaleInCoordinator,
        low_threshold: float = 0.25,
        consecutive_reports: int = 3,
    ) -> None:
        self.system = system
        self.coordinator = coordinator
        self.low_threshold = low_threshold
        self.consecutive_reports = consecutive_reports
        self._consecutive: dict[str, int] = {}

    def observe(self, reports) -> list[str]:
        """Feed one round of utilisation reports; returns merged ops."""
        by_op: dict[str, list[float]] = {}
        for report in reports:
            by_op.setdefault(report.op_name, []).append(report.utilization)
        merged = []
        for op_name, utilizations in by_op.items():
            if len(utilizations) < 2:
                continue
            if max(utilizations) < self.low_threshold:
                count = self._consecutive.get(op_name, 0) + 1
                self._consecutive[op_name] = count
                if count >= self.consecutive_reports:
                    if self.coordinator.scale_in(op_name):
                        merged.append(op_name)
                        self._consecutive[op_name] = 0
            else:
                self._consecutive[op_name] = 0
        return merged
