"""Scale in: merging operator partitions (§3.3, §8).

The paper lists merging two operators' state as the natural extension of
the primitive set ("to scale in operators when resources are
under-utilised, the state of two operators can be merged") and names
elastic scale in as future work.

The implementation uses *quiesce-and-merge*, which is exact:

1. pick two live partitions whose key intervals are adjacent;
2. stop their upstream operators (tuples buffer upstream, Alg. 3 style);
3. let both partitions drain their input queues — afterwards, for every
   input connection, every tuple at or below the per-connection maximum
   has been processed by exactly the partition owning its key, so the
   element-wise max of the two τ vectors is a consistent merged τ;
4. merge the live state snapshots with the operator's ``merge_values``,
   restore onto a pooled VM, swap routing, re-bucket upstream buffers,
   restart the upstreams, and release both old VMs.

Scale in is triggered manually or by :class:`ScaleInPolicy`, which
watches for sustained low utilisation — the inverse of the §5.1 policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.checkpoint import BackupStore, Checkpoint
from repro.core.execution import Slot
from repro.errors import ScaleOutError
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem

#: Quiescence poll period while draining the two partitions.
_DRAIN_POLL = 0.1
#: Consecutive idle polls required.
_DRAIN_QUIET = 2


class _MergeOperation:
    def __init__(
        self,
        op_name: str,
        left: "OperatorInstance",
        right: "OperatorInstance",
        upstreams: list["OperatorInstance"],
        on_complete: Callable[[float], None] | None,
        started_at: float,
    ) -> None:
        self.op_name = op_name
        self.left = left
        self.right = right
        self.upstreams = upstreams
        self.on_complete = on_complete
        self.started_at = started_at
        self.quiet_polls = 0
        self.merged_ckpt: Checkpoint | None = None
        self.new_slot: Slot | None = None
        self.committed = False
        self.aborted = False


class ScaleInCoordinator:
    """Merges two adjacent partitions of an operator into one."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        self._busy_ops: set[str] = set()
        self.merges_completed = 0
        self.merges_aborted = 0

    def is_busy(self, op_name: str) -> bool:
        """Whether a merge of ``op_name`` is in flight."""
        return op_name in self._busy_ops

    # ------------------------------------------------------------ selection

    def mergeable_pair(
        self, op_name: str
    ) -> tuple["OperatorInstance", "OperatorInstance"] | None:
        """Find two live partitions owning adjacent key intervals."""
        system = self.system
        routing = system.query_manager.routing_to(op_name)
        entries = list(routing)
        for (left_iv, left_uid), (right_iv, right_uid) in zip(entries, entries[1:]):
            if left_uid == right_uid or left_iv.hi != right_iv.lo:
                continue
            left = system.live_instance(left_uid)
            right = system.live_instance(right_uid)
            if left is not None and right is not None:
                return left, right
        return None

    # -------------------------------------------------------------- merging

    def scale_in(
        self,
        op_name: str,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Merge one adjacent pair of ``op_name`` partitions.

        Returns whether a merge was started.
        """
        system = self.system
        if op_name in self._busy_ops:
            return False
        if system.scale_out is not None and system.scale_out.is_busy(op_name):
            return False
        if system.query_manager.parallelism_of(op_name) < 2:
            return False
        from repro.core.operator import Operator

        operator = system.query_manager.query.operator(op_name)  # type: ignore[union-attr]
        if operator.stateful and type(operator).merge_values is Operator.merge_values:
            raise ScaleOutError(
                f"operator {op_name} does not define merge_values; "
                "scale in needs it to combine overlapping entries"
            )
        pair = self.mergeable_pair(op_name)
        if pair is None:
            return False
        left, right = pair
        upstreams = []
        for up_name in system.query_manager.upstream_of(op_name):
            for slot in system.query_manager.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None:
                    upstreams.append(upstream)
        operation = _MergeOperation(
            op_name, left, right, upstreams, on_complete, system.sim.now
        )
        self._busy_ops.add(op_name)
        system.metrics.mark_event(
            system.sim.now, "scale_in_started", f"{left.slot!r} + {right.slot!r}"
        )
        # Stop the upstreams: new tuples buffer there while the two
        # partitions drain what is already queued or in flight.
        for upstream in upstreams:
            upstream.pause()
        system.sim.schedule(_DRAIN_POLL, self._poll_drain, operation)
        return True

    def _poll_drain(self, operation: _MergeOperation) -> None:
        system = self.system
        if operation.aborted:
            return
        left, right = operation.left, operation.right
        if not (left.alive and left.vm.alive and right.alive and right.vm.alive):
            self._abort(operation, "partition failed while draining")
            return
        idle = (
            not left.vm.busy
            and left.vm.queue_length == 0
            and not right.vm.busy
            and right.vm.queue_length == 0
        )
        operation.quiet_polls = operation.quiet_polls + 1 if idle else 0
        if operation.quiet_polls < _DRAIN_QUIET:
            system.sim.schedule(_DRAIN_POLL, self._poll_drain, operation)
            return
        self._merge_snapshots(operation)

    def _merge_snapshots(self, operation: _MergeOperation) -> None:
        system = self.system
        left, right = operation.left, operation.right
        operator = system.query_manager.query.operator(operation.op_name)  # type: ignore[union-attr]
        merge_value = (
            operator.merge_values if operator.stateful else (lambda a, b: a)
        )
        merged_state = left.state.snapshot().merge(
            right.state.snapshot(), merge_value
        )
        buffers = {name: buf.snapshot() for name, buf in left.buffers.items()}
        for name, buf in right.buffers.items():
            if name in buffers:
                for dest in buf.destinations():
                    for tup in buf.tuples_for(dest):
                        buffers[name].append(dest, tup)
            else:
                buffers[name] = buf.snapshot()
        operation.merged_ckpt = Checkpoint(
            op_name=operation.op_name,
            slot_uid=-1,  # assigned once the new slot exists
            state=merged_state,
            buffers=buffers,
            taken_at=system.sim.now,
            seq=max(left._ckpt_seq, right._ckpt_seq) + 1,
        )
        system.pool.acquire(lambda vm: self._restore(operation, vm))

    def _restore(self, operation: _MergeOperation, vm: VirtualMachine) -> None:
        system = self.system
        if operation.aborted:
            system.pool.give_back(vm)
            return
        if not (operation.left.vm.alive and operation.right.vm.alive):
            system.pool.give_back(vm)
            self._abort(operation, "partition failed before restore")
            return
        qm = system.query_manager
        operation.new_slot = qm.new_slot(
            operation.op_name, operation.left.slot.index
        )
        assert operation.merged_ckpt is not None
        operation.merged_ckpt.slot_uid = operation.new_slot.uid
        instance = system.deployment.build_instance(operation.new_slot, vm)
        system.deployment.wire_routing(instance)
        instance.restore_from(operation.merged_ckpt)
        system.deployment.configure_services(instance)
        self._commit(operation, instance)

    def _commit(self, operation: _MergeOperation, instance) -> None:
        system = self.system
        qm = system.query_manager
        operation.committed = True
        left, right = operation.left, operation.right
        new_uid = instance.uid

        qm.replace_slots(
            operation.op_name, [left.slot, right.slot], [operation.new_slot]
        )
        routing = qm.routing_to(operation.op_name)
        routing = routing.reassign(left.uid, new_uid)
        routing = routing.merge_targets(new_uid, right.uid)
        qm.store_routing(operation.op_name, routing)

        # Initial backup for the merged partition (merge is fault tolerant
        # from the instant it commits).
        backup_vm = system.choose_backup_vm(instance)
        if backup_vm is not None:
            store = system.backup_stores.setdefault(backup_vm.vm_id, BackupStore())
            store.store(operation.merged_ckpt)
            system.backup_locations[new_uid] = backup_vm

        for old in (left, right):
            system.instances.pop(old.uid, None)
            system.retire_backup_store(old.vm)
            old.stop(release_vm=True)
            system.drop_backup(old.uid)
            if system.detector is not None:
                system.detector.tracker.forget(old.uid)
                system.detector.policy.forget_slot(old.uid)

        for upstream in operation.upstreams:
            if not upstream.alive:
                continue
            upstream.set_routing(operation.op_name, routing)
            upstream.repartition_buffer(operation.op_name)
            upstream.resume()
        system.record_vm_count()
        self.merges_completed += 1
        self._busy_ops.discard(operation.op_name)
        duration = system.sim.now - operation.started_at
        system.metrics.mark_event(
            system.sim.now,
            "scale_in_complete",
            f"{operation.op_name} -> {instance.slot!r} {duration:.3f}s",
        )
        if operation.on_complete is not None:
            operation.on_complete(duration)

    def _abort(self, operation: _MergeOperation, why: str) -> None:
        if operation.committed or operation.aborted:
            return
        operation.aborted = True
        self.merges_aborted += 1
        self._busy_ops.discard(operation.op_name)
        for upstream in operation.upstreams:
            if upstream.alive:
                upstream.resume()
        self.system.metrics.mark_event(
            self.system.sim.now, "scale_in_aborted", f"{operation.op_name}: {why}"
        )


class ScaleInPolicy:
    """Triggers scale in after sustained low utilisation (the §8 vision).

    When every partition of an operator stays below ``low_threshold`` for
    ``consecutive_reports`` rounds, one adjacent pair is merged.
    """

    def __init__(
        self,
        system: "StreamProcessingSystem",
        coordinator: ScaleInCoordinator,
        low_threshold: float = 0.25,
        consecutive_reports: int = 3,
    ) -> None:
        self.system = system
        self.coordinator = coordinator
        self.low_threshold = low_threshold
        self.consecutive_reports = consecutive_reports
        self._consecutive: dict[str, int] = {}

    def observe(self, reports) -> list[str]:
        """Feed one round of utilisation reports; returns merged ops."""
        by_op: dict[str, list[float]] = {}
        for report in reports:
            by_op.setdefault(report.op_name, []).append(report.utilization)
        merged = []
        for op_name, utilizations in by_op.items():
            if len(utilizations) < 2:
                continue
            if max(utilizations) < self.low_threshold:
                count = self._consecutive.get(op_name, 0) + 1
                self._consecutive[op_name] = count
                if count >= self.consecutive_reports:
                    if self.coordinator.scale_in(op_name):
                        merged.append(op_name)
                        self._consecutive[op_name] = 0
            else:
                self._consecutive[op_name] = 0
        return merged
