"""Hot-key detection and fine-grained carve-out management.

Interval-based splitting (§4.3) assumes load spreads across the key
range: halving a partition's interval roughly halves its load.  Under
Zipf-skewed traffic that assumption breaks — once a single key carries
most of a partition's weight, every further split just moves the hot key
into a narrower slot that is exactly as overloaded, and the scaling
policy burns the VM budget without relieving the bottleneck.

The :class:`HotKeyManager` closes that gap.  It attaches a Space-Saving
heavy-hitter sketch to every worker's admission path, and when a slot is
both *hot* (utilisation at or above the scaling threshold) and *skewed*
(its top key carries at least ``hot_key_share`` of the processed weight)
for ``hot_key_min_reports`` consecutive report rounds, it carves the hot
key's singleton interval ``[pos, pos+1)`` out into a dedicated slot via
:meth:`ScaleOutCoordinator.carve_out_slot` — a partial fluid migration
that preserves exactly-once delivery.  When a carved slot later cools
below ``hot_key_cool_util`` for ``hot_key_cool_reports`` rounds, the
manager re-absorbs it into an adjacent partition with a targeted
scale-in merge.

Everything here is off by default (``ScalingConfig.hot_key_enabled``);
with it disabled no sketch is ever attached and the data plane is
byte-identical to a build without this module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.state import KeyInterval
from repro.core.tuples import stable_hash
from repro.scaling.reports import HotKeyReport, SpaceSavingSketch, UtilizationReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import StreamProcessingSystem


class HotKeyManager:
    """Per-round hot-key carve-out / cool-down controller."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        self.config = system.config.scaling
        #: slot_uid -> consecutive rounds hot *and* skewed.
        self._hot_rounds: dict[int, int] = {}
        #: carved slot_uid -> consecutive rounds below the cool threshold.
        self._cool_rounds: dict[int, int] = {}
        #: ops whose operator cannot merge state: cool-down is disabled.
        self._unmergeable_ops: set[str] = set()
        self.carve_outs_started = 0
        self.reabsorbs_started = 0

    # ----------------------------------------------------------- sketches

    def attach_sketches(self) -> None:
        """Give every live worker instance an admission-path sketch."""
        for instance in self.system.worker_instances():
            if instance.key_sketch is None:
                instance.key_sketch = SpaceSavingSketch(
                    self.config.hot_key_sketch_size
                )

    def hot_key_reports(
        self, reports: list[UtilizationReport]
    ) -> list[HotKeyReport]:
        """Drain each reported slot's sketch into a heavy-hitter summary."""
        out: list[HotKeyReport] = []
        for report in reports:
            instance = self.system.live_instance(report.slot_uid)
            if instance is None or instance.key_sketch is None:
                continue
            sketch = instance.key_sketch
            top = sketch.top(1)
            if top and sketch.total > 0:
                key, weight = top[0]
                share = min(1.0, weight / sketch.total)
            else:
                key, share = None, 0.0
            out.append(
                HotKeyReport(
                    report.time,
                    report.op_name,
                    report.slot_uid,
                    key,
                    share,
                    sketch.total,
                )
            )
            sketch.reset()
        return out

    # -------------------------------------------------------------- round

    def observe(self, reports: list[UtilizationReport]) -> None:
        """One detector round: sample sketches, carve and re-absorb.

        Runs *before* the interval-splitting policy sees the reports so
        a carve-out claims the slot first; a started carve also arms the
        policy's cooldown for the source slot, suppressing the futile
        interval split the same round.
        """
        self.attach_sketches()
        hot_reports = {r.slot_uid: r for r in self.hot_key_reports(reports)}
        cfg = self.config
        for report in reports:
            hot = hot_reports.get(report.slot_uid)
            width = self._owned_width(report.op_name, report.slot_uid)
            if width == 1:
                self._observe_carved(report)
                continue
            self._cool_rounds.pop(report.slot_uid, None)
            skewed = (
                hot is not None
                and hot.key is not None
                and hot.share >= cfg.hot_key_share
            )
            if report.above(cfg.threshold) and skewed and width > 1:
                count = self._hot_rounds.get(report.slot_uid, 0) + 1
                self._hot_rounds[report.slot_uid] = count
                if count >= cfg.hot_key_min_reports:
                    assert hot is not None
                    if self._carve(report, hot):
                        self._hot_rounds[report.slot_uid] = 0
            else:
                self._hot_rounds[report.slot_uid] = 0

    def _observe_carved(self, report: UtilizationReport) -> None:
        """Cool-down bookkeeping for a singleton (carved) slot."""
        cfg = self.config
        self._hot_rounds.pop(report.slot_uid, None)
        if report.op_name in self._unmergeable_ops:
            return
        if report.utilization < cfg.hot_key_cool_util:
            count = self._cool_rounds.get(report.slot_uid, 0) + 1
            self._cool_rounds[report.slot_uid] = count
            if count >= cfg.hot_key_cool_reports:
                if self._reabsorb(report):
                    self._cool_rounds[report.slot_uid] = 0
        else:
            self._cool_rounds[report.slot_uid] = 0

    # ------------------------------------------------------------- actions

    def _carve(self, report: UtilizationReport, hot: HotKeyReport) -> bool:
        system = self.system
        coordinator = system.scale_out
        engine = system.reconfig
        if coordinator is None or engine is None:
            return False
        if engine.is_replacing(report.op_name) or engine.is_merging(
            report.op_name
        ):
            return False
        budget = self._vm_budget_left()
        if budget is not None and budget < 1:
            return False
        position = stable_hash(hot.key)
        if not self._owns_position(report.op_name, report.slot_uid, position):
            return False
        started = coordinator.carve_out_slot(
            report.slot_uid,
            [KeyInterval(position, position + 1)],
            reason=f"hot-key share={hot.share:.2f}",
        )
        if started:
            self.carve_outs_started += 1
            detector = system.detector
            if detector is not None:
                # The source slot is being relieved; suppress the
                # threshold policy's own split of it for a cooldown.
                detector.policy.note_scale_out(report.slot_uid, system.sim.now)
        return started

    def _reabsorb(self, report: UtilizationReport) -> bool:
        system = self.system
        scale_in = system.scale_in
        if scale_in is None:
            return False
        operator = system.query_manager.query.operator(report.op_name)  # type: ignore[union-attr]
        from repro.core.operator import Operator

        if (
            operator.stateful
            and type(operator).merge_values is Operator.merge_values
        ):
            self._unmergeable_ops.add(report.op_name)
            return False
        started = scale_in.merge_slot(report.slot_uid)
        if started:
            self.reabsorbs_started += 1
            system.telemetry.increment("scaling.hot_key_reabsorbs")
        return started

    # ------------------------------------------------------------- helpers

    def _owned_width(self, op_name: str, slot_uid: int) -> int:
        routing = self.system.query_manager.routing_to(op_name)
        return sum(iv.width for iv in routing.intervals_of(slot_uid))

    def _owns_position(self, op_name: str, slot_uid: int, position: int) -> bool:
        routing = self.system.query_manager.routing_to(op_name)
        return any(
            position in iv for iv in routing.intervals_of(slot_uid)
        )

    def _vm_budget_left(self) -> int | None:
        max_vms = self.system.config.scaling.max_vms
        if max_vms is None:
            return None
        return max(0, max_vms - self.system.worker_vm_count())

    def forget_slot(self, slot_uid: int) -> None:
        """Drop tracking for a retired slot."""
        self._hot_rounds.pop(slot_uid, None)
        self._cool_rounds.pop(slot_uid, None)
