"""The fault-tolerant scale-out coordinator (§4.3, Algorithm 3).

``scale-out-operator(o, π)`` replaces one operator partition with π new
partitions built from the partition's *backed-up checkpoint* — never from
the live (overloaded or dead) instance.  The same machinery therefore
serves three purposes:

* **scale out** of a bottleneck partition (π ≥ 2, old instance alive);
* **serial recovery** of a failed partition (:meth:`recover_slot`, π = 1,
  slot-preserving so downstream duplicate filters keep working exactly);
* **parallel recovery** (π ≥ 2 with the old instance dead), which splits
  the replay work across several new partitions (§4.2).

Every step is asynchronous and costed: partitioning occupies the backup
VM's CPU, state moves over the network, new VMs come from the pool, and
upstream operators pause while their routing and buffers repartition —
which is exactly what produces the paper's post-scale-out latency spikes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.checkpoint import BackupStore, Checkpoint
from repro.core.execution import Slot
from repro.core.partition import partition_checkpoint, split_interval_groups
from repro.core.tuples import stable_hash
from repro.errors import ScaleOutError
from repro.runtime.instance import REPLAY_DEDUP, REPLAY_DROP
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem

#: Abort an in-flight scale out that has not committed after this long.
_WATCHDOG_SECONDS = 600.0


class _Operation:
    """Mutable context for one in-flight scale-out/recovery operation."""

    def __init__(
        self,
        op_name: str,
        old_slot: Slot,
        parallelism: int,
        ckpt: Checkpoint,
        reason: str,
        is_recovery: bool,
        failure_time: float | None,
        on_complete: Callable[[float], None] | None,
        started_at: float,
    ) -> None:
        self.op_name = op_name
        self.old_slot = old_slot
        self.parallelism = parallelism
        self.ckpt = ckpt
        self.reason = reason
        self.is_recovery = is_recovery
        self.failure_time = failure_time
        self.on_complete = on_complete
        self.started_at = started_at
        self.suppress: dict[int, int] | None = None
        self.groups: list | None = None
        self.new_slots: list[Slot] = []
        self.parts: list[Checkpoint] = []
        self.partition_done = False
        self.vms: list[VirtualMachine] = []
        self.instances: list["OperatorInstance"] = []
        self.pending_drains = 0
        self.backup_vm: VirtualMachine | None = None
        self.committed = False
        self.aborted = False
        self.finished = False


class ScaleOutCoordinator:
    """Implements Algorithm 3 on top of the state management primitives."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        #: In-flight operations keyed by the slot being replaced.
        self._busy_slots: dict[int, str] = {}
        self._active_ops: list[_Operation] = []
        self.operations_started = 0
        self.operations_completed = 0
        self.operations_aborted = 0

    def is_busy(self, op_name: str) -> bool:
        """Whether any partition of ``op_name`` is being replaced."""
        return op_name in self._busy_slots.values()

    def is_busy_slot(self, slot_uid: int) -> bool:
        """Whether this specific slot is being replaced."""
        return slot_uid in self._busy_slots

    # ------------------------------------------------------------ scale out

    def scale_out_slot(
        self,
        slot_uid: int,
        parallelism: int = 2,
        reason: str = "bottleneck",
        failure_time: float | None = None,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Replace slot ``slot_uid`` with ``parallelism`` new partitions.

        Returns whether the operation was started.  Works for live slots
        (scale out, with output suppression from the frozen instance) and
        dead slots (parallel recovery).
        """
        system = self.system
        if parallelism < 1:
            raise ScaleOutError(f"parallelism must be >= 1: {parallelism}")
        old = system.instance(slot_uid)
        if old is None:
            return False
        if slot_uid in self._busy_slots:
            return False
        if system.scale_in is not None and system.scale_in.is_busy(old.op_name):
            return False  # the operator is being merged right now
        ckpt = system.backup_of(slot_uid)
        if ckpt is None:
            system.metrics.mark_event(
                system.sim.now, "scale_out_aborted", f"{old.slot!r}: no backup"
            )
            return False
        is_recovery = failure_time is not None or not (old.alive and old.vm.alive)
        if not is_recovery:
            # Plain scale outs respect a global concurrency cap: freezing
            # and replaying many partitions at once collapses throughput.
            cap = system.config.scaling.max_concurrent_operations
            if cap is not None and len(self._busy_slots) >= cap:
                return False
        op = _Operation(
            old.op_name,
            old.slot,
            parallelism,
            ckpt,
            reason,
            is_recovery,
            failure_time,
            on_complete,
            system.sim.now,
        )
        # The bottleneck operator keeps processing while the new VMs and
        # state partitions are prepared (§4.3: "it avoids adding further
        # load to operator o"); it is only frozen at commit time.
        self._busy_slots[slot_uid] = op.op_name
        # Freeze upstream-buffer trimming for this slot: the checkpoint we
        # will partition must stay covered by the buffered tuples even if
        # the (still running) old instance keeps checkpointing meanwhile.
        system.trim_locks.add(slot_uid)
        self.operations_started += 1
        system.metrics.mark_event(
            system.sim.now,
            "scale_out_started",
            f"{old.slot!r} -> pi={parallelism} ({reason})",
        )
        self._active_ops.append(op)
        for _ in range(parallelism):
            system.pool.acquire(lambda vm, op=op: self._vm_ready(op, vm))
        system.sim.schedule(_WATCHDOG_SECONDS, self._watchdog, op)
        return True

    def _prepare(self, op: _Operation) -> None:
        """All VMs are ready: partition the *most recent* checkpoint.

        Deferred until now so that the old instance kept checkpointing
        (and upstream buffers kept being trimmed) while the operation
        waited on VM provisioning — the replay window stays at most one
        checkpoint interval regardless of how long acquisition took.
        """
        system = self.system
        if op.aborted:
            return
        old = system.instances.get(op.old_slot.uid)
        if old is not None and old.alive:
            old.stop_checkpointing()
        fresh = system.backup_of(op.old_slot.uid)
        if fresh is not None:
            op.ckpt = fresh
        backup_vm = system.backup_locations.get(op.old_slot.uid)
        if backup_vm is None or not backup_vm.alive:
            self._abort(op, "backup VM unavailable")
            return
        op.backup_vm = backup_vm
        backup_vm.on_failure(lambda _vm: self._abort(op, "backup VM failed"))
        # Partitioning the checkpoint costs CPU *on the backup VM*, not on
        # the overloaded operator (§4.3 benefit ii).
        cfg = system.config.checkpoint
        cost = cfg.serialize_base_seconds + len(op.ckpt.state) * (
            cfg.serialize_seconds_per_entry
        )
        backup_vm.submit(cost, self._partitioned, op, backup_vm)

    def _partitioned(self, op: _Operation, backup_vm: VirtualMachine) -> None:
        if op.aborted:
            return
        system = self.system
        routing = system.query_manager.routing_to(op.op_name)
        owned = routing.intervals_of(op.old_slot.uid)
        guide = None
        if len(op.ckpt.state) >= 4 * op.parallelism:
            guide = [stable_hash(key) for key in op.ckpt.state.keys()]
        op.groups = split_interval_groups(owned, op.parallelism, guide)
        op.new_slots = [
            system.query_manager.new_slot(op.op_name, i)
            for i in range(op.parallelism)
        ]
        op.parts = partition_checkpoint(
            op.ckpt, op.groups, [slot.uid for slot in op.new_slots]
        )
        # Store each partition as the new partition's initial backup
        # (Algorithm 2, line 8): the scale out itself is fault tolerant.
        store = system.backup_stores.setdefault(backup_vm.vm_id, BackupStore())
        for part in op.parts:
            store.store(part)
            system.backup_locations[part.slot_uid] = backup_vm
        op.partition_done = True
        self._maybe_transfer(op, backup_vm)

    def _vm_ready(self, op: _Operation, vm: VirtualMachine) -> None:
        if op.aborted:
            self.system.pool.give_back(vm)
            return
        op.vms.append(vm)
        if len(op.vms) == op.parallelism:
            self._prepare(op)

    def _maybe_transfer(self, op: _Operation, backup_vm: VirtualMachine) -> None:
        if not op.partition_done or len(op.vms) < op.parallelism:
            return
        if getattr(op, "_transfers_started", False):
            return
        op._transfers_started = True
        cfg = self.system.config.checkpoint
        for part, slot, vm in zip(op.parts, op.new_slots, op.vms):
            size = part.size_bytes(cfg.bytes_per_entry, cfg.bytes_per_tuple)
            self.system.network.send(
                backup_vm, vm, size, self._restore_one, op, part, slot, vm
            )

    def _restore_one(
        self, op: _Operation, part: Checkpoint, slot: Slot, vm: VirtualMachine
    ) -> None:
        if op.aborted:
            self.system.pool.give_back(vm)
            return
        system = self.system
        instance = system.deployment.deploy_replacement(slot, vm)
        instance.restore_from(part)
        system.deployment.configure_services(instance)
        op.instances.append(instance)
        if len(op.instances) == op.parallelism:
            self._commit(op)

    # --------------------------------------------------------------- commit

    def _commit(self, op: _Operation) -> None:
        system = self.system
        qm = system.query_manager
        op.committed = True
        assert op.groups is not None

        # Freeze the old instance now: everything it processed up to this
        # instant was already emitted downstream, so the new partitions
        # suppress re-emission for inputs at or below these positions
        # (exactly-once hand-over) while still rebuilding state from them.
        system.trim_locks.discard(op.old_slot.uid)
        frozen = system.instances.get(op.old_slot.uid)
        if frozen is not None and frozen.alive and frozen.vm.alive:
            op.suppress = frozen.freeze_positions()
        for instance in op.instances:
            instance.set_suppression(op.suppress)

        # Execution graph and authoritative routing state.
        qm.replace_slots(op.op_name, [op.old_slot], op.new_slots)
        replacements = [
            (interval, slot.uid)
            for group, slot in zip(op.groups, op.new_slots)
            for interval in group
        ]
        old_routing = qm.routing_to(op.op_name)
        new_routing = old_routing.replace_target(op.old_slot.uid, replacements)
        qm.store_routing(op.op_name, new_routing)

        # Retire the old instance and its backup (Algorithm 3, line 8;
        # the VM is only released now that restore-state has completed).
        old = system.instances.pop(op.old_slot.uid, None)
        if old is not None and old.alive:
            system.retire_backup_store(old.vm)
            old.stop(release_vm=True)
        system.drop_backup(op.old_slot.uid)
        if system.detector is not None:
            system.detector.tracker.forget(op.old_slot.uid)
            system.detector.policy.forget_slot(op.old_slot.uid)

        # Replay the restored output buffers to downstream operators
        # (Algorithm 3, line 7); receivers drop what they already saw.
        for instance in op.instances:
            instance.replay_all_buffers()

        # Update every upstream operator: stop, repartition routing and
        # buffers, replay unprocessed tuples, restart (lines 9-14).
        upstreams: list["OperatorInstance"] = []
        for up_name in qm.upstream_of(op.op_name):
            for slot in qm.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None:
                    upstreams.append(upstream)
        sent: dict[int, int] = {slot.uid: 0 for slot in op.new_slots}
        for upstream in upstreams:
            upstream.pause()
            upstream.set_routing(op.op_name, new_routing)
            upstream.repartition_buffer(op.op_name)
        for upstream in upstreams:
            for slot in op.new_slots:
                sent[slot.uid] += upstream.replay_buffer_to(
                    slot.uid, flag_replay=True
                )
        op.pending_drains = len(op.instances)
        for instance in op.instances:
            instance.replay_mode = REPLAY_DEDUP
            instance.expect_replays(
                sent[instance.uid],
                lambda op=op: self._one_drained(op),
                flagged_only=True,
            )
        for upstream in upstreams:
            upstream.resume()

        system.record_vm_count()
        kind = "recovery_restored" if op.is_recovery else "scale_out"
        system.metrics.mark_event(
            system.sim.now, kind, f"{op.op_name} pi={op.parallelism}"
        )

    def _one_drained(self, op: _Operation) -> None:
        op.pending_drains -= 1
        if op.pending_drains > 0 or op.finished:
            return
        self._finish(op)

    def _finish(self, op: _Operation) -> None:
        system = self.system
        op.finished = True
        if op in self._active_ops:
            self._active_ops.remove(op)
        for instance in op.instances:
            instance.replay_mode = REPLAY_DROP
        self._busy_slots.pop(op.old_slot.uid, None)
        self.operations_completed += 1
        origin = op.failure_time if op.failure_time is not None else op.started_at
        duration = system.sim.now - origin
        if op.is_recovery:
            system.metrics.mark_event(
                system.sim.now, "recovery_complete", f"{op.op_name} {duration:.3f}s"
            )
            system.metrics.time_series_for("recovery_time").record(
                system.sim.now, duration
            )
        else:
            system.metrics.mark_event(
                system.sim.now, "scale_out_complete", f"{op.op_name} {duration:.3f}s"
            )
            system.metrics.time_series_for("scale_out_duration").record(
                system.sim.now, duration
            )
        if op.on_complete is not None:
            op.on_complete(duration)

    # ------------------------------------------------------------- recovery

    def recover_slot(
        self,
        slot_uid: int,
        failure_time: float,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Serial recovery: restore the failed slot on a new VM (π = 1).

        Slot-preserving: the replacement keeps the slot uid and resumes
        the checkpoint's output clock, so downstream duplicate filters
        drop its re-emissions exactly (§3.2 restore semantics).
        """
        system = self.system
        failed = system.instance(slot_uid)
        if failed is None:
            return False
        if slot_uid in self._busy_slots:
            return False
        ckpt = system.backup_of(slot_uid)
        if ckpt is None:
            system.metrics.mark_event(
                system.sim.now, "unrecoverable", f"{failed.slot!r}: no backup"
            )
            return False
        op = _Operation(
            failed.op_name,
            failed.slot,
            1,
            ckpt,
            "failure",
            True,
            failure_time,
            on_complete,
            system.sim.now,
        )
        self._busy_slots[slot_uid] = op.op_name
        system.trim_locks.add(slot_uid)
        self.operations_started += 1
        op.backup_vm = system.backup_locations.get(slot_uid)
        self._active_ops.append(op)
        if op.backup_vm is not None:
            op.backup_vm.on_failure(
                lambda _vm: self._abort(op, "backup VM failed")
            )
        system.metrics.mark_event(
            system.sim.now, "recovery_started", repr(failed.slot)
        )
        system.pool.acquire(lambda vm: self._recovery_vm_ready(op, vm))
        system.sim.schedule(_WATCHDOG_SECONDS, self._watchdog, op)
        return True

    def _recovery_vm_ready(self, op: _Operation, vm: VirtualMachine) -> None:
        if op.aborted:
            self.system.pool.give_back(vm)
            return
        system = self.system
        backup_vm = op.backup_vm
        if backup_vm is None or not backup_vm.alive:
            self.system.pool.give_back(vm)
            self._abort(op, "backup VM lost before restore")
            return
        cfg = system.config.checkpoint
        size = op.ckpt.size_bytes(cfg.bytes_per_entry, cfg.bytes_per_tuple)
        system.network.send(
            backup_vm, vm, size, self._recovery_restore, op, vm
        )

    def _recovery_restore(self, op: _Operation, vm: VirtualMachine) -> None:
        if op.aborted:
            vm.release()
            return
        system = self.system
        qm = system.query_manager
        # A checkpoint that was in flight at crash time may have landed
        # after recovery started; restore the freshest one available.
        fresh = system.backup_of(op.old_slot.uid)
        if fresh is not None:
            op.ckpt = fresh
        system.trim_locks.discard(op.old_slot.uid)
        instance = system.deployment.deploy_replacement(op.old_slot, vm)
        instance.restore_from(op.ckpt)
        system.deployment.configure_services(instance)
        op.committed = True
        instance.replay_all_buffers()
        upstreams: list["OperatorInstance"] = []
        for up_name in qm.upstream_of(op.op_name):
            for slot in qm.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None and upstream.uid != instance.uid:
                    upstreams.append(upstream)
        for upstream in upstreams:
            upstream.pause()
        sent = 0
        for upstream in upstreams:
            sent += upstream.replay_buffer_to(instance.uid, flag_replay=True)
        op.pending_drains = 1
        op.instances = [instance]
        instance.replay_mode = REPLAY_DEDUP
        instance.expect_replays(
            sent, lambda: self._one_drained(op), flagged_only=True
        )
        for upstream in upstreams:
            upstream.resume()
        system.record_vm_count()
        system.metrics.mark_event(
            system.sim.now, "recovery_restored", repr(op.old_slot)
        )

    # ---------------------------------------------------------------- abort

    def abort_operations_on_backup_vm(self, vm: VirtualMachine) -> None:
        """Abort in-flight operations whose state lives on a retiring VM."""
        for op in list(self._active_ops):
            if (
                op.backup_vm is not None
                and op.backup_vm.vm_id == vm.vm_id
                and not op.committed
            ):
                self._abort(op, "backup VM retired")

    def _abort(self, op: _Operation, why: str) -> None:
        if op.committed or op.aborted or op.finished:
            return
        system = self.system
        op.aborted = True
        self.operations_aborted += 1
        self._busy_slots.pop(op.old_slot.uid, None)
        system.trim_locks.discard(op.old_slot.uid)
        # Re-arm checkpointing if the (still live) old instance had its
        # daemon stopped during preparation.
        survivor = system.instances.get(op.old_slot.uid)
        if survivor is not None and survivor.alive:
            survivor.start_checkpointing()
        if op in self._active_ops:
            self._active_ops.remove(op)
        # The frozen bottleneck continues unaffected (§4.3 benefit iii).
        old = system.instance(op.old_slot.uid)
        if old is not None and old.alive:
            old.resume()
        for vm in op.vms:
            self.system.pool.give_back(vm)
        system.metrics.mark_event(
            system.sim.now, "scale_out_aborted", f"{op.op_name}: {why}"
        )
        if op.is_recovery and system.recovery is not None:
            # The operator is still dead; retry once a fresh backup exists.
            failed = system.instances.get(op.old_slot.uid)
            if failed is not None and not failed.alive:
                assert op.failure_time is not None
                system.sim.schedule(
                    1.0, system.recovery.retry_recovery, failed, op.failure_time
                )

    def _watchdog(self, op: _Operation) -> None:
        if not op.committed and not op.finished:
            self._abort(op, "watchdog timeout")
