"""Scale-out policy adapter (§4.3, Algorithm 3).

``scale-out-operator(o, π)`` replaces one operator partition with π new
partitions built from the partition's *backed-up checkpoint* — never from
the live (overloaded or dead) instance.  The same machinery therefore
serves three purposes:

* **scale out** of a bottleneck partition (π ≥ 2, old instance alive);
* **serial recovery** of a failed partition (:meth:`recover_slot`, π = 1,
  slot-preserving so downstream duplicate filters keep working exactly);
* **parallel recovery** (π ≥ 2 with the old instance dead), which splits
  the replay work across several new partitions (§4.2).

All three are literally the same mechanism: this coordinator only
validates the request and constructs a
:class:`~repro.scaling.reconfig.ReconfigPlan` with a *backup-checkpoint*
state source; the shared phase machine in
:class:`~repro.scaling.reconfig.ReconfigurationEngine` does the rest
(VM acquisition, partitioning on the backup VM's CPU, network transfer,
restore, routing swap, replay drain, aborts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ScaleOutError
from repro.scaling.reconfig import (
    KIND_RECOVERY,
    KIND_SCALE_OUT,
    SOURCE_BACKUP,
    ReconfigPlan,
)
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scaling.reconfig import ReconfigurationEngine
    from repro.runtime.system import StreamProcessingSystem


class ScaleOutCoordinator:
    """Builds backup-sourced :class:`ReconfigPlan`\\ s for the engine."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    @property
    def _engine(self) -> "ReconfigurationEngine":
        assert self.system.reconfig is not None
        return self.system.reconfig

    # Counters live in the engine; keep the historical names readable.
    @property
    def operations_started(self) -> int:
        return self._engine.operations_started

    @property
    def operations_completed(self) -> int:
        return self._engine.operations_completed

    @property
    def operations_aborted(self) -> int:
        return self._engine.operations_aborted

    def is_busy(self, op_name: str) -> bool:
        """Whether any partition of ``op_name`` is being replaced."""
        return self._engine.is_replacing(op_name)

    def is_busy_slot(self, slot_uid: int) -> bool:
        """Whether this specific slot is being replaced."""
        return self._engine.is_busy_slot(slot_uid)

    # ------------------------------------------------------------ scale out

    def scale_out_slot(
        self,
        slot_uid: int,
        parallelism: int = 2,
        reason: str = "bottleneck",
        failure_time: float | None = None,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Replace slot ``slot_uid`` with ``parallelism`` new partitions.

        Returns whether the operation was started.  Works for live slots
        (scale out, with output suppression from the frozen instance) and
        dead slots (parallel recovery).
        """
        system = self.system
        if parallelism < 1:
            raise ScaleOutError(f"parallelism must be >= 1: {parallelism}")
        old = system.instance(slot_uid)
        if old is None:
            return False
        if parallelism > 1:
            # A slot cannot split into more parts than it owns key-space
            # width — a carved-out singleton slot (width 1) recovers or
            # "splits" serially instead of crashing the partitioner.
            routing = system.query_manager.routing_to(old.op_name)
            owned_width = sum(
                iv.width for iv in routing.intervals_of(slot_uid)
            )
            if 0 < owned_width < parallelism:
                parallelism = owned_width
        is_recovery = failure_time is not None or not (old.alive and old.vm.alive)
        plan = ReconfigPlan(
            kind=KIND_RECOVERY if is_recovery else KIND_SCALE_OUT,
            op_name=old.op_name,
            old_slots=[old.slot],
            parallelism=parallelism,
            state_source=SOURCE_BACKUP,
            reason=reason,
            failure_time=failure_time,
            on_complete=on_complete,
        )
        return self._engine.submit(plan)

    def carve_out_slot(
        self,
        slot_uid: int,
        intervals: list,
        reason: str = "hot-key",
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Carve ``intervals`` out of a live slot into a dedicated slot.

        Fine-grained elasticity for skew that interval splitting cannot
        relieve: instead of replacing the slot with π halves, exactly
        the given sub-intervals (typically one hot key's singleton
        ``[pos, pos+1)``) migrate to one new partition while the source
        keeps serving the rest of its range.  Runs as a partial fluid
        migration with the same exactly-once guarantees as a scale out;
        the carved slot re-absorbs into a neighbour later via a normal
        scale-in merge.  Returns whether the operation was started.
        """
        system = self.system
        if not intervals:
            raise ScaleOutError("carve-out needs at least one interval")
        old = system.instance(slot_uid)
        if old is None:
            return False
        if not (old.alive and old.vm.alive):
            return False
        plan = ReconfigPlan(
            kind=KIND_SCALE_OUT,
            op_name=old.op_name,
            old_slots=[old.slot],
            parallelism=1,
            state_source=SOURCE_BACKUP,
            reason=reason,
            move_intervals=list(intervals),
            on_complete=on_complete,
        )
        return self._engine.submit(plan)

    # ------------------------------------------------------------- recovery

    def recover_slot(
        self,
        slot_uid: int,
        failure_time: float,
        on_complete: Callable[[float], None] | None = None,
    ) -> bool:
        """Serial recovery: restore the failed slot on a new VM (π = 1).

        Slot-preserving: the replacement keeps the slot uid and resumes
        the checkpoint's output clock, so downstream duplicate filters
        drop its re-emissions exactly (§3.2 restore semantics).
        """
        system = self.system
        failed = system.instance(slot_uid)
        if failed is None:
            return False
        plan = ReconfigPlan(
            kind=KIND_RECOVERY,
            op_name=failed.op_name,
            old_slots=[failed.slot],
            parallelism=1,
            state_source=SOURCE_BACKUP,
            preserve_slots=True,
            reason="failure",
            failure_time=failure_time,
            on_complete=on_complete,
        )
        return self._engine.submit(plan)

    # ---------------------------------------------------------------- abort

    def abort_operations_on_backup_vm(self, vm: VirtualMachine) -> None:
        """Abort in-flight operations whose state lives on a retiring VM."""
        self._engine.abort_operations_on_backup_vm(vm)
