"""Dynamic scale out: utilisation reports, bottleneck detection, policy,
and the phase-driven reconfiguration engine every topology change —
scale out, scale in, and recovery — runs through (Algorithm 3)."""

from repro.scaling.coordinator import ScaleOutCoordinator
from repro.scaling.detector import BottleneckDetector
from repro.scaling.hotkey import HotKeyManager
from repro.scaling.policy import (
    PredictiveScalingPolicy,
    ScaleOutDecision,
    ThresholdScalingPolicy,
    make_policy,
)
from repro.scaling.reconfig import (
    KIND_RECOVERY,
    KIND_SCALE_IN,
    KIND_SCALE_OUT,
    PHASE_ORDER,
    ReconfigPlan,
    Reconfiguration,
    ReconfigurationEngine,
)
from repro.scaling.reports import (
    HotKeyReport,
    SpaceSavingSketch,
    UtilizationReport,
    UtilizationTracker,
)
from repro.scaling.scale_in import ScaleInCoordinator, ScaleInPolicy

__all__ = [
    "BottleneckDetector",
    "HotKeyManager",
    "HotKeyReport",
    "KIND_RECOVERY",
    "KIND_SCALE_IN",
    "KIND_SCALE_OUT",
    "PHASE_ORDER",
    "PredictiveScalingPolicy",
    "ReconfigPlan",
    "Reconfiguration",
    "ReconfigurationEngine",
    "ScaleInCoordinator",
    "ScaleInPolicy",
    "ScaleOutCoordinator",
    "ScaleOutDecision",
    "SpaceSavingSketch",
    "ThresholdScalingPolicy",
    "UtilizationReport",
    "UtilizationTracker",
    "make_policy",
]
