"""Dynamic scale out: utilisation reports, bottleneck detection, policy,
and the fault-tolerant scale-out coordinator (Algorithm 3)."""

from repro.scaling.coordinator import ScaleOutCoordinator
from repro.scaling.detector import BottleneckDetector
from repro.scaling.policy import ScaleOutDecision, ThresholdScalingPolicy
from repro.scaling.reports import UtilizationReport, UtilizationTracker

__all__ = [
    "BottleneckDetector",
    "ScaleOutCoordinator",
    "ScaleOutDecision",
    "ThresholdScalingPolicy",
    "UtilizationReport",
    "UtilizationTracker",
]
