"""Scale-out policy (§5.1).

The paper's policy: when ``k`` consecutive utilisation reports from an
operator are above threshold ``δ``, ask the scale-out coordinator to
parallelise it.  Empirically the paper uses r = 5 s, k = 2, δ = 70 %.

Decisions are per *partition*: every partition whose own reports crossed
the threshold splits, which is what lets capacity track exponential load
growth (splitting only the hottest partition per round adds one VM per
round — linear growth — and falls behind; see the Fig. 6/7 benches).
Each partition gets its own cooldown, and freshly created partitions
implicitly cool down while they accumulate ``k`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ScalingConfig
from repro.scaling.reports import UtilizationReport


@dataclass(frozen=True)
class ScaleOutDecision:
    """A request to split one slot of one operator."""

    op_name: str
    slot_uid: int
    utilization: float
    reason: str = "bottleneck"


class ThresholdScalingPolicy:
    """k-consecutive-reports-above-δ policy with per-slot cooldown."""

    def __init__(self, config: ScalingConfig) -> None:
        self.config = config
        self._consecutive: dict[int, int] = {}
        self._cooldown_until: dict[int, float] = {}

    def observe(
        self, reports: list[UtilizationReport], now: float, vm_budget_left: int | None
    ) -> list[ScaleOutDecision]:
        """Feed one round of reports; returns scale-out decisions.

        ``vm_budget_left`` caps how many *additional* VMs decisions may
        consume this round (None = unlimited).
        """
        hot: list[UtilizationReport] = []
        for report in reports:
            if report.above(self.config.threshold):
                count = self._consecutive.get(report.slot_uid, 0) + 1
                self._consecutive[report.slot_uid] = count
                if count < self.config.consecutive_reports:
                    continue
                if self._cooldown_until.get(report.slot_uid, 0.0) > now:
                    continue
                hot.append(report)
            else:
                self._consecutive[report.slot_uid] = 0

        decisions: list[ScaleOutDecision] = []
        extra_vms_each = self.config.split_factor - 1
        for report in sorted(hot, key=lambda r: (-r.utilization, r.slot_uid)):
            if vm_budget_left is not None and vm_budget_left < extra_vms_each:
                break
            if vm_budget_left is not None:
                vm_budget_left -= extra_vms_each
            decisions.append(
                ScaleOutDecision(report.op_name, report.slot_uid, report.utilization)
            )
            self._cooldown_until[report.slot_uid] = now + self.config.cooldown
            self._consecutive[report.slot_uid] = 0
        return decisions

    def forget_slot(self, slot_uid: int) -> None:
        """Drop all tracking state for a retired slot."""
        self._consecutive.pop(slot_uid, None)
        self._cooldown_until.pop(slot_uid, None)

    def note_scale_out(self, slot_uid: int, now: float) -> None:
        """Record an externally triggered split of a slot."""
        self._cooldown_until[slot_uid] = now + self.config.cooldown
        self._consecutive[slot_uid] = 0
