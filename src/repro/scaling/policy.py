"""Scale-out policies (§5.1).

The paper's policy: when ``k`` consecutive utilisation reports from an
operator are above threshold ``δ``, ask the scale-out coordinator to
parallelise it.  Empirically the paper uses r = 5 s, k = 2, δ = 70 %.

Decisions are per *partition*: every partition whose own reports crossed
the threshold splits, which is what lets capacity track exponential load
growth (splitting only the hottest partition per round adds one VM per
round — linear growth — and falls behind; see the Fig. 6/7 benches).
Each partition gets its own cooldown, and freshly created partitions
implicitly cool down while they accumulate ``k`` reports.

:class:`PredictiveScalingPolicy` extends the reactive rule with a
rate-derivative controller: it fits a least-squares line through the
slot's recent utilisation samples and scales when the *projected*
utilisation (``predict_horizon`` seconds ahead) crosses δ — so a steep
ramp provisions before saturation instead of k report periods after.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.config import ScalingConfig
from repro.scaling.reports import UtilizationReport

#: Decision reason for a reactive (k-consecutive-breaches) split.
REASON_BOTTLENECK = "bottleneck"
#: Decision reason for a predicted (slope-projected) split.
REASON_PREDICTED = "predicted"


@dataclass(frozen=True)
class ScaleOutDecision:
    """A request to split one slot of one operator."""

    op_name: str
    slot_uid: int
    utilization: float
    reason: str = REASON_BOTTLENECK


class ThresholdScalingPolicy:
    """k-consecutive-reports-above-δ policy with per-slot cooldown."""

    def __init__(self, config: ScalingConfig) -> None:
        self.config = config
        self._consecutive: dict[int, int] = {}
        self._cooldown_until: dict[int, float] = {}

    def observe(
        self, reports: list[UtilizationReport], now: float, vm_budget_left: int | None
    ) -> list[ScaleOutDecision]:
        """Feed one round of reports; returns scale-out decisions.

        ``vm_budget_left`` caps how many *additional* VMs decisions may
        consume this round (None = unlimited).
        """
        hot: list[UtilizationReport] = []
        for report in reports:
            if self._cooldown_until.get(report.slot_uid, 0.0) > now:
                # Reports inside the cooldown never accumulate: after the
                # cooldown expires the slot must breach the threshold k
                # *fresh* consecutive times before it splits again.
                self._consecutive[report.slot_uid] = 0
                continue
            if report.above(self.config.threshold):
                count = self._consecutive.get(report.slot_uid, 0) + 1
                self._consecutive[report.slot_uid] = count
                if count < self.config.consecutive_reports:
                    continue
                hot.append(report)
            else:
                self._consecutive[report.slot_uid] = 0

        decisions: list[ScaleOutDecision] = []
        extra_vms_each = self.config.split_factor - 1
        for report in sorted(hot, key=lambda r: (-r.utilization, r.slot_uid)):
            if vm_budget_left is not None and vm_budget_left < extra_vms_each:
                break
            if vm_budget_left is not None:
                vm_budget_left -= extra_vms_each
            decisions.append(
                ScaleOutDecision(report.op_name, report.slot_uid, report.utilization)
            )
            self._cooldown_until[report.slot_uid] = now + self.config.cooldown
            self._consecutive[report.slot_uid] = 0
        return decisions

    def forget_slot(self, slot_uid: int) -> None:
        """Drop all tracking state for a retired slot."""
        self._consecutive.pop(slot_uid, None)
        self._cooldown_until.pop(slot_uid, None)

    def note_scale_out(self, slot_uid: int, now: float) -> None:
        """Record an externally triggered split of a slot."""
        self._cooldown_until[slot_uid] = now + self.config.cooldown
        self._consecutive[slot_uid] = 0


class PredictiveScalingPolicy(ThresholdScalingPolicy):
    """Rate-derivative controller: provision ahead of the ramp.

    Keeps the reactive k-consecutive rule as a floor, and additionally
    fires when a least-squares fit over the last ``predict_window``
    utilisation samples projects the slot past δ within
    ``predict_horizon`` seconds.  A predicted decision requires a
    positive slope and at least ``predict_min_samples`` samples, so a
    flat-but-warm slot never splits early.  Cooldown and the VM budget
    apply to both kinds of decision identically.
    """

    def __init__(self, config: ScalingConfig) -> None:
        super().__init__(config)
        self._history: dict[int, deque] = {}
        #: Predicted (slope-projected) decisions issued, cumulative.
        self.predicted_breaches = 0

    def observe(
        self, reports: list[UtilizationReport], now: float, vm_budget_left: int | None
    ) -> list[ScaleOutDecision]:
        reactive = super().observe(reports, now, vm_budget_left)
        if vm_budget_left is not None:
            vm_budget_left -= (self.config.split_factor - 1) * len(reactive)
        decided = {d.slot_uid for d in reactive}
        candidates: list[tuple[float, UtilizationReport]] = []
        for report in reports:
            history = self._history.setdefault(
                report.slot_uid, deque(maxlen=self.config.predict_window)
            )
            history.append((report.time, report.utilization))
            if report.slot_uid in decided:
                continue
            if self._cooldown_until.get(report.slot_uid, 0.0) > now:
                continue
            if report.above(self.config.threshold):
                continue  # already breaching: the reactive rule owns it
            projected = self._project(history)
            if projected is not None and projected >= self.config.threshold:
                candidates.append((projected, report))

        decisions = list(reactive)
        extra_vms_each = self.config.split_factor - 1
        for projected, report in sorted(
            candidates, key=lambda pr: (-pr[0], pr[1].slot_uid)
        ):
            if vm_budget_left is not None and vm_budget_left < extra_vms_each:
                break
            if vm_budget_left is not None:
                vm_budget_left -= extra_vms_each
            decisions.append(
                ScaleOutDecision(
                    report.op_name,
                    report.slot_uid,
                    report.utilization,
                    reason=REASON_PREDICTED,
                )
            )
            self.predicted_breaches += 1
            self._cooldown_until[report.slot_uid] = now + self.config.cooldown
            self._consecutive[report.slot_uid] = 0
        return decisions

    def _project(self, history: deque) -> float | None:
        """Least-squares projection ``predict_horizon`` seconds ahead.

        Returns None with too few samples or a non-positive slope — the
        controller only ever provisions *ahead* of growth, never on
        decline or noise around a flat line.
        """
        if len(history) < self.config.predict_min_samples:
            return None
        times = [t for t, _u in history]
        utils = [u for _t, u in history]
        n = len(history)
        t_mean = sum(times) / n
        u_mean = sum(utils) / n
        var = sum((t - t_mean) ** 2 for t in times)
        if var <= 0:
            return None
        slope = (
            sum((t - t_mean) * (u - u_mean) for t, u in zip(times, utils)) / var
        )
        if slope <= 0:
            return None
        return min(1.0, utils[-1] + slope * self.config.predict_horizon)

    def forget_slot(self, slot_uid: int) -> None:
        super().forget_slot(slot_uid)
        self._history.pop(slot_uid, None)


def make_policy(config: ScalingConfig) -> ThresholdScalingPolicy:
    """Build the configured scaling policy (``ScalingConfig.policy``)."""
    if config.policy == "predictive":
        return PredictiveScalingPolicy(config)
    return ThresholdScalingPolicy(config)
