"""The phase-driven reconfiguration engine.

The paper's central claim is that scale out and failure recovery are *the
same mechanism* built on the shared state-management primitives
(Algorithms 1-3): recovery is "scale out of a failed operator".  This
module is that mechanism.  Every topology change — scale out of a
bottleneck, scale in of an under-utilised pair, serial and parallel
checkpoint recovery, the rebuild-based baseline recoveries, and aborts
triggered by backup-VM failures — executes as one
:class:`Reconfiguration` driven by the :class:`ReconfigurationEngine`
through an explicit phase state machine::

    PLAN -> ACQUIRE_VMS -> CHECKPOINT_PARTITION -> TRANSFER -> RESTORE
         -> COMMIT -> REPLAY_DRAIN -> DONE (or ABORTED from any phase
                                            before COMMIT)

What each phase means depends on the plan's *state source*:

* ``backup`` (R+SM, Algorithm 3) — the replacement state comes from the
  partition's backed-up checkpoint: CHECKPOINT_PARTITION splits it on
  the backup VM's CPU (or passes it through whole for slot-preserving
  serial recovery), TRANSFER ships the parts over the network, RESTORE
  deploys the new partitions, COMMIT swaps routing and replays buffers,
  REPLAY_DRAIN waits until the new partitions have re-processed every
  replayed tuple.
* ``merge`` (scale in, §3.3) — PLAN quiesces the two partitions behind
  paused upstreams, CHECKPOINT_PARTITION merges their live snapshots,
  RESTORE deploys the union onto one pooled VM.
* ``fresh`` (upstream backup, §6.2) — no state moves: RESTORE deploys a
  zero-state replacement under a fresh slot uid and REPLAY_DRAIN counts
  the upstream buffer replays that rebuild it.
* ``source_replay`` (§6.2) — like ``fresh`` but the sources replay their
  buffers through the whole pipeline; REPLAY_DRAIN polls for pipeline
  quiescence instead of counting.

Policy objects (:class:`~repro.scaling.coordinator.ScaleOutCoordinator`,
:class:`~repro.scaling.scale_in.ScaleInCoordinator`, the recovery
strategies in :mod:`repro.fault.strategies`) are thin adapters that
construct a :class:`ReconfigPlan` and submit it here.  Every
reconfiguration records a :class:`~repro.sim.metrics.PhaseTimeline`
in the metrics hub, and each phase can carry a deadline after which the
operation aborts (per-plan ``phase_timeouts`` or the engine-wide
``default_phase_timeouts``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.config import MigrationConfig
from repro.core.checkpoint import BackupStore, Checkpoint, EpochCut
from repro.core.execution import Slot
from repro.core.migration import MigrationChunk, StateMover
from repro.core.partition import partition_checkpoint, split_interval_groups
from repro.core.state import KeyInterval
from repro.core.tuples import stable_hash
from repro.runtime.instance import REPLAY_ACCEPT, REPLAY_DEDUP, REPLAY_DROP
from repro.sim.metrics import PhaseTimeline
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem

# --------------------------------------------------------------- phases

PHASE_PLAN = "PLAN"
PHASE_ACQUIRE_VMS = "ACQUIRE_VMS"
PHASE_CHECKPOINT_PARTITION = "CHECKPOINT_PARTITION"
PHASE_TRANSFER = "TRANSFER"
PHASE_RESTORE = "RESTORE"
PHASE_COMMIT = "COMMIT"
PHASE_REPLAY_DRAIN = "REPLAY_DRAIN"
PHASE_DONE = "DONE"
PHASE_ABORTED = "ABORTED"

#: Non-terminal phases, in execution order.
PHASE_ORDER = (
    PHASE_PLAN,
    PHASE_ACQUIRE_VMS,
    PHASE_CHECKPOINT_PARTITION,
    PHASE_TRANSFER,
    PHASE_RESTORE,
    PHASE_COMMIT,
    PHASE_REPLAY_DRAIN,
)

# --------------------------------------------------------- state sources

#: Restore from the partition's backed-up checkpoint (R+SM).
SOURCE_BACKUP = "backup"
#: Merge the live snapshots of two quiesced partitions (scale in).
SOURCE_MERGE = "merge"
#: Fresh state, rebuilt from upstream buffer replays (upstream backup).
SOURCE_FRESH = "fresh"
#: Fresh state, rebuilt by replaying the sources through the pipeline.
SOURCE_SOURCE_REPLAY = "source_replay"

# ----------------------------------------------------------------- kinds

KIND_SCALE_OUT = "scale_out"
KIND_SCALE_IN = "scale_in"
KIND_RECOVERY = "recovery"

#: Abort an in-flight reconfiguration that has not committed after this
#: long (overall watchdog; per-phase deadlines can be tighter).
_WATCHDOG_SECONDS = 600.0

#: Quiescence poll period while draining two partitions for a merge.
_MERGE_DRAIN_POLL = 0.1
#: Consecutive idle polls required before merging.
_MERGE_DRAIN_QUIET = 2

#: Poll period for source-replay pipeline-quiescence detection.
_SR_POLL = 0.25
#: Consecutive quiet polls before declaring source-replay recovery done.
_SR_QUIET_POLLS = 2


@dataclass
class ReconfigPlan:
    """What a policy adapter asks the engine to do.

    A plan names the slots being replaced, the target parallelism, and
    where the replacement state comes from; the engine supplies the
    *how* (the shared phase machinery).
    """

    kind: str
    op_name: str
    #: Slots being replaced: one for scale out / recovery, two (an
    #: adjacent pair) for scale in.
    old_slots: list[Slot]
    #: Number of replacement partitions.
    parallelism: int = 1
    state_source: str = SOURCE_BACKUP
    #: Keep the replaced slot's uid (serial recovery: downstream
    #: duplicate filters keep working exactly, §3.2).
    preserve_slots: bool = False
    reason: str = ""
    #: When recovering: the failure instant, so the recorded duration
    #: spans crash -> fully drained.
    failure_time: float | None = None
    on_complete: Callable[[float], None] | None = None
    #: Event-detail prefix for the baseline strategies ("UB" / "SR").
    label: str = ""
    #: Per-phase deadlines in seconds; overrides the engine defaults.
    phase_timeouts: dict[str, float] = field(default_factory=dict)
    #: Chunking policy for this operation's state movement; ``None``
    #: falls back to ``SystemConfig.migration``.  With ``max_chunks > 1``
    #: an eligible scale out runs as a *fluid* migration (per-chunk
    #: routing swaps while the source keeps serving) and every other
    #: transfer is chunked on the wire; the default single chunk is the
    #: classic all-at-once behaviour.
    migration: MigrationConfig | None = None
    #: Carve-out mode: move exactly these sub-intervals of the old
    #: slot's range into one dedicated new slot, leaving the source
    #: alive with the remainder (hot-key carve-out).  Runs as a
    #: *partial* fluid migration — per-chunk routing swaps with
    #: exactly-once replay, but the source is never retired and keeps
    #: its buffers.  Requires a live source and ``parallelism == 1``.
    move_intervals: list[KeyInterval] | None = None

    @property
    def is_recovery(self) -> bool:
        return self.kind == KIND_RECOVERY


class FluidMigration:
    """Per-operation context of a fluid (chunked live) migration.

    The migrating key range is cut into ``chunks`` — ``(target index,
    interval group)`` pairs, grouped per target and committed strictly
    in order.  ``committed_intervals`` accumulates the ranges whose
    routing swap took effect; on abort those stay with their targets
    (abort-to-consistent-routing) while everything else returns to the
    source.
    """

    def __init__(
        self,
        old: "OperatorInstance",
        chunks: list[tuple[int, list[KeyInterval]]],
        cfg: MigrationConfig,
        partial: bool = False,
    ) -> None:
        self.old = old
        self.chunks = chunks
        self.cfg = cfg
        #: Partial (carve-out) migration: only ``chunks`` leave; the
        #: source keeps the rest of its range and stays alive.
        self.partial = partial
        self.total = len(chunks)
        #: Index of the chunk currently being migrated (parked, extracted,
        #: shipped, committed or drained); advances after each drain.
        self.next_index = 0
        #: The extracted-but-uncommitted chunk, if one is on the wire.
        self.in_flight: MigrationChunk | None = None
        #: Deployed target instances, keyed by target index.
        self.targets: dict[int, "OperatorInstance"] = {}
        #: Key ranges whose per-chunk routing swap committed.
        self.committed_intervals: list[KeyInterval] = []
        self.committed_chunks = 0
        #: Longest single stop-the-world pause charged to the source.
        self.max_pause = 0.0
        #: Deadline event of the in-flight chunk, if armed.
        self.deadline = None
        #: Source τ vector frozen when the current chunk's parking began —
        #: the exact floor its extracted state reflects for the moving keys.
        self.chunk_floor: dict[int, int] = {}


class Reconfiguration:
    """Mutable context for one in-flight reconfiguration."""

    def __init__(
        self, plan: ReconfigPlan, timeline: PhaseTimeline, started_at: float
    ) -> None:
        self.plan = plan
        self.timeline = timeline
        self.started_at = started_at
        self.phase = PHASE_PLAN
        # Backup-sourced state.
        self.ckpt: Checkpoint | None = None
        self.backup_vm: VirtualMachine | None = None
        #: The checkpoint was synthesised from the external state tier
        #: (recovery of last resort: source and backup VMs both died).
        self.external_restore = False
        self.groups: list | None = None
        self.parts: list[Checkpoint] = []
        self.suppress: dict[int, int] | None = None
        # Merge-sourced state.
        self.old_instances: list["OperatorInstance"] = []
        self.upstreams: list["OperatorInstance"] = []
        self.quiet_polls = 0
        self.merged_ckpt: Checkpoint | None = None
        # Source-replay state.
        self.marked: list["OperatorInstance"] = []
        # Shared.
        self.vms: list[VirtualMachine] = []
        self.new_slots: list[Slot] = []
        self.instances: list["OperatorInstance"] = []
        #: Replacement slot uids whose replay drain has not completed.
        self.pending_drain_uids: set[int] = set()
        #: Fluid-migration context (chunked live hand-over), if any.
        self.fluid: FluidMigration | None = None
        #: Outstanding timer events (phase deadlines, the watchdog, chunk
        #: deadlines).  All cancelled when the operation reaches DONE or
        #: ABORTED, so a late timer can never fire into a dead operation.
        self.timers: list = []
        self.committed = False
        self.aborted = False
        self.finished = False

    @property
    def old_slot(self) -> Slot:
        return self.plan.old_slots[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Reconfiguration({self.plan.kind} {self.plan.op_name} "
            f"@ {self.phase})"
        )


class ReconfigurationEngine:
    """Drives every topology change through the shared phase machine."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        #: Single state-movement layer: every transfer (scale-out split,
        #: scale-in merge, recovery) ships through it.
        self.mover = StateMover(system)
        #: Slot-replacing operations in flight, keyed by the replaced
        #: slot's uid (scale out and every recovery flavour).
        self._busy_slots: dict[int, str] = {}
        #: Operators with a merge (scale in) in flight.
        self._busy_merges: set[str] = set()
        self._active: list[Reconfiguration] = []
        # Slot-replacement counters (scale out + recoveries).
        self.operations_started = 0
        self.operations_completed = 0
        self.operations_aborted = 0
        # Merge counters.
        self.merges_completed = 0
        self.merges_aborted = 0
        self.watchdog_seconds = _WATCHDOG_SECONDS
        #: Engine-wide per-phase deadlines, overridable per plan.
        self.default_phase_timeouts: dict[str, float] = {}
        #: Observers notified at every phase entry (chaos schedules,
        #: instrumentation).  Called as ``listener(op, phase)`` *after*
        #: the engine's own bookkeeping for that phase entry.
        self._phase_listeners: list[
            Callable[[Reconfiguration, str], None]
        ] = []
        #: Observers notified after each fluid chunk commits, called as
        #: ``listener(op, chunk_index, chunk_total)``.  A separate channel
        #: from phase listeners: chunk commits happen *inside* a phase
        #: (TRANSFER), and pushing pseudo-phases through ``_notify`` would
        #: corrupt phase-span telemetry.
        self._chunk_listeners: list[
            Callable[[Reconfiguration, int, int], None]
        ] = []

    def on_phase_change(
        self, listener: Callable[[Reconfiguration, str], None]
    ) -> None:
        """Register an observer for phase transitions (incl. PLAN, DONE
        and ABORTED).  Listeners must not call back into the engine
        synchronously; schedule follow-up work through the simulator."""
        self._phase_listeners.append(listener)

    def _notify(self, op: Reconfiguration, phase: str) -> None:
        for listener in list(self._phase_listeners):
            listener(op, phase)

    def on_chunk_commit(
        self, listener: Callable[[Reconfiguration, int, int], None]
    ) -> None:
        """Register an observer for fluid chunk commits (chaos schedules
        use this to land faults mid-migration).  Same contract as phase
        listeners: schedule follow-up work through the simulator."""
        self._chunk_listeners.append(listener)

    def _notify_chunk(self, op: Reconfiguration, index: int, total: int) -> None:
        for listener in list(self._chunk_listeners):
            listener(op, index, total)

    # ------------------------------------------------------------- queries

    def is_replacing(self, op_name: str) -> bool:
        """Whether any slot of ``op_name`` is being replaced."""
        return op_name in self._busy_slots.values()

    def is_merging(self, op_name: str) -> bool:
        """Whether a merge of ``op_name`` is in flight."""
        return op_name in self._busy_merges

    def is_busy_slot(self, slot_uid: int) -> bool:
        """Whether this specific slot is being replaced."""
        return slot_uid in self._busy_slots

    def active_operations(self) -> list[Reconfiguration]:
        """In-flight reconfigurations (testing/inspection hook)."""
        return list(self._active)

    # -------------------------------------------------------------- submit

    def submit(self, plan: ReconfigPlan) -> bool:
        """Validate a plan and start driving it; returns whether it began.

        This is the PLAN phase: admission checks, busy-marking, trim
        locks and the start-of-operation event all happen here,
        synchronously.
        """
        if plan.state_source == SOURCE_MERGE:
            return self._submit_merge(plan)
        return self._submit_slot_replacement(plan)

    def _submit_slot_replacement(self, plan: ReconfigPlan) -> bool:
        system = self.system
        slot_uid = plan.old_slots[0].uid
        old = system.instance(slot_uid)
        if old is None:
            return False
        if slot_uid in self._busy_slots:
            return False
        if (
            plan.state_source == SOURCE_BACKUP
            and not plan.preserve_slots
            and self.is_merging(plan.op_name)
        ):
            return False  # the operator is being merged right now
        ckpt: Checkpoint | None = None
        external_restore = False
        if plan.state_source == SOURCE_BACKUP:
            # The Checkpointer owns backup selection: live backup store
            # first, then — recoveries only — the external tier of last
            # resort (the backup died with its VM, but an external-backend
            # operator's last flushed cut survives in the external store).
            restore = system.checkpointer.restore_plan(
                slot_uid, allow_external=plan.preserve_slots
            )
            ckpt = restore.checkpoint
            external_restore = restore.external
            if external_restore:
                system.metrics.mark_event(
                    system.sim.now,
                    "recovery_external",
                    f"{old.slot!r}: restoring from external tier",
                )
            if ckpt is None:
                kind = "unrecoverable" if plan.preserve_slots else "scale_out_aborted"
                system.metrics.mark_event(
                    system.sim.now, kind, f"{old.slot!r}: no backup"
                )
                return False
            if not plan.is_recovery:
                # Plain scale outs respect a global concurrency cap:
                # freezing and replaying many partitions at once
                # collapses throughput.
                cap = system.config.scaling.max_concurrent_operations
                if cap is not None and len(self._busy_slots) >= cap:
                    return False
        op = Reconfiguration(
            plan,
            system.metrics.start_phase_timeline(
                plan.kind, plan.op_name, [slot_uid], system.sim.now
            ),
            system.sim.now,
        )
        op.ckpt = ckpt
        op.external_restore = external_restore
        op.timeline.enter(PHASE_PLAN, system.sim.now)
        self._busy_slots[slot_uid] = plan.op_name
        if plan.state_source == SOURCE_BACKUP:
            # Freeze upstream-buffer trimming for this slot: the
            # checkpoint we will partition must stay covered by the
            # buffered tuples even if the (still running) old instance
            # keeps checkpointing meanwhile.
            system.trim_locks.add(slot_uid)
            if plan.preserve_slots and not external_restore:
                op.backup_vm = system.backup_locations.get(slot_uid)
                if op.backup_vm is not None:
                    op.backup_vm.on_failure(
                        lambda _vm: self._abort(op, "backup VM failed")
                    )
        self.operations_started += 1
        self._mark_started(op, old)
        self._active.append(op)
        self._arm_deadline(op, PHASE_PLAN)
        op.timers.append(
            system.sim.schedule(self.watchdog_seconds, self._watchdog, op)
        )
        self._notify(op, PHASE_PLAN)
        self._enter_acquire_vms(op)
        return True

    def _mark_started(self, op: Reconfiguration, old: "OperatorInstance") -> None:
        system = self.system
        plan = op.plan
        if plan.state_source != SOURCE_BACKUP:
            system.metrics.mark_event(
                system.sim.now,
                "recovery_started",
                f"{plan.label} {old.slot!r}".strip(),
            )
        elif plan.preserve_slots:
            system.metrics.mark_event(
                system.sim.now, "recovery_started", repr(old.slot)
            )
        else:
            system.metrics.mark_event(
                system.sim.now,
                "scale_out_started",
                f"{old.slot!r} -> pi={plan.parallelism} ({plan.reason})",
            )

    def _submit_merge(self, plan: ReconfigPlan) -> bool:
        system = self.system
        if plan.op_name in self._busy_merges:
            return False
        if self.is_replacing(plan.op_name):
            return False
        instances = [system.live_instance(slot.uid) for slot in plan.old_slots]
        if any(inst is None for inst in instances):
            return False
        op = Reconfiguration(
            plan,
            system.metrics.start_phase_timeline(
                plan.kind,
                plan.op_name,
                [slot.uid for slot in plan.old_slots],
                system.sim.now,
            ),
            system.sim.now,
        )
        op.old_instances = instances  # type: ignore[assignment]
        op.timeline.enter(PHASE_PLAN, system.sim.now)
        for up_name in system.query_manager.upstream_of(plan.op_name):
            for slot in system.query_manager.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None:
                    op.upstreams.append(upstream)
        self._busy_merges.add(plan.op_name)
        left, right = op.old_instances
        system.metrics.mark_event(
            system.sim.now, "scale_in_started", f"{left.slot!r} + {right.slot!r}"
        )
        # Stop the upstreams: new tuples buffer there while the two
        # partitions drain what is already queued or in flight (the
        # quiesce half of quiesce-and-merge, Alg. 3 style).
        for upstream in op.upstreams:
            upstream.pause()
        self._active.append(op)
        self._arm_deadline(op, PHASE_PLAN)
        op.timers.append(
            system.sim.schedule(self.watchdog_seconds, self._watchdog, op)
        )
        self._notify(op, PHASE_PLAN)
        system.sim.schedule(_MERGE_DRAIN_POLL, self._poll_merge_drain, op)
        return True

    # -------------------------------------------------- phase transitions

    def _enter(self, op: Reconfiguration, phase: str) -> None:
        op.phase = phase
        op.timeline.enter(phase, self.system.sim.now)
        self._arm_deadline(op, phase)
        self._notify(op, phase)

    def _arm_deadline(self, op: Reconfiguration, phase: str) -> None:
        timeout = op.plan.phase_timeouts.get(
            phase, self.default_phase_timeouts.get(phase)
        )
        if timeout is not None:
            op.timers.append(
                self.system.sim.schedule(
                    timeout, self._phase_deadline, op, phase
                )
            )

    def _phase_deadline(self, op: Reconfiguration, phase: str) -> None:
        """A phase outlived its deadline: abort unless already past it."""
        if op.phase != phase or op.committed or op.aborted or op.finished:
            return
        self._abort(op, f"{phase} deadline exceeded")

    def _watchdog(self, op: Reconfiguration) -> None:
        if op.aborted or op.finished:
            return
        if op.fluid is not None:
            # A fluid migration commits chunk by chunk, so ``committed``
            # flips long before it is done; the watchdog still bounds the
            # whole operation (abort keeps the committed chunks).
            self._abort_fluid(op, "watchdog timeout")
            return
        if not op.committed:
            self._abort(op, "watchdog timeout")

    def _cancel_timers(self, op: Reconfiguration) -> None:
        """Disarm every outstanding deadline/watchdog timer of ``op``.

        Called on DONE and ABORTED.  The handlers all guard against dead
        operations, so a late timer firing was already a no-op — but an
        uncancelled watchdog pins the operation (and everything it
        references) in the event queue for up to ten minutes of
        simulated time per reconfiguration.
        """
        for event in op.timers:
            if event.pending:
                event.cancel()
        op.timers.clear()

    # --------------------------------------------------------- ACQUIRE_VMS

    def _enter_acquire_vms(self, op: Reconfiguration) -> None:
        self._enter(op, PHASE_ACQUIRE_VMS)
        for _ in range(op.plan.parallelism):
            self.system.pool.acquire(lambda vm, op=op: self._vm_ready(op, vm))

    def _vm_ready(self, op: Reconfiguration, vm: VirtualMachine) -> None:
        if op.aborted:
            self.system.pool.give_back(vm)
            return
        op.vms.append(vm)
        # Watch the acquired VM: losing a replacement target mid-flight
        # must abort (pre-commit) or release its drain (post-commit)
        # instead of hanging until the watchdog.
        vm.on_failure(
            lambda _vm, op=op, vm=vm: self._target_vm_failed(op, vm)
        )
        if len(op.vms) == op.plan.parallelism:
            self._enter_checkpoint_partition(op)

    def _target_vm_failed(self, op: Reconfiguration, vm: VirtualMachine) -> None:
        """A VM acquired for this operation crashed."""
        if op.aborted or op.finished:
            return
        if op.fluid is not None:
            # Committed chunks on the dead target recover through the
            # normal failure-detection path (each commit stored a backup
            # synchronously); the rest of the migration unwinds.
            self._abort_fluid(op, f"target VM {vm.vm_id} failed")
            return
        if not op.committed:
            self._abort(op, f"target VM {vm.vm_id} failed")
            return
        # Post-commit: a replacement instance died while draining its
        # replays.  Those replays will never complete; release its share
        # of the drain so the operation can finish.  The instance itself
        # is recovered through the normal failure-detection path.
        for instance in op.instances:
            if instance.vm is vm:
                self._drain_done(op, instance.uid)

    # ------------------------------------------------ CHECKPOINT_PARTITION

    def _enter_checkpoint_partition(self, op: Reconfiguration) -> None:
        self._enter(op, PHASE_CHECKPOINT_PARTITION)
        source = op.plan.state_source
        if source == SOURCE_BACKUP:
            if op.plan.preserve_slots:
                self._prepare_whole_checkpoint(op)
            elif op.plan.move_intervals is not None:
                # A carve-out only makes sense live: the source keeps
                # serving the rest of its range, so there is no
                # checkpoint-partitioning fallback.
                if self._fluid_eligible(op):
                    self._prepare_fluid(op)
                else:
                    self._abort(op, "carve-out source not live")
            elif self._fluid_eligible(op):
                self._prepare_fluid(op)
            else:
                self._prepare_partitioning(op)
        elif source == SOURCE_MERGE:
            self._merge_snapshots(op)
        else:
            # Fresh-state rebuilds have no checkpoint to prepare.
            self._enter_transfer(op)

    def _prepare_whole_checkpoint(self, op: Reconfiguration) -> None:
        """Serial recovery: the backed-up checkpoint passes through whole,
        and the replacement keeps the failed slot's uid."""
        if not op.external_restore and (
            op.backup_vm is None or not op.backup_vm.alive
        ):
            self._abort(op, "backup VM lost before restore")
            return
        assert op.ckpt is not None
        op.new_slots = [op.old_slot]
        op.parts = [op.ckpt]
        self._enter_transfer(op)

    def _prepare_partitioning(self, op: Reconfiguration) -> None:
        """All VMs are ready: partition the *most recent* checkpoint.

        Deferred until now so that the old instance kept checkpointing
        (and upstream buffers kept being trimmed) while the operation
        waited on VM provisioning — the replay window stays at most one
        checkpoint interval regardless of how long acquisition took.
        """
        system = self.system
        if op.aborted:
            return
        old = system.instances.get(op.old_slot.uid)
        if old is not None and old.alive:
            old.stop_checkpointing()
        fresh = system.backup_of(op.old_slot.uid)
        if fresh is not None:
            op.ckpt = fresh
        backup_vm = system.backup_locations.get(op.old_slot.uid)
        if backup_vm is None or not backup_vm.alive:
            self._abort(op, "backup VM unavailable")
            return
        op.backup_vm = backup_vm
        backup_vm.on_failure(lambda _vm: self._abort(op, "backup VM failed"))
        # Partitioning the checkpoint costs CPU *on the backup VM*, not on
        # the overloaded operator (§4.3 benefit ii).
        cfg = system.config.checkpoint
        assert op.ckpt is not None
        cost = cfg.serialize_base_seconds + len(op.ckpt.state) * (
            cfg.serialize_seconds_per_entry
        )
        # Same metric as the fluid path's per-chunk pause: the
        # stop-the-world cost of capturing the moving state in one go is
        # O(total state) here, O(chunk) there — the comparison the
        # migration benchmark reports.
        system.metrics.timeseries(
            f"migration_pause:{op.plan.op_name}"
        ).record(system.sim.now, cost)
        backup_vm.submit(cost, self._partitioned, op, backup_vm)

    def _partitioned(self, op: Reconfiguration, backup_vm: VirtualMachine) -> None:
        if op.aborted:
            return
        system = self.system
        plan = op.plan
        assert op.ckpt is not None
        routing = system.query_manager.routing_to(plan.op_name)
        owned = routing.intervals_of(op.old_slot.uid)
        guide = None
        if len(op.ckpt.state) >= 4 * plan.parallelism:
            guide = [stable_hash(key) for key in op.ckpt.state.keys()]
        op.groups = split_interval_groups(owned, plan.parallelism, guide)
        op.new_slots = [
            system.query_manager.new_slot(plan.op_name, i)
            for i in range(plan.parallelism)
        ]
        op.timeline.add_slots([slot.uid for slot in op.new_slots])
        op.parts = partition_checkpoint(
            op.ckpt, op.groups, [slot.uid for slot in op.new_slots]
        )
        # Store each partition as the new partition's initial backup
        # (Algorithm 2, line 8): the scale out itself is fault tolerant.
        store = system.backup_stores.setdefault(backup_vm.vm_id, BackupStore())
        for part in op.parts:
            store.store(part)
            system.backup_locations[part.slot_uid] = backup_vm
        self._enter_transfer(op)

    def _merge_snapshots(self, op: Reconfiguration) -> None:
        """Merge the quiesced pair's live state (scale in, §3.3)."""
        system = self.system
        left, right = op.old_instances
        if not (left.vm.alive and right.vm.alive):
            self._abort(op, "partition failed before restore")
            return
        operator = system.query_manager.query.operator(op.plan.op_name)  # type: ignore[union-attr]
        merge_value = (
            operator.merge_values if operator.stateful else (lambda a, b: a)
        )
        merged_state = left.state.snapshot().merge(
            right.state.snapshot(), merge_value
        )
        buffers = {name: buf.snapshot() for name, buf in left.buffers.items()}
        for name, buf in right.buffers.items():
            if name in buffers:
                for dest in buf.destinations():
                    for tup in buf.tuples_for(dest):
                        buffers[name].append(dest, tup)
            else:
                buffers[name] = buf.snapshot()
        new_slot = system.query_manager.new_slot(
            op.plan.op_name, left.slot.index
        )
        op.new_slots = [new_slot]
        op.timeline.add_slots([new_slot.uid])
        op.merged_ckpt = Checkpoint(
            op_name=op.plan.op_name,
            slot_uid=new_slot.uid,
            state=merged_state,
            buffers=buffers,
            taken_at=system.sim.now,
            seq=max(left._ckpt_seq, right._ckpt_seq) + 1,
        )
        self._enter_transfer(op)

    def _poll_merge_drain(self, op: Reconfiguration) -> None:
        system = self.system
        if op.aborted:
            return
        left, right = op.old_instances
        if not (left.alive and left.vm.alive and right.alive and right.vm.alive):
            self._abort(op, "partition failed while draining")
            return
        idle = left.is_quiescent() and right.is_quiescent()
        op.quiet_polls = op.quiet_polls + 1 if idle else 0
        if op.quiet_polls < _MERGE_DRAIN_QUIET:
            system.sim.schedule(_MERGE_DRAIN_POLL, self._poll_merge_drain, op)
            return
        self._enter_acquire_vms(op)

    # ------------------------------------------------------------ TRANSFER

    def _enter_transfer(self, op: Reconfiguration) -> None:
        self._enter(op, PHASE_TRANSFER)
        source = op.plan.state_source
        cfg = op.plan.migration or self.system.config.migration
        if source == SOURCE_MERGE:
            # The merged snapshot moves from the left partition's VM to
            # the pooled target through the mover like any other state
            # movement (chunked on the wire when configured).
            assert op.merged_ckpt is not None
            left = op.old_instances[0]
            left.vm.on_failure(
                lambda _vm, op=op: self._abort(
                    op, "partition failed during transfer"
                )
            )
            self.mover.transfer(
                op,
                left.vm,
                op.vms[0],
                op.merged_ckpt,
                self._merged_arrived,
                op,
                cfg=cfg,
            )
            return
        if source != SOURCE_BACKUP:
            # Fresh-state rebuilds have nothing to move.  Pass through.
            self._enter_restore(op)
            return
        # External-tier restores have no live source endpoint: the store
        # is reliable storage, so the mover ships with src_vm=None (the
        # transfer still pays network latency/bandwidth to the target).
        assert op.backup_vm is not None or op.external_restore
        for part, slot, vm in zip(op.parts, op.new_slots, op.vms):
            self.mover.transfer(
                op,
                op.backup_vm,
                vm,
                part,
                self._part_arrived,
                op,
                slot,
                vm,
                cfg=cfg,
            )

    def _merged_arrived(self, _ckpt: Checkpoint, op: Reconfiguration) -> None:
        if op.aborted or op.finished:
            return
        self._enter_restore(op)

    def _part_arrived(
        self,
        part: Checkpoint,
        op: Reconfiguration,
        slot: Slot,
        vm: VirtualMachine,
    ) -> None:
        """One state partition landed on its target VM."""
        self._restore_one(op, part, slot, vm)

    # ----------------------------------------------------- fluid migration

    def _fluid_eligible(self, op: Reconfiguration) -> bool:
        """Whether this operation can run as a fluid live migration.

        Fluid hand-over extracts chunks from the *live* source, so
        recoveries (dead source) and slot-preserving restores keep the
        backup-sourced path; everything else opts in through a chunking
        config with ``max_chunks > 1``.
        """
        plan = op.plan
        if plan.is_recovery or plan.preserve_slots:
            return False
        cfg = plan.migration or self.system.config.migration
        # Carve-outs are inherently fluid (the source must keep serving
        # the rest of its range) and may legitimately be a single chunk.
        if cfg.max_chunks <= 1 and plan.move_intervals is None:
            return False
        return self.system.live_instance(op.old_slot.uid) is not None

    def _prepare_fluid(self, op: Reconfiguration) -> None:
        """Plan a fluid migration: the key range leaves in chunks.

        Instead of freezing on a backed-up checkpoint, each chunk is
        extracted from the live source state, shipped, absorbed by its
        target and committed with a *partial* routing swap — upstreams
        route the moved range to the target while the source keeps
        processing everything that has not moved yet.  The source's
        backup stays frozen at its pre-migration checkpoint (the trim
        lock was taken at submit): together with the buffered upstream
        tuples it covers every uncommitted chunk if the migration aborts.
        """
        system = self.system
        if op.aborted:
            return
        plan = op.plan
        qm = system.query_manager
        old = system.live_instance(op.old_slot.uid)
        if old is None:
            self._abort(op, "source instance lost before migration")
            return
        old.stop_checkpointing()
        backup_vm = system.backup_locations.get(op.old_slot.uid)
        if backup_vm is None or not backup_vm.alive:
            self._abort(op, "backup VM unavailable")
            return
        op.backup_vm = backup_vm
        backup_vm.on_failure(
            lambda _vm, op=op: self._abort_fluid(op, "backup VM failed")
        )
        old.vm.on_failure(
            lambda _vm, op=op: self._abort_fluid(op, "source VM failed")
        )
        routing = qm.routing_to(plan.op_name)
        owned = routing.intervals_of(op.old_slot.uid)
        if plan.move_intervals is not None:
            # Carve-out: the moved range is dictated by the plan, not
            # derived by splitting.  Every moved interval must still be
            # owned by the source — routing may have shifted between the
            # detector's decision and now.
            moved = sorted(plan.move_intervals, key=lambda iv: iv.lo)
            contained = all(
                any(iv.lo >= o.lo and iv.hi <= o.hi for o in owned)
                for iv in moved
            )
            moved_width = sum(iv.width for iv in moved)
            owned_width = sum(o.width for o in owned)
            if not contained or moved_width >= owned_width:
                self._abort(op, "carve-out intervals no longer owned")
                return
            op.groups = [moved]
        else:
            guide = None
            if len(old.state) >= 4 * plan.parallelism:
                guide = [stable_hash(key) for key in old.state.keys()]
            op.groups = split_interval_groups(owned, plan.parallelism, guide)
        op.new_slots = [
            qm.new_slot(plan.op_name, i) for i in range(plan.parallelism)
        ]
        op.timeline.add_slots([slot.uid for slot in op.new_slots])
        # Pre-register the new slots so the per-chunk routing swaps
        # validate; they own no keys until their first chunk commits.
        qm.replace_slots(plan.op_name, [], op.new_slots)
        cfg = plan.migration or system.config.migration
        chunks: list[tuple[int, list[KeyInterval]]] = []
        for index, group in enumerate(op.groups):
            for piece in self.mover.plan_fluid_chunks(group, old.state, cfg):
                chunks.append((index, piece))
        op.fluid = FluidMigration(
            old, chunks, cfg, partial=plan.move_intervals is not None
        )
        self.mover.chunked_transfers += 1
        self._enter(op, PHASE_TRANSFER)
        self._next_chunk(op)

    def _next_chunk(self, op: Reconfiguration) -> None:
        if op.aborted or op.finished:
            return
        system = self.system
        fluid = op.fluid
        assert fluid is not None
        old = fluid.old
        if not (old.alive and old.vm.alive):
            self._abort_fluid(op, "source instance failed mid-migration")
            return
        index = fluid.next_index
        _target_index, intervals = fluid.chunks[index]
        # The chunk's τ floor freezes *now*, before parking begins: the
        # source stops processing the moving keys the instant they park,
        # so the chunk's state reflects them exactly up to this vector.
        # τ at extraction time would overstate it — keys the source keeps
        # advance τ past parked tuples, whose post-commit replay would
        # then be wrongly deduped at the target.
        fluid.chunk_floor = dict(old.state.positions)
        # Fresh tuples for the moving range park at the source from this
        # instant; the post-commit buffer replay re-delivers them to the
        # target, so parking never loses a tuple.
        old.begin_parking(intervals)
        if fluid.cfg.chunk_timeout is not None:
            event = system.sim.schedule(
                fluid.cfg.chunk_timeout, self._chunk_deadline, op, index
            )
            fluid.deadline = event
            op.timers.append(event)
        # Extracting and serialising the chunk is the migration's only
        # stop-the-world pause on the source: O(chunk), not O(state).
        ckpt_cfg = system.config.checkpoint
        entries = sum(
            1
            for key in old.state.keys()
            if any(stable_hash(key) in iv for iv in intervals)
        )
        pause = ckpt_cfg.serialize_base_seconds + entries * (
            ckpt_cfg.serialize_seconds_per_entry
        )
        fluid.max_pause = max(fluid.max_pause, pause)
        system.metrics.timeseries(
            f"migration_pause:{op.plan.op_name}"
        ).record(system.sim.now, pause)
        old.vm.submit(pause, self._chunk_extracted, op, index, front=True)

    def _chunk_extracted(self, op: Reconfiguration, index: int) -> None:
        if op.aborted or op.finished:
            return
        system = self.system
        fluid = op.fluid
        assert fluid is not None
        old = fluid.old
        if not (old.alive and old.vm.alive):
            self._abort_fluid(op, "source instance failed mid-extraction")
            return
        target_index, intervals = fluid.chunks[index]
        state = old.state.extract(intervals)
        # Stamp the parking-time τ floor (see _next_chunk), not the
        # extraction-time vector the extract copied.
        state.positions.clear()
        state.positions.update(fluid.chunk_floor)
        final = index == fluid.total - 1
        buffers: dict = {}
        if final and not fluid.partial:
            # The last chunk carries the source's output buffers: after
            # this commit the source retires, and a later downstream
            # recovery must still find its unacknowledged emissions.  A
            # partial (carve-out) migration never retires the source, so
            # its buffers stay where they are.
            buffers = {
                name: buf.snapshot() for name, buf in old.buffers.items()
            }
        target_slot = op.new_slots[target_index]
        ckpt = Checkpoint(
            op_name=op.plan.op_name,
            slot_uid=target_slot.uid,
            state=state,
            buffers=buffers,
            taken_at=system.sim.now,
            seq=1,
        )
        chunk = MigrationChunk(
            index=index,
            total=fluid.total,
            intervals=list(intervals),
            checkpoint=ckpt,
            shipped_at=system.sim.now,
        )
        fluid.in_flight = chunk
        self.mover.ship(
            op,
            old.vm,
            op.vms[target_index],
            ckpt,
            self._chunk_arrived,
            op,
            chunk,
            target_index,
            chunk_index=index,
            chunk_total=fluid.total,
        )

    def _chunk_arrived(
        self, op: Reconfiguration, chunk: MigrationChunk, target_index: int
    ) -> None:
        if op.aborted or op.finished:
            # A chunk that lands after the abort never took effect
            # anywhere; its state was already re-absorbed by the source
            # (or is covered by the source's frozen backup).
            return
        system = self.system
        fluid = op.fluid
        assert fluid is not None
        slot = op.new_slots[target_index]
        vm = op.vms[target_index]
        target = fluid.targets.get(target_index)
        if target is None:
            # First chunk for this target: deploy and restore, exactly
            # like a partitioned restore but with a fraction of the keys.
            target = system.deployment.deploy_replacement(slot, vm)
            target.restore_from(chunk.checkpoint)
            system.deployment.configure_services(target)
            target.replay_mode = REPLAY_DEDUP
            op.instances.append(target)
            fluid.targets[target_index] = target
        else:
            target.absorb_chunk(chunk.checkpoint)
        if chunk.final:
            self._enter(op, PHASE_RESTORE)
        self._commit_chunk(op, chunk, target)

    def _commit_chunk(
        self,
        op: Reconfiguration,
        chunk: MigrationChunk,
        target: "OperatorInstance",
    ) -> None:
        """Commit one chunk: partial routing swap, replay, sync backup.

        Ordering matters: routing swaps and upstream buffers repartition
        first (new tuples for the range now reach the target), then the
        source discards its parked tuples for the range (the post-swap
        buffer replay re-delivers every one of them), then the target's
        snapshot is stored as its backup *synchronously* — the moment
        routing points at the target it must be recoverable (Algorithm 2
        line 8: the scale out itself is fault tolerant).  The replay
        drain is armed last because a zero-replay drain completes
        synchronously and starts the next chunk.
        """
        system = self.system
        qm = system.query_manager
        plan = op.plan
        fluid = op.fluid
        assert fluid is not None
        old = fluid.old
        index = chunk.index

        if fluid.deadline is not None and fluid.deadline.pending:
            fluid.deadline.cancel()
        fluid.deadline = None
        fluid.in_flight = None

        routing = qm.routing_to(plan.op_name)
        new_routing = routing.split_off(
            op.old_slot.uid, chunk.intervals, target.uid
        )
        qm.store_routing(plan.op_name, new_routing)
        upstreams: list["OperatorInstance"] = []
        for up_name in qm.upstream_of(plan.op_name):
            for up_slot in qm.slots_of(up_name):
                upstream = system.live_instance(up_slot.uid)
                if upstream is not None:
                    upstreams.append(upstream)
        for upstream in upstreams:
            upstream.pause()
            upstream.set_routing(plan.op_name, new_routing)
            upstream.repartition_buffer(plan.op_name)
        discarded = old.commit_parked()
        if discarded:
            system.metrics.increment("migration_parked_discarded", discarded)
        if chunk.final and not fluid.partial:
            self._retire_source(op)
            target.replay_all_buffers()
        sent = 0
        by_slot: dict[int, int] = {}
        replay_ids: set[tuple[int, int]] = set()
        for upstream in upstreams:
            counts: dict[int, int] = {}
            sent += upstream.replay_buffer_to(
                target.uid, flag_replay=True, counts=counts, ids=replay_ids
            )
            for stamp, n in counts.items():
                by_slot[stamp] = by_slot.get(stamp, 0) + n
            self._watch_drain_feeder(op, upstream, set(counts))
        for upstream in upstreams:
            upstream.resume()
        op.committed = True
        fluid.committed_chunks += 1
        fluid.committed_intervals.extend(chunk.intervals)

        frozen = system.backup_of(op.old_slot.uid)
        if frozen is not None and op.backup_vm is not None and op.backup_vm.alive:
            # The committed ranges must be recoverable the moment routing
            # points at the target — but a snapshot of the *live* target
            # is not a sound backup mid-migration.  Its τ mixes two
            # delivery edges: the target's own processed frontier and the
            # absorbed chunk floors (source edge), max-merged.  Under
            # network delays the edges skew, so that merged vector
            # over-claims one edge or the other — a recovery would trim
            # and dedup away tuples only the in-flight commit replay ever
            # carried.  The frozen pre-migration checkpoint restricted to
            # the committed ranges is consistent by construction: its τ
            # is the source's single-edge prefix, everything since the
            # freeze is still buffered upstream (these positions make the
            # commit-time trim a no-op), and a restore replays all of it
            # exactly once.
            rollback = frozen.state.snapshot()
            rollback = rollback.extract(fluid.committed_intervals)
            backup = EpochCut(
                Checkpoint(
                    op_name=plan.op_name,
                    slot_uid=target.uid,
                    state=rollback,
                    buffers={
                        name: buf.snapshot()
                        for name, buf in target.buffers.items()
                    },
                    taken_at=system.sim.now,
                    seq=target.next_checkpoint_seq(),
                ),
                fence_epoch=target.epoch,
            )
            system.store_backup_sync(backup, op.backup_vm)

        if chunk.final:
            if fluid.partial:
                # The rollback backup above captured the moved keys'
                # pre-migration state; only now may the source's frozen
                # backup shed them and resume checkpointing.
                self._release_carve_source(op)
            self._enter(op, PHASE_COMMIT)
            self._enter(op, PHASE_REPLAY_DRAIN)
            system.record_vm_count()
            if fluid.partial:
                system.metrics.mark_event(
                    system.sim.now,
                    "hot_key_carveout",
                    f"{plan.op_name} {chunk.intervals} -> slot {target.uid}",
                )
            else:
                system.metrics.mark_event(
                    system.sim.now,
                    "scale_out",
                    f"{plan.op_name} pi={plan.parallelism} fluid "
                    f"chunks={fluid.total}",
                )
        system.metrics.mark_event(
            system.sim.now,
            "chunk_committed",
            f"{plan.op_name} chunk {index + 1}/{fluid.total} -> "
            f"slot {target.uid}",
        )
        self._notify_chunk(op, index, fluid.total)
        op.pending_drain_uids = {target.uid}
        # Between drains the target sits in REPLAY_DROP (a stray network
        # duplicate of an earlier wave must not be admitted); each commit
        # re-arms dedup mode for its own wave.
        target.replay_mode = REPLAY_DEDUP
        target.expect_replays(
            sent,
            lambda op=op, chunk=chunk, target=target: self._chunk_drained(
                op, chunk, target
            ),
            flagged_only=True,
            by_slot=by_slot,
            drain_intervals=chunk.intervals,
            expected_ids=replay_ids,
        )

    def _retire_source(self, op: Reconfiguration) -> None:
        """Final chunk committed: the emptied source partition retires."""
        system = self.system
        qm = system.query_manager
        assert op.fluid is not None
        old = op.fluid.old
        system.trim_locks.discard(op.old_slot.uid)
        qm.replace_slots(op.plan.op_name, [op.old_slot], [])
        system.instances.pop(op.old_slot.uid, None)
        if old.alive:
            system.retire_backup_store(old.vm)
            old.stop(release_vm=True)
        system.drop_backup(op.old_slot.uid)
        if system.detector is not None:
            system.detector.forget_slot(op.old_slot.uid)

    def _release_carve_source(self, op: Reconfiguration) -> None:
        """Final carve-out chunk committed: the source stays, slimmer.

        The inverse of :meth:`_retire_source` for partial migrations —
        the source keeps its slot, buffers and VM.  Its frozen backup
        sheds the moved ranges (their authoritative copy is now the
        carved slot's synchronous backup; a later source restore must
        not resurrect them, or a state-iterating operator would double
        count), the trim lock lifts and checkpointing resumes so the
        replay window starts shrinking again.
        """
        system = self.system
        assert op.fluid is not None
        old = op.fluid.old
        system.trim_locks.discard(op.old_slot.uid)
        stale = system.backup_of(op.old_slot.uid)
        if stale is not None:
            stale.state.extract(op.fluid.committed_intervals)
        if old.alive and old.vm.alive:
            old.start_checkpointing()
        system.telemetry.increment("scaling.hot_key_carveouts")

    def _chunk_drained(
        self,
        op: Reconfiguration,
        chunk: MigrationChunk,
        target: "OperatorInstance",
    ) -> None:
        """The target re-processed every replay of one committed chunk."""
        if op.finished:
            return
        op.pending_drain_uids.discard(target.uid)
        fluid = op.fluid
        assert fluid is not None
        if op.aborted:
            # The migration died while this (already committed) chunk
            # drained; the kept target returns to the healthy default.
            target.replay_mode = REPLAY_DROP
            return
        if chunk.final:
            self._finish(op)
            return
        # Drop any late stragglers of this wave until the next commit
        # re-arms dedup mode for its own replay set.
        target.replay_mode = REPLAY_DROP
        fluid.next_index = chunk.index + 1
        self._next_chunk(op)

    def _chunk_deadline(self, op: Reconfiguration, index: int) -> None:
        """A chunk outlived ``chunk_timeout`` before committing."""
        if op.aborted or op.finished:
            return
        fluid = op.fluid
        if fluid is None or fluid.committed_chunks > index:
            return
        self._abort_fluid(op, f"chunk {index} deadline exceeded")

    def _abort_fluid(self, op: Reconfiguration, why: str) -> None:
        """Abort a fluid migration to a *consistent* routing state.

        Chunks whose routing swap committed stay committed — their
        targets are live partitions already serving traffic, each with a
        backup from its commit.  Everything else unwinds: the in-flight
        chunk's state returns to the live source (or stays covered by
        the source's frozen backup if the source died), parked tuples
        re-enter the source's queue, and chunk-less targets are torn
        down with their slots unregistered.
        """
        if op.aborted or op.finished:
            return
        system = self.system
        qm = system.query_manager
        plan = op.plan
        fluid = op.fluid
        assert fluid is not None
        op.aborted = True
        if op in self._active:
            self._active.remove(op)
        self.operations_aborted += 1
        self._busy_slots.pop(op.old_slot.uid, None)
        self._cancel_timers(op)
        old = fluid.old
        chunk = fluid.in_flight
        if old.alive and old.vm.alive:
            if chunk is not None:
                # The uncommitted chunk never took effect anywhere (the
                # arrival callback checks ``op.aborted``): its extracted
                # state goes straight back into the live source.
                old.reabsorb_state(chunk.checkpoint.state)
            for tup in old.abort_parking():
                old.reinject(tup)
            old.start_checkpointing()
        else:
            old.abort_parking()
        # The source's frozen backup still holds every migrated key;
        # strip the committed ranges so a later restore of the source
        # cannot resurrect state that now lives on the kept targets.
        stale = system.backup_of(op.old_slot.uid)
        if stale is not None and fluid.committed_intervals:
            stale.state.extract(fluid.committed_intervals)
        system.trim_locks.discard(op.old_slot.uid)
        keep_vms: set[int] = set()
        for target_index, slot in enumerate(op.new_slots):
            target = fluid.targets.get(target_index)
            if target is not None:
                # At least one chunk committed (deploy and first commit
                # are atomic): this is a live partition now.  It keeps
                # its VM and backup; a drain in flight completes on its
                # own (see the aborted branch of ``_chunk_drained``).
                keep_vms.add(op.vms[target_index].vm_id)
                if target.uid not in op.pending_drain_uids:
                    target.replay_mode = REPLAY_DROP
            else:
                qm.replace_slots(plan.op_name, [slot], [])
                system.drop_backup(slot.uid)
        for vm in op.vms:
            if vm.vm_id not in keep_vms:
                system.pool.give_back(vm)
        op.vms = [vm for vm in op.vms if vm.vm_id in keep_vms]
        system.metrics.mark_event(
            system.sim.now,
            "scale_out_aborted",
            f"{plan.op_name}: {why} "
            f"(kept {fluid.committed_chunks}/{fluid.total} chunks)",
        )
        op.timeline.enter(PHASE_ABORTED, system.sim.now)
        op.timeline.close(system.sim.now, "aborted")
        op.phase = PHASE_ABORTED
        self._notify(op, PHASE_ABORTED)

    # ------------------------------------------------------------- RESTORE

    def _enter_restore(self, op: Reconfiguration) -> None:
        self._enter(op, PHASE_RESTORE)
        source = op.plan.state_source
        if source == SOURCE_MERGE:
            self._restore_merged(op)
        elif source in (SOURCE_FRESH, SOURCE_SOURCE_REPLAY):
            self._restore_fresh(op)
        # SOURCE_BACKUP restores arrive per-part via _restore_one.

    def _restore_one(
        self, op: Reconfiguration, part: Checkpoint, slot: Slot, vm: VirtualMachine
    ) -> None:
        """One state partition arrived at its VM: deploy and restore."""
        if op.aborted:
            # The abort already returned every VM it knew about; only
            # give this one back if it somehow escaped that sweep.
            if vm in op.vms:
                op.vms.remove(vm)
                self.system.pool.give_back(vm)
            return
        system = self.system
        if op.phase == PHASE_TRANSFER:
            self._enter(op, PHASE_RESTORE)
        zombie = None
        if op.plan.preserve_slots:
            # A checkpoint that was in flight at crash time may have
            # landed after recovery started; restore the freshest one.
            fresh = system.backup_of(op.old_slot.uid)
            if fresh is not None:
                part = fresh
            system.trim_locks.discard(op.old_slot.uid)
            if op.plan.is_recovery:
                # Epoch-fence the slot *before* building the replacement:
                # the successor is born under the bumped epoch, and the
                # predecessor — which may be a falsely-declared-dead
                # zombie, still running — keeps the old one.  Everything
                # the zombie emits from here on is rejected by epoch
                # checks at receivers, the backup path and the external
                # store, so two instances sharing one slot uid can never
                # fork its timeline.
                zombie = system.instances.get(op.old_slot.uid)
                # The restored checkpoint's output clock is the fence
                # floor: emissions at or below it are committed (the
                # checkpoint acknowledged them, upstream buffers were
                # trimmed) and the successor — whose clock resumes from
                # it — never re-derives them, so receivers keep
                # accepting them even under the superseded epoch.
                system.fence_slot(op.old_slot.uid, floor=part.out_clock)
        instance = system.deployment.deploy_replacement(slot, vm)
        instance.restore_from(part)
        system.deployment.configure_services(instance)
        op.instances.append(instance)
        if zombie is not None and zombie.alive and zombie.vm.alive:
            # Tell the live predecessor it was superseded.  The notice is
            # a control message from the successor's VM, so a zombie cut
            # off by a partition keeps running — harmlessly — until the
            # partition heals and the notice gets through.
            system.notify_fenced(zombie, via_vm=vm)
        if len(op.instances) == op.plan.parallelism:
            self._enter_commit(op)

    def _restore_merged(self, op: Reconfiguration) -> None:
        system = self.system
        left, right = op.old_instances
        if not (left.vm.alive and right.vm.alive):
            self._abort(op, "partition failed before restore")
            return
        assert op.merged_ckpt is not None
        vm = op.vms[0]
        instance = system.deployment.build_instance(op.new_slots[0], vm)
        system.deployment.wire_routing(instance)
        instance.restore_from(op.merged_ckpt)
        system.deployment.configure_services(instance)
        op.instances = [instance]
        self._enter_commit(op)

    def _restore_fresh(self, op: Reconfiguration) -> None:
        """Create a fresh-state replacement under a *new* slot uid.

        Rebuild-based strategies re-emit results from a zeroed output
        clock; a new slot identity keeps downstream duplicate filters
        from wrongly discarding those emissions.
        """
        system = self.system
        qm = system.query_manager
        plan = op.plan
        failed = system.instances.get(op.old_slot.uid)
        if failed is None:
            self._abort(op, "failed instance vanished before restore")
            return
        vm = op.vms[0]
        new_slot = qm.new_slot(plan.op_name, failed.slot.index)
        op.new_slots = [new_slot]
        op.timeline.add_slots([new_slot.uid])
        qm.replace_slots(plan.op_name, [failed.slot], [new_slot])
        new_routing = qm.routing_to(plan.op_name).reassign(
            failed.uid, new_slot.uid
        )
        qm.store_routing(plan.op_name, new_routing)
        zombie = failed if failed.alive and failed.vm.alive else None
        if plan.is_recovery:
            # The replacement takes a fresh uid, but the *old* uid's
            # epoch is still fenced: downstream duplicate filters keep
            # per-origin watermarks for it, and a falsely-declared-dead
            # zombie emitting under the old uid would advance them past
            # tuples the rebuild is about to re-derive.
            system.fence_slot(failed.uid)
        system.instances.pop(failed.uid, None)
        instance = system.deployment.deploy_replacement(new_slot, vm)
        system.deployment.configure_services(instance)
        if zombie is not None:
            system.notify_fenced(zombie, via_vm=vm)
        for up_name in qm.upstream_of(plan.op_name):
            for slot in qm.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None:
                    upstream.set_routing(plan.op_name, new_routing)
                    upstream.repartition_buffer(plan.op_name)
        if system.detector is not None:
            system.detector.forget_slot(failed.uid)
        op.instances = [instance]
        if plan.state_source == SOURCE_SOURCE_REPLAY:
            self._mark_replay_path(op, instance)
        self._enter_commit(op)

    def _mark_replay_path(
        self, op: Reconfiguration, instance: "OperatorInstance"
    ) -> None:
        """Put the rebuilt operator and its ancestors into replay-accept
        mode; healthy partitions elsewhere keep dropping flagged tuples."""
        system = self.system
        query = system.query_manager.query
        assert query is not None
        ancestors: set[str] = set()
        frontier = [instance.op_name]
        while frontier:
            name = frontier.pop()
            for up in query.upstream_of(name):
                if up not in ancestors:
                    ancestors.add(up)
                    frontier.append(up)
        op.marked = [instance]
        instance.replay_mode = REPLAY_ACCEPT
        for name in ancestors:
            if query.is_source(name):
                continue
            for inst in system.instances_of(name):
                if inst.alive:
                    inst.replay_mode = REPLAY_ACCEPT
                    op.marked.append(inst)

    # -------------------------------------------------------------- COMMIT

    def _enter_commit(self, op: Reconfiguration) -> None:
        self._enter(op, PHASE_COMMIT)
        source = op.plan.state_source
        if source == SOURCE_BACKUP:
            if op.plan.preserve_slots:
                self._commit_preserved(op)
            else:
                self._commit_partitioned(op)
        elif source == SOURCE_MERGE:
            self._commit_merged(op)
        elif source == SOURCE_FRESH:
            self._commit_fresh(op)
        else:
            self._commit_source_replay(op)

    def _commit_partitioned(self, op: Reconfiguration) -> None:
        """Swap routing to the new partitions and replay (Alg. 3 l. 7-14)."""
        system = self.system
        qm = system.query_manager
        plan = op.plan
        op.committed = True
        assert op.groups is not None

        # Freeze the old instance now: everything it processed up to this
        # instant was already emitted downstream, so the new partitions
        # suppress re-emission for inputs at or below these positions
        # (exactly-once hand-over) while still rebuilding state from them.
        system.trim_locks.discard(op.old_slot.uid)
        frozen = system.instances.get(op.old_slot.uid)
        if frozen is not None and frozen.alive and frozen.vm.alive:
            op.suppress = frozen.freeze_positions()
        for instance in op.instances:
            instance.set_suppression(op.suppress)

        # Execution graph and authoritative routing state.
        qm.replace_slots(plan.op_name, [op.old_slot], op.new_slots)
        replacements = [
            (interval, slot.uid)
            for group, slot in zip(op.groups, op.new_slots)
            for interval in group
        ]
        old_routing = qm.routing_to(plan.op_name)
        new_routing = old_routing.replace_target(op.old_slot.uid, replacements)
        qm.store_routing(plan.op_name, new_routing)

        # Retire the old instance and its backup (Algorithm 3, line 8;
        # the VM is only released now that restore-state has completed).
        old = system.instances.pop(op.old_slot.uid, None)
        if old is not None and old.alive:
            # A live predecessor is retired gracefully — this covers both
            # plain scale out and parallel recovery of a falsely-suspected
            # primary.  No fence: its frozen positions became the
            # suppression bound, which assumes its in-flight emissions
            # still deliver.
            system.retire_backup_store(old.vm)
            old.stop(release_vm=True)
        elif plan.is_recovery:
            # The predecessor was believed dead.  Fence its (retired) uid
            # so anything still stamped with it — a zombie that revives
            # behind a partition, or its in-flight checkpoint shipments —
            # is rejected rather than replayed into the new partitions'
            # timelines.  The partitioned checkpoint's output clock is
            # the committed-prefix floor — the partitions replay inputs
            # from its positions and re-derive only what lies above it.
            system.fence_slot(
                op.old_slot.uid,
                floor=op.ckpt.out_clock if op.ckpt is not None else 0,
            )
        system.drop_backup(op.old_slot.uid)
        if system.detector is not None:
            system.detector.forget_slot(op.old_slot.uid)

        # Replay the restored output buffers to downstream operators
        # (Algorithm 3, line 7); receivers drop what they already saw.
        for instance in op.instances:
            instance.replay_all_buffers()

        # Update every upstream operator: stop, repartition routing and
        # buffers, replay unprocessed tuples, restart (lines 9-14).
        upstreams: list["OperatorInstance"] = []
        for up_name in qm.upstream_of(plan.op_name):
            for slot in qm.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None:
                    upstreams.append(upstream)
        sent: dict[int, int] = {slot.uid: 0 for slot in op.new_slots}
        by_slot: dict[int, dict[int, int]] = {
            slot.uid: {} for slot in op.new_slots
        }
        for upstream in upstreams:
            upstream.pause()
            upstream.set_routing(plan.op_name, new_routing)
            upstream.repartition_buffer(plan.op_name)
        for upstream in upstreams:
            feeder_stamps: set[int] = set()
            for slot in op.new_slots:
                counts: dict[int, int] = {}
                sent[slot.uid] += upstream.replay_buffer_to(
                    slot.uid, flag_replay=True, counts=counts
                )
                per = by_slot[slot.uid]
                for stamp, n in counts.items():
                    per[stamp] = per.get(stamp, 0) + n
                feeder_stamps |= set(counts)
            self._watch_drain_feeder(op, upstream, feeder_stamps)
        op.pending_drain_uids = {instance.uid for instance in op.instances}
        self._enter(op, PHASE_REPLAY_DRAIN)
        for instance in op.instances:
            instance.replay_mode = REPLAY_DEDUP
            instance.expect_replays(
                sent[instance.uid],
                lambda op=op, uid=instance.uid: self._drain_done(op, uid),
                flagged_only=True,
                by_slot=by_slot[instance.uid],
            )
        for upstream in upstreams:
            upstream.resume()

        system.record_vm_count()
        kind = "recovery_restored" if plan.is_recovery else "scale_out"
        system.metrics.mark_event(
            system.sim.now, kind, f"{plan.op_name} pi={plan.parallelism}"
        )

    def _commit_preserved(self, op: Reconfiguration) -> None:
        """Serial recovery hand-over: same slot, restored τ, replays."""
        system = self.system
        qm = system.query_manager
        op.committed = True
        instance = op.instances[0]
        instance.replay_all_buffers()
        upstreams: list["OperatorInstance"] = []
        for up_name in qm.upstream_of(op.plan.op_name):
            for slot in qm.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None and upstream.uid != instance.uid:
                    upstreams.append(upstream)
        for upstream in upstreams:
            upstream.pause()
        sent = 0
        by_slot: dict[int, int] = {}
        for upstream in upstreams:
            counts: dict[int, int] = {}
            sent += upstream.replay_buffer_to(
                instance.uid, flag_replay=True, counts=counts
            )
            for stamp, n in counts.items():
                by_slot[stamp] = by_slot.get(stamp, 0) + n
            self._watch_drain_feeder(op, upstream, set(counts))
        op.pending_drain_uids = {instance.uid}
        self._enter(op, PHASE_REPLAY_DRAIN)
        instance.replay_mode = REPLAY_DEDUP
        instance.expect_replays(
            sent,
            lambda uid=instance.uid: self._drain_done(op, uid),
            flagged_only=True,
            by_slot=by_slot,
        )
        for upstream in upstreams:
            upstream.resume()
        system.record_vm_count()
        system.metrics.mark_event(
            system.sim.now, "recovery_restored", repr(op.old_slot)
        )

    def _commit_merged(self, op: Reconfiguration) -> None:
        system = self.system
        qm = system.query_manager
        plan = op.plan
        op.committed = True
        left, right = op.old_instances
        instance = op.instances[0]
        new_uid = instance.uid

        qm.replace_slots(
            plan.op_name, [left.slot, right.slot], [op.new_slots[0]]
        )
        routing = qm.routing_to(plan.op_name)
        routing = routing.reassign(left.uid, new_uid)
        routing = routing.merge_targets(new_uid, right.uid)
        qm.store_routing(plan.op_name, routing)

        # Initial backup for the merged partition (merge is fault tolerant
        # from the instant it commits).
        backup_vm = system.choose_backup_vm(instance)
        if backup_vm is not None:
            store = system.backup_stores.setdefault(
                backup_vm.vm_id, BackupStore()
            )
            store.store(op.merged_ckpt)
            system.backup_locations[new_uid] = backup_vm

        for old in (left, right):
            system.instances.pop(old.uid, None)
            system.retire_backup_store(old.vm)
            old.stop(release_vm=True)
            system.drop_backup(old.uid)
            if system.detector is not None:
                system.detector.forget_slot(old.uid)

        for upstream in op.upstreams:
            if not upstream.alive:
                continue
            upstream.set_routing(plan.op_name, routing)
            upstream.repartition_buffer(plan.op_name)
            upstream.resume()
        system.record_vm_count()
        # Merges quiesced before committing: nothing left to drain.
        self._enter(op, PHASE_REPLAY_DRAIN)
        self._finish(op)

    def _commit_fresh(self, op: Reconfiguration) -> None:
        """Upstream backup: replay upstream buffers into the fresh state.

        Unlike R+SM's coordinated scale-out path, plain upstream backup
        does not stop upstream operators: replayed tuples compete with
        fresh input at the rebuilt operator, which is what makes UB
        slower than SR at high rates (§6.2).
        """
        system = self.system
        qm = system.query_manager
        op.committed = True
        instance = op.instances[0]
        instance.replay_mode = REPLAY_ACCEPT
        upstreams: list["OperatorInstance"] = []
        for up_name in qm.upstream_of(op.plan.op_name):
            for slot in qm.slots_of(up_name):
                upstream = system.live_instance(slot.uid)
                if upstream is not None:
                    upstreams.append(upstream)
        sent = 0
        by_slot: dict[int, int] = {}
        for upstream in upstreams:
            counts: dict[int, int] = {}
            sent += upstream.replay_buffer_to(
                instance.uid, flag_replay=True, counts=counts
            )
            for stamp, n in counts.items():
                by_slot[stamp] = by_slot.get(stamp, 0) + n
            self._watch_drain_feeder(op, upstream, set(counts))
        op.pending_drain_uids = {instance.uid}
        self._enter(op, PHASE_REPLAY_DRAIN)
        instance.expect_replays(
            sent,
            lambda uid=instance.uid: self._drain_done(op, uid),
            flagged_only=True,
            by_slot=by_slot,
        )
        system.record_vm_count()

    def _commit_source_replay(self, op: Reconfiguration) -> None:
        """Source replay: stop the sources and push their buffers through
        the whole pipeline; completion is pipeline quiescence."""
        system = self.system
        op.committed = True
        for controller in system.source_controllers.values():
            controller.pause()
        query = system.query_manager.query
        assert query is not None
        replayed = 0
        for src_name in query.sources:
            for source in system.instances_of(src_name):
                if source.alive:
                    replayed += source.replay_all_buffers(flag_replay=True)
        self._enter(op, PHASE_REPLAY_DRAIN)
        if replayed == 0:
            self._finish(op)
            system.record_vm_count()
            return
        state = {"delivered": system.network.messages_delivered, "quiet": 0}
        system.sim.schedule(_SR_POLL, self._poll_sr_quiescence, op, state)
        system.record_vm_count()

    # -------------------------------------------------------- REPLAY_DRAIN

    def _watch_drain_feeder(
        self,
        op: Reconfiguration,
        upstream: "OperatorInstance",
        stamps: set[int],
    ) -> None:
        """Release a feeder's drain share if the feeder dies mid-drain.

        A committed operation's replay drain counts on every scheduled
        replay arriving; a feeder VM crash silently drops its unsent
        replays, which would leave the drain (and the busy slot) wedged
        forever.  The feeder's own recovery re-delivers the gap from its
        restored buffer, so the draining instance releases the share and
        rewinds its arrival watermark (see ``release_replays_from``).
        """
        if not stamps:
            return
        upstream.vm.on_failure(
            lambda _vm, op=op, stamps=frozenset(stamps): (
                self._drain_feeder_failed(op, stamps)
            )
        )

    def _drain_feeder_failed(
        self, op: Reconfiguration, stamps: frozenset[int]
    ) -> None:
        if op.finished:
            return
        for uid in list(op.pending_drain_uids):
            dest = self.system.instances.get(uid)
            if dest is None or not dest.alive:
                continue
            for stamp in stamps:
                dest.release_replays_from(stamp)

    def _drain_done(self, op: Reconfiguration, uid: int) -> None:
        """One replacement's replay drain completed (or was released
        because the replacement died).  Idempotent per slot uid."""
        if op.finished:
            return
        op.pending_drain_uids.discard(uid)
        if op.pending_drain_uids:
            return
        self._finish(op)

    def _poll_sr_quiescence(self, op: Reconfiguration, state: dict) -> None:
        system = self.system
        delivered = system.network.messages_delivered
        busy = any(
            inst.vm.alive and not inst.is_quiescent()
            for inst in system.instances.values()
            if inst.alive
        )
        if not busy and delivered == state["delivered"]:
            state["quiet"] += 1
        else:
            state["quiet"] = 0
        state["delivered"] = delivered
        if state["quiet"] >= _SR_QUIET_POLLS:
            self._finish(op)
            return
        system.sim.schedule(_SR_POLL, self._poll_sr_quiescence, op, state)

    # ----------------------------------------------------------------- DONE

    def _finish(self, op: Reconfiguration) -> None:
        if op.finished:
            return
        system = self.system
        plan = op.plan
        op.finished = True
        self._cancel_timers(op)
        if op in self._active:
            self._active.remove(op)
        origin = (
            plan.failure_time if plan.failure_time is not None else op.started_at
        )
        duration = system.sim.now - origin
        if plan.state_source == SOURCE_MERGE:
            self.merges_completed += 1
            self._busy_merges.discard(plan.op_name)
            system.metrics.mark_event(
                system.sim.now,
                "scale_in_complete",
                f"{plan.op_name} -> {op.instances[0].slot!r} {duration:.3f}s",
            )
        else:
            if plan.state_source == SOURCE_SOURCE_REPLAY:
                for inst in op.marked:
                    inst.replay_mode = REPLAY_DROP
                for controller in system.source_controllers.values():
                    controller.resume()
            else:
                for instance in op.instances:
                    instance.replay_mode = REPLAY_DROP
            self._busy_slots.pop(op.old_slot.uid, None)
            self.operations_completed += 1
            if plan.is_recovery:
                detail = (
                    f"{plan.label} {op.instances[0].slot!r}".strip()
                    if plan.label
                    else plan.op_name
                )
                system.metrics.mark_event(
                    system.sim.now,
                    "recovery_complete",
                    f"{detail} {duration:.3f}s",
                )
                system.metrics.timeseries("recovery_time").record(
                    system.sim.now, duration
                )
            else:
                system.metrics.mark_event(
                    system.sim.now,
                    "scale_out_complete",
                    f"{plan.op_name} {duration:.3f}s",
                )
                system.metrics.timeseries("scale_out_duration").record(
                    system.sim.now, duration
                )
        op.timeline.enter(PHASE_DONE, system.sim.now)
        op.timeline.close(system.sim.now, "done")
        op.phase = PHASE_DONE
        self._notify(op, PHASE_DONE)
        if plan.on_complete is not None:
            plan.on_complete(duration)

    # ---------------------------------------------------------------- abort

    def abort_operations_on_backup_vm(self, vm: VirtualMachine) -> None:
        """Abort in-flight operations whose state lives on a retiring VM."""
        for op in list(self._active):
            if (
                op.backup_vm is not None
                and op.backup_vm.vm_id == vm.vm_id
                and not op.committed
            ):
                self._abort(op, "backup VM retired")

    def _abort(self, op: Reconfiguration, why: str) -> None:
        if op.aborted or op.finished:
            return
        if op.fluid is not None:
            # Fluid migrations commit chunk by chunk; their abort keeps
            # the committed chunks instead of unwinding everything.
            self._abort_fluid(op, why)
            return
        if op.committed:
            return
        system = self.system
        plan = op.plan
        op.aborted = True
        self._cancel_timers(op)
        if op in self._active:
            self._active.remove(op)
        if plan.state_source == SOURCE_MERGE:
            self.merges_aborted += 1
            self._busy_merges.discard(plan.op_name)
            for upstream in op.upstreams:
                if upstream.alive:
                    upstream.resume()
            for vm in op.vms:
                system.pool.give_back(vm)
            op.vms.clear()
            system.metrics.mark_event(
                system.sim.now, "scale_in_aborted", f"{plan.op_name}: {why}"
            )
        else:
            self.operations_aborted += 1
            self._busy_slots.pop(op.old_slot.uid, None)
            system.trim_locks.discard(op.old_slot.uid)
            # Re-arm checkpointing if the (still live) old instance had
            # its daemon stopped during preparation.
            survivor = system.instances.get(op.old_slot.uid)
            if survivor is not None and survivor.alive:
                survivor.start_checkpointing()
            # The frozen bottleneck continues unaffected (§4.3 benefit iii).
            old = system.instance(op.old_slot.uid)
            if old is not None and old.alive:
                old.resume()
            # Tear down replacement instances deployed before the abort:
            # they were never committed into the execution graph, and
            # leaving them registered would leak zombie instances (and
            # pool VMs that still appear occupied).
            for instance in op.instances:
                if (
                    not op.plan.preserve_slots
                    and system.instances.get(instance.uid) is instance
                ):
                    system.instances.pop(instance.uid, None)
                instance.stop(release_vm=False)
            op.instances.clear()
            if (
                plan.state_source == SOURCE_BACKUP
                and not op.plan.preserve_slots
            ):
                # Drop the partitions' initial backups stored during
                # CHECKPOINT_PARTITION (Algorithm 2, line 8).
                for slot in op.new_slots:
                    if slot.uid != op.old_slot.uid:
                        system.drop_backup(slot.uid)
            for vm in op.vms:
                system.pool.give_back(vm)
            op.vms.clear()
            kind = (
                "scale_out_aborted"
                if plan.state_source == SOURCE_BACKUP
                else "recovery_aborted"
            )
            system.metrics.mark_event(
                system.sim.now, kind, f"{plan.op_name}: {why}"
            )
            if plan.is_recovery and system.recovery is not None:
                # The operator is still dead; retry under the recovery
                # coordinator's capped exponential backoff (repeatedly
                # aborted recoveries — e.g. a backup VM dying every
                # attempt — wait longer each round instead of hammering
                # a fixed 1 s schedule).
                failed = system.instances.get(op.old_slot.uid)
                if failed is not None and not failed.alive:
                    assert plan.failure_time is not None
                    system.recovery.schedule_retry(failed, plan.failure_time)
        op.timeline.enter(PHASE_ABORTED, system.sim.now)
        op.timeline.close(system.sim.now, "aborted")
        op.phase = PHASE_ABORTED
        self._notify(op, PHASE_ABORTED)
