"""Bottleneck detector (§5.1, Fig. 4).

Collects per-VM CPU utilisation reports every ``r`` seconds, runs the
scaling policy over them and forwards decisions to the scale-out
coordinator.  Sources and sinks are excluded — the paper treats them as
fixed infrastructure whose saturation bounds the achievable L-rating.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.scaling.policy import ScaleOutDecision, ThresholdScalingPolicy
from repro.scaling.reports import UtilizationReport, UtilizationTracker
from repro.sim.simulator import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import StreamProcessingSystem


class BottleneckDetector:
    """Periodic utilisation collection + policy evaluation."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        self.policy = ThresholdScalingPolicy(system.config.scaling)
        self.tracker = UtilizationTracker()
        self._task: PeriodicTask | None = None
        self.reports_collected = 0
        self.decisions_made = 0

    def start(self) -> None:
        """Begin periodic report collection."""
        if self._task is None:
            self._task = self.system.sim.every(
                self.system.config.scaling.report_interval, self._tick
            )

    def stop(self) -> None:
        """Stop collecting."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        reports = self.collect_reports()
        self.reports_collected += len(reports)
        decisions = self.policy.observe(
            reports, self.system.sim.now, self._vm_budget_left()
        )
        for decision in decisions:
            self._apply(decision)

    def collect_reports(self) -> list[UtilizationReport]:
        """One round of utilisation reports from all worker VMs."""
        now = self.system.sim.now
        reports = []
        for instance in self.system.worker_instances():
            report = self.tracker.sample(
                now,
                instance.op_name,
                instance.uid,
                instance.vm.vm_id,
                instance.vm.busy_seconds_total(),
            )
            if report is not None:
                self.system.metrics.timeseries(
                    f"util:{instance.op_name}[{instance.slot.index}]"
                ).record(now, report.utilization)
                reports.append(report)
        return reports

    def _vm_budget_left(self) -> int | None:
        max_vms = self.system.config.scaling.max_vms
        if max_vms is None:
            return None
        return max(0, max_vms - self.system.worker_vm_count())

    def _apply(self, decision: ScaleOutDecision) -> None:
        coordinator = self.system.scale_out
        if coordinator is None:
            return
        started = coordinator.scale_out_slot(
            decision.slot_uid,
            parallelism=self.system.config.scaling.split_factor,
            reason=decision.reason,
        )
        if started:
            self.decisions_made += 1
