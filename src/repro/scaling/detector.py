"""Bottleneck detector (§5.1, Fig. 4).

Collects per-VM CPU utilisation reports every ``r`` seconds, runs the
scaling policy over them and forwards decisions to the scale-out
coordinator.  Sources and sinks are excluded — the paper treats them as
fixed infrastructure whose saturation bounds the achievable L-rating.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.scaling.hotkey import HotKeyManager
from repro.scaling.policy import REASON_PREDICTED, ScaleOutDecision, make_policy
from repro.scaling.reports import UtilizationReport, UtilizationTracker
from repro.sim.simulator import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import StreamProcessingSystem


class BottleneckDetector:
    """Periodic utilisation collection + policy evaluation."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system
        self.policy = make_policy(system.config.scaling)
        self.tracker = UtilizationTracker()
        self.hot_keys = (
            HotKeyManager(system)
            if system.config.scaling.hot_key_enabled
            else None
        )
        self._task: PeriodicTask | None = None
        self.reports_collected = 0
        self.decisions_made = 0

    def start(self) -> None:
        """Begin periodic report collection."""
        if self._task is None:
            self._task = self.system.sim.every(
                self.system.config.scaling.report_interval, self._tick
            )

    def stop(self) -> None:
        """Stop collecting."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        reports = self.collect_reports()
        self.reports_collected += len(reports)
        if self.hot_keys is not None:
            # Carve-outs get first claim on a hot slot: a started carve
            # arms the policy cooldown for its source, so the threshold
            # rule does not waste the round on a futile interval split.
            self.hot_keys.observe(reports)
        decisions = self.policy.observe(
            reports, self.system.sim.now, self._vm_budget_left()
        )
        for decision in decisions:
            self._apply(decision)

    def collect_reports(self) -> list[UtilizationReport]:
        """One round of utilisation reports from all worker VMs."""
        now = self.system.sim.now
        reports = []
        for instance in self.system.worker_instances():
            report = self.tracker.sample(
                now,
                instance.op_name,
                instance.uid,
                instance.vm.vm_id,
                instance.vm.busy_seconds_total(),
            )
            if report is not None:
                self.system.metrics.timeseries(
                    f"util:{instance.op_name}[{instance.slot.index}]"
                ).record(now, report.utilization)
                reports.append(report)
        return reports

    def forget_slot(self, slot_uid: int) -> None:
        """Drop every per-slot tracking structure for a retired slot."""
        self.tracker.forget(slot_uid)
        self.policy.forget_slot(slot_uid)
        if self.hot_keys is not None:
            self.hot_keys.forget_slot(slot_uid)

    def _vm_budget_left(self) -> int | None:
        max_vms = self.system.config.scaling.max_vms
        if max_vms is None:
            return None
        return max(0, max_vms - self.system.worker_vm_count())

    def _apply(self, decision: ScaleOutDecision) -> None:
        system = self.system
        coordinator = system.scale_out
        if coordinator is None:
            return
        split_factor = system.config.scaling.split_factor
        routing = system.query_manager.routing_to(decision.op_name)
        owned_width = sum(
            iv.width for iv in routing.intervals_of(decision.slot_uid)
        )
        if owned_width < split_factor:
            # A slot narrower than the split factor (e.g. a carved-out
            # hot-key singleton) cannot be relieved by splitting at all;
            # trying would just crash the partitioner.
            system.telemetry.increment("scaling.split_skipped_narrow")
            return
        started = coordinator.scale_out_slot(
            decision.slot_uid,
            parallelism=split_factor,
            reason=decision.reason,
        )
        if started:
            self.decisions_made += 1
            if decision.reason == REASON_PREDICTED:
                system.telemetry.increment("scaling.predicted_breaches")
