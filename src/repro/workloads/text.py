"""Synthetic text streams for the windowed word-frequency query (§6.2).

Sentence fragments (~140 bytes, ~a dozen words) are drawn from a
Zipf-distributed vocabulary whose size controls the word counter's state
size — the knob behind the paper's small/medium/large experiments in
§6.3 (10², 10⁴ and 10⁵ dictionary entries).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.synthetic import RateDrivenGenerator, RateProfile, zipf_weights

#: State-size presets from §6.3 (dictionary entries).
STATE_SIZE_SMALL = 10**2
STATE_SIZE_MEDIUM = 10**4
STATE_SIZE_LARGE = 10**5


def make_vocabulary(size: int) -> list[str]:
    """Deterministic vocabulary of ``size`` distinct words."""
    if size < 1:
        raise WorkloadError(f"vocabulary size must be >= 1: {size}")
    return [f"w{i:06d}" for i in range(size)]


class SentenceGenerator(RateDrivenGenerator):
    """Injects sentence tuples at a target rate.

    Each tuple is one sentence fragment: key = a round-robin fragment id
    (sentences are partitioned arbitrarily; the *words* carry the
    semantic keys downstream), payload = tuple of words.
    """

    def __init__(
        self,
        profile: RateProfile,
        vocabulary_size: int = STATE_SIZE_MEDIUM,
        words_per_sentence: int = 8,
        zipf_exponent: float = 1.05,
        **kwargs,
    ) -> None:
        kwargs.setdefault("rng_stream", "text-workload")
        super().__init__(profile, **kwargs)
        if words_per_sentence < 1:
            raise WorkloadError(
                f"words_per_sentence must be >= 1: {words_per_sentence}"
            )
        self.vocabulary = make_vocabulary(vocabulary_size)
        self.words_per_sentence = words_per_sentence
        self._probabilities = zipf_weights(vocabulary_size, zipf_exponent)
        self._sentence_id = 0

    def make_tuples(
        self, rng: np.random.Generator, now: float, count: int, instance_index: int
    ) -> list:
        triples = []
        vocab_size = len(self.vocabulary)
        # One multinomial-ish draw per sentence keeps the hot words hot.
        draws = rng.choice(
            vocab_size,
            size=(count, self.words_per_sentence),
            p=self._probabilities,
        )
        for row in draws:
            words = tuple(self.vocabulary[i] for i in row)
            self._sentence_id += 1
            triples.append((self._sentence_id, words, 1))
        return triples
