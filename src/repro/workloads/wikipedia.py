"""Map/reduce-style top-k query over a synthetic Wikipedia trace (§6.1).

The paper's open-loop experiment: 18 data sources inject page-visit
records, a stateless *map* operator strips unneeded fields, a stateful
*reduce* operator maintains a top-k dictionary of visits per Wikipedia
language version and emits the ranking every 30 s; the sink merges
partial rankings from reduce partitions.

The real Wikipedia traces are replaced by a Zipf-distributed synthetic
trace over language editions (see DESIGN.md §2) — the experiment measures
scale-out dynamics under overload, not trace content.  High aggregate
rates use weighted tuples: each source emits, per quantum, one weighted
tuple per (language, stripe) cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.operators import TopKOperator
from repro.core.query import QueryGraph
from repro.core.tuples import Tuple
from repro.core.operator import Operator, OperatorContext
from repro.runtime.sink import SinkOperator, TopKResultCollector
from repro.runtime.source import SourceOperator
from repro.workloads.synthetic import (
    RateDrivenGenerator,
    RateProfile,
    constant_rate,
    zipf_weights,
)

#: Number of Wikipedia language editions modelled.
DEFAULT_LANGUAGES = 60
#: Stripes per language so that one language's load can split across
#: several reduce partitions (keys are (language, stripe)).
DEFAULT_STRIPES = 4


def language_editions(count: int = DEFAULT_LANGUAGES) -> list[str]:
    """Deterministic names for the modelled language editions."""
    return [f"lang{i:03d}" for i in range(count)]


class VisitTraceGenerator(RateDrivenGenerator):
    """Weighted page-visit tuples, Zipf-distributed over languages."""

    def __init__(
        self,
        profile: RateProfile,
        languages: int = DEFAULT_LANGUAGES,
        stripes: int = DEFAULT_STRIPES,
        zipf_exponent: float = 1.0,
        **kwargs,
    ) -> None:
        kwargs.setdefault("rng_stream", "wikipedia-workload")
        kwargs.setdefault("quantum", 1.0)
        super().__init__(profile, **kwargs)
        self.languages = language_editions(languages)
        self.stripes = stripes
        self._probabilities = zipf_weights(languages, zipf_exponent)

    def make_tuples(
        self, rng: np.random.Generator, now: float, count: int, instance_index: int
    ) -> list:
        triples = []
        expected = count * self._probabilities
        for lang, mean in zip(self.languages, expected):
            weight = int(rng.poisson(mean)) if mean < 50 else int(round(mean))
            if weight <= 0:
                continue
            stripe = int(rng.integers(self.stripes))
            key = (lang, stripe)
            payload = {"lang": lang, "page": int(rng.integers(10**6)), "bytes": 1200}
            triples.append((key, payload, weight))
        return triples


class VisitMapOperator(Operator):
    """The map stage: strip unneeded fields, re-key by language stripe."""

    def __init__(self, name: str = "map", **kwargs):
        kwargs.setdefault("stateful", False)
        kwargs.setdefault("cost_per_tuple", 2.0e-5)
        super().__init__(name, **kwargs)

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        ctx.emit(tup.key, tup.payload["lang"], weight=tup.weight)


class LanguageTopKOperator(TopKOperator):
    """The reduce stage: per-(language, stripe) visit counts, top-k emit."""

    def __init__(self, name: str = "reduce", k: int = 10, **kwargs):
        kwargs.setdefault("cost_per_tuple", 1.5e-5)
        super().__init__(name, k=k, **kwargs)

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        # Key by (language, stripe); payload carries the language name.
        assert ctx.state is not None
        ctx.state[tup.key] = ctx.state.get(tup.key, 0) + tup.weight

    def on_timer(self, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        merged: dict[str, int] = {}
        for (lang, _stripe), count in ctx.state.items():
            merged[lang] = merged.get(lang, 0) + count
        ranked = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))[: self.k]
        if ranked:
            ctx.emit("topk", tuple(ranked))


@dataclass
class WikipediaTopKQuery:
    graph: QueryGraph
    generators: dict[str, VisitTraceGenerator]
    collector: TopKResultCollector
    source_name: str = "sources"
    map_name: str = "map"
    reduce_name: str = "reduce"
    sink_name: str = "sink"


def build_wikipedia_topk_query(
    rate: float | RateProfile = 550_000.0,
    sources: int = 18,
    languages: int = DEFAULT_LANGUAGES,
    stripes: int = DEFAULT_STRIPES,
    k: int = 10,
    emit_interval: float = 30.0,
    quantum: float = 1.0,
    zipf_exponent: float = 1.0,
) -> tuple[WikipediaTopKQuery, dict[str, int]]:
    """Assemble the §6.1 open-loop query.

    Returns the query bundle and the initial parallelism map (the paper
    deploys 18 source instances and one instance of everything else).
    ``zipf_exponent`` steepens the language popularity distribution —
    at the default 1.0 load spreads classically Zipf; higher values
    concentrate most of the traffic on the top language, the regime the
    hot-key skew bench sweeps.
    """
    profile = constant_rate(rate) if isinstance(rate, (int, float)) else rate
    graph = QueryGraph()
    graph.add_operator(SourceOperator("sources"), source=True)
    graph.add_operator(VisitMapOperator("map"))
    graph.add_operator(
        LanguageTopKOperator(
            "reduce", k=k, emit_interval=emit_interval, measure_latency=True
        )
    )
    collector = TopKResultCollector(k)
    graph.add_operator(SinkOperator("sink", collector), sink=True)
    graph.chain("sources", "map", "reduce", "sink")
    graph.validate()
    generator = VisitTraceGenerator(
        profile,
        languages=languages,
        stripes=stripes,
        zipf_exponent=zipf_exponent,
        quantum=quantum,
    )
    bundle = WikipediaTopKQuery(graph, {"sources": generator}, collector)
    return bundle, {"sources": sources}
