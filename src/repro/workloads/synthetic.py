"""Workload generation building blocks: rate profiles and a rate-driven
source generator.

Generators drive source instances through
:meth:`~repro.runtime.instance.OperatorInstance.inject`, spreading each
quantum's tuples uniformly over the quantum so that measurement artefacts
from bursty injection stay below the latencies being measured.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem

RateProfile = Callable[[float], float]


def constant_rate(rate: float) -> RateProfile:
    """A fixed input rate in tuples/s."""
    if rate < 0:
        raise WorkloadError(f"rate must be >= 0: {rate}")
    return lambda _t: rate


def linear_ramp(start: float, end: float, duration: float) -> RateProfile:
    """Linear ramp from ``start`` to ``end`` tuples/s over ``duration``."""
    if duration <= 0:
        raise WorkloadError(f"ramp duration must be > 0: {duration}")

    def profile(t: float) -> float:
        if t >= duration:
            return end
        return start + (end - start) * (t / duration)

    return profile


def exponential_ramp(start: float, end: float, duration: float) -> RateProfile:
    """Exponential ramp: the rate multiplies by a constant factor per unit
    time, reaching ``end`` at ``duration`` (the LRB input shape)."""
    if start <= 0 or end <= 0 or duration <= 0:
        raise WorkloadError("exponential ramp needs positive start/end/duration")
    log_ratio = math.log(end / start)

    def profile(t: float) -> float:
        if t >= duration:
            return end
        return start * math.exp(log_ratio * t / duration)

    return profile


def step_profile(steps: Sequence[tuple[float, float]]) -> RateProfile:
    """Piecewise-constant profile from ``[(from_time, rate), ...]``."""
    if not steps:
        raise WorkloadError("step profile needs at least one step")
    ordered = sorted(steps)

    def profile(t: float) -> float:
        rate = 0.0
        for start, step_rate in ordered:
            if t >= start:
                rate = step_rate
            else:
                break
        return rate

    return profile


class RateDrivenGenerator:
    """Base class: inject tuples at a target rate into source instances.

    Subclasses implement :meth:`make_tuples`, producing the
    ``(key, payload, weight)`` triples for one quantum of one source
    instance.  The expected tuple *count* for the quantum is passed in;
    implementations may represent it with fewer weighted tuples.
    """

    def __init__(
        self,
        profile: RateProfile,
        quantum: float = 0.05,
        stop_at: float | None = None,
        rng_stream: str = "workload",
        spread: bool = True,
    ) -> None:
        if quantum <= 0:
            raise WorkloadError(f"quantum must be > 0: {quantum}")
        self.profile = profile
        self.quantum = quantum
        self.stop_at = stop_at
        self.rng_stream = rng_stream
        self.spread = spread
        self.system: "StreamProcessingSystem | None" = None
        self.instances: list["OperatorInstance"] = []
        self._rng: np.random.Generator | None = None
        self._carry = 0.0
        self.injected_weight = 0.0
        self.skipped_weight = 0.0

    # ------------------------------------------------------------------ API

    def attach(
        self,
        system: "StreamProcessingSystem",
        instances: list["OperatorInstance"],
    ) -> None:
        """Bind to source instances and start the emission schedule."""
        if not instances:
            raise WorkloadError("generator attached to a source with no instances")
        self.system = system
        self.instances = instances
        self._rng = system.rng.stream(self.rng_stream)
        system.sim.every(self.quantum, self._tick, start_after=self.quantum)

    def make_tuples(
        self,
        rng: np.random.Generator,
        now: float,
        count: int,
        instance_index: int,
    ) -> list[tuple[Any, Any, int]]:
        """Produce the quantum's tuples for one source instance."""
        raise NotImplementedError

    # ------------------------------------------------------------ internals

    def _tick(self) -> None:
        system = self.system
        assert system is not None and self._rng is not None
        now = system.sim.now
        if self.stop_at is not None and now > self.stop_at:
            return
        rate = self.profile(now)
        expected = rate * self.quantum + self._carry
        count = int(expected)
        self._carry = expected - count
        if count <= 0:
            return
        controller = system.source_controllers.get(self.instances[0].op_name)
        if controller is not None and not controller.emitting:
            # Source-replay recovery stops generation of new tuples.
            self.skipped_weight += count
            return
        shares = self._split(count, len(self.instances))
        for index, (instance, share) in enumerate(zip(self.instances, shares)):
            if share <= 0:
                continue
            triples = self.make_tuples(self._rng, now, share, index)
            self._inject(instance, triples)

    @staticmethod
    def _split(count: int, parts: int) -> list[int]:
        base = count // parts
        shares = [base] * parts
        for i in range(count - base * parts):
            shares[i] += 1
        return shares

    def _inject(
        self,
        instance: "OperatorInstance",
        triples: list[tuple[Any, Any, int]],
    ) -> None:
        system = self.system
        assert system is not None
        if not triples:
            return
        if not self.spread or len(triples) == 1:
            for key, payload, weight in triples:
                self.injected_weight += weight
                instance.inject(key, payload, weight)
            return
        gap = self.quantum / len(triples)
        for i, (key, payload, weight) in enumerate(triples):
            self.injected_weight += weight
            if i == 0:
                instance.inject(key, payload, weight)
            else:
                system.sim.schedule(i * gap, instance.inject, key, payload, weight)


class CallbackGenerator(RateDrivenGenerator):
    """Rate-driven generator from a plain ``make(rng, now, count, idx)``."""

    def __init__(
        self,
        profile: RateProfile,
        make: Callable[[np.random.Generator, float, int, int], list],
        **kwargs,
    ) -> None:
        super().__init__(profile, **kwargs)
        self._make = make

    def make_tuples(self, rng, now, count, instance_index):
        return self._make(rng, now, count, instance_index)


def zipf_weights(n: int, s: float = 1.1) -> np.ndarray:
    """Normalised Zipf probabilities for ranks ``1..n``."""
    if n < 1:
        raise WorkloadError(f"need at least one rank: {n}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-s)
    return weights / weights.sum()
