"""Workloads: the paper's evaluation queries and their generators."""

from repro.workloads.synthetic import (
    CallbackGenerator,
    RateDrivenGenerator,
    constant_rate,
    exponential_ramp,
    linear_ramp,
    step_profile,
    zipf_weights,
)
from repro.workloads.text import (
    STATE_SIZE_LARGE,
    STATE_SIZE_MEDIUM,
    STATE_SIZE_SMALL,
    SentenceGenerator,
    make_vocabulary,
)
from repro.workloads.wikipedia import (
    VisitTraceGenerator,
    WikipediaTopKQuery,
    build_wikipedia_topk_query,
)
from repro.workloads.wordcount import WordCountQuery, WordSplitter, build_word_count_query

__all__ = [
    "CallbackGenerator",
    "RateDrivenGenerator",
    "STATE_SIZE_LARGE",
    "STATE_SIZE_MEDIUM",
    "STATE_SIZE_SMALL",
    "SentenceGenerator",
    "VisitTraceGenerator",
    "WikipediaTopKQuery",
    "WordCountQuery",
    "WordSplitter",
    "build_word_count_query",
    "build_wikipedia_topk_query",
    "constant_rate",
    "exponential_ramp",
    "linear_ramp",
    "make_vocabulary",
    "step_profile",
    "zipf_weights",
]
