"""The windowed word-frequency query (§3.1 running example, §6.2-6.3).

Two operators: a stateless *word splitter* tokenising sentences into
words, and a stateful *word counter* keeping per-word frequency counts
over a tumbling window.  This is the query used by the paper's recovery
and state-management-overhead experiments.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.operator import Operator, OperatorContext
from repro.core.operators import WindowedKeyedCounter
from repro.core.query import QueryGraph
from repro.core.tuples import Tuple
from repro.runtime.sink import SinkOperator, WindowedResultCollector
from repro.runtime.source import SourceOperator
from repro.workloads.synthetic import RateProfile, constant_rate
from repro.workloads.text import STATE_SIZE_MEDIUM, SentenceGenerator


class WordSplitter(Operator):
    """Tokenise sentence payloads into word tuples.

    Repeats of a word within one sentence are merged into a single
    weighted tuple — identical counting semantics, fewer messages.
    """

    def __init__(self, name: str = "splitter", **kwargs):
        kwargs.setdefault("stateful", False)
        kwargs.setdefault("cost_per_tuple", 1.2e-4)
        super().__init__(name, **kwargs)

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        for word, occurrences in Counter(tup.payload).items():
            ctx.emit(word, None, weight=occurrences * tup.weight)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        emit = ctx.emit
        for payload, weight, created_at in zip(
            block.payloads, block.weight, block.created_at
        ):
            for word, occurrences in Counter(payload).items():
                emit(word, None, weight=occurrences * weight,
                     created_at=created_at)
        return True


@dataclass
class WordCountQuery:
    """Everything an experiment needs to run the word-count workload."""

    graph: QueryGraph
    generators: dict[str, SentenceGenerator]
    collector: WindowedResultCollector
    source_name: str = "source"
    splitter_name: str = "splitter"
    counter_name: str = "counter"
    sink_name: str = "sink"


def build_word_count_query(
    rate: float | RateProfile = 500.0,
    window: float = 30.0,
    vocabulary_size: int = STATE_SIZE_MEDIUM,
    words_per_sentence: int = 8,
    splitter_cost: float = 1.2e-4,
    counter_cost: float = 4.0e-5,
    quantum: float = 0.05,
    measure_counter_latency: bool = True,
) -> WordCountQuery:
    """Assemble the §6.2 word-frequency query.

    ``measure_counter_latency`` additionally records tuple latency when
    the *counter* finishes processing each word — the paper's
    "tuple processing latency" for this query, which reflects checkpoint
    stalls even between window flushes.
    """
    profile = constant_rate(rate) if isinstance(rate, (int, float)) else rate
    graph = QueryGraph()
    graph.add_operator(SourceOperator("source"), source=True)
    graph.add_operator(WordSplitter("splitter", cost_per_tuple=splitter_cost))
    counter = WindowedKeyedCounter(
        "counter",
        window=window,
        cost_per_tuple=counter_cost,
        measure_latency=measure_counter_latency,
    )
    graph.add_operator(counter)
    collector = WindowedResultCollector()
    graph.add_operator(SinkOperator("sink", collector), sink=True)
    graph.chain("source", "splitter", "counter", "sink")
    graph.validate()
    generator = SentenceGenerator(
        profile,
        vocabulary_size=vocabulary_size,
        words_per_sentence=words_per_sentence,
        quantum=quantum,
    )
    return WordCountQuery(graph, {"source": generator}, collector)
