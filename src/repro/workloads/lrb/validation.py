"""Semantic validation helpers for the LRB operators.

Used by integration tests to check, on hand-crafted traces, that the
toll calculator charges tolls exactly under congestion and raises
accident alerts exactly while a stopped vehicle blocks a band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.operator import OperatorContext
from repro.core.state import ProcessingState
from repro.core.tuples import Tuple
from repro.workloads.lrb.model import (
    KIND_ACCIDENT,
    KIND_CHARGE,
    KIND_TOLL,
    PositionReport,
)
from repro.workloads.lrb.operators import TollCalculatorOperator


@dataclass
class DrivenOutputs:
    """Outputs captured while driving an operator directly."""

    tolls: list[tuple[float, float]] = field(default_factory=list)
    accidents: list[float] = field(default_factory=list)
    charges: list[tuple[float, float]] = field(default_factory=list)


class TollCalculatorHarness:
    """Drives a :class:`TollCalculatorOperator` without a runtime."""

    def __init__(self) -> None:
        self.operator = TollCalculatorOperator()
        self.state = ProcessingState()
        self.outputs = DrivenOutputs()
        self._ts = 0

    def feed(
        self,
        now: float,
        key: tuple[int, int],
        speed: float,
        weight: int = 1,
        stopped: bool = False,
        segment: int = 10,
    ) -> None:
        """Drive one position report through the operator."""
        self._ts += 1
        report = PositionReport(
            vehicle=self._ts, speed=speed, segment=segment, stopped=stopped
        )
        tup = Tuple(self._ts, key, report.as_payload(), weight=weight, slot=0)

        def emit(key, payload, weight, _created_at, to):
            kind = payload[0]
            if kind == KIND_TOLL:
                self.outputs.tolls.append((now, payload[1]))
            elif kind == KIND_ACCIDENT:
                self.outputs.accidents.append(now)
            elif kind == KIND_CHARGE:
                self.outputs.charges.append((now, payload[1]))

        ctx = OperatorContext(self.state, emit, now=now)
        self.operator.on_tuple(tup, ctx)

    def last_toll(self) -> float | None:
        """The most recently emitted toll amount, if any."""
        if not self.outputs.tolls:
            return None
        return self.outputs.tolls[-1][1]

    def accident_active(self, key: tuple[int, int], now: float) -> bool:
        """Whether the operator considers an accident active."""
        entry = self.state.get(key)
        if entry is None:
            return False
        return entry["accident_until"] > now
