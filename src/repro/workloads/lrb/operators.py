"""The seven LRB query operators (Fig. 5 of the paper).

data feeder (source) → forwarder → { toll calculator, toll assessment }
toll calculator → toll collector → sink
toll calculator → toll assessment (charges)
toll assessment → balance account → sink

The *forwarder* routes tuples by type; the *toll calculator* (stateful,
the main compute bottleneck) maintains congestion state and detects
accidents; the *toll assessment* (stateful) accumulates account balances
and answers balance queries; the *balance account* (stateful) aggregates
responses; the *toll collector* (stateless) gathers notifications.
"""

from __future__ import annotations

from repro.core.operator import Operator, OperatorContext
from repro.core.tuples import Tuple
from repro.errors import WorkloadError
from repro.workloads.lrb.model import (
    KIND_ACCIDENT,
    KIND_BALANCE_QUERY,
    KIND_BALANCE_RESPONSE,
    KIND_CHARGE,
    KIND_POSITION,
    KIND_TOLL,
    toll_for,
)

#: Per-tuple CPU costs calibrated so that at the paper's peak input rate
#: (~600k tuples/s for L=350) the operators saturate at roughly the
#: partition counts reported in Fig. 5 — toll calculator the most
#: partitioned, then the forwarder (see DESIGN.md §5).
COST_FORWARDER = 1.4e-5
COST_TOLL_CALCULATOR = 2.8e-5
COST_TOLL_ASSESSMENT = 5.0e-6
COST_BALANCE_ACCOUNT = 5.0e-6
COST_COLLECTOR = 2.0e-6
COST_SOURCE_SINK = 2.0e-5


class ForwarderOperator(Operator):
    """Routes tuples downstream according to their type (stateless)."""

    def __init__(
        self,
        name: str = "forwarder",
        calculator: str = "toll_calc",
        assessment: str = "toll_assess",
        **kwargs,
    ):
        kwargs.setdefault("stateful", False)
        kwargs.setdefault("cost_per_tuple", COST_FORWARDER)
        super().__init__(name, **kwargs)
        self._calculator = calculator
        self._assessment = assessment

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        kind = tup.payload[0]
        if kind == KIND_POSITION:
            ctx.emit(tup.key, tup.payload, weight=tup.weight, to=self._calculator)
        elif kind == KIND_BALANCE_QUERY:
            ctx.emit(tup.key, tup.payload, weight=tup.weight, to=self._assessment)
        else:
            raise WorkloadError(f"forwarder got unexpected tuple kind {kind!r}")


class TollCalculatorOperator(Operator):
    """Maintains congestion state per (xway, band); computes tolls and
    detects accidents (stateful — the LRB compute bottleneck).

    State value per key: ``{"minute", "count", "speed", "accident_until"}``
    — the vehicle count in the current minute, an EWMA of reported speed,
    and the time until which an accident blocks tolls.
    """

    SPEED_ALPHA = 0.1
    ACCIDENT_CLEAR_SECONDS = 60.0

    def __init__(
        self,
        name: str = "toll_calc",
        collector: str = "collector",
        assessment: str = "toll_assess",
        **kwargs,
    ):
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("cost_per_tuple", COST_TOLL_CALCULATOR)
        super().__init__(name, **kwargs)
        self._collector = collector
        self._assessment = assessment

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        kind, _vehicle, speed, _segment, stopped = tup.payload
        if kind != KIND_POSITION:
            raise WorkloadError(f"toll calculator got tuple kind {kind!r}")
        entry = ctx.state.get(tup.key)
        minute = int(ctx.now // 60)
        if entry is None or entry["minute"] != minute:
            previous_speed = entry["speed"] if entry else speed
            entry = {
                "minute": minute,
                "count": 0.0,
                "speed": previous_speed,
                "accident_until": entry["accident_until"] if entry else 0.0,
            }
        entry["count"] += tup.weight
        alpha = min(1.0, self.SPEED_ALPHA * tup.weight)
        entry["speed"] += alpha * (speed - entry["speed"])
        if stopped:
            entry["accident_until"] = ctx.now + self.ACCIDENT_CLEAR_SECONDS
        ctx.state[tup.key] = entry

        accident = entry["accident_until"] > ctx.now
        toll = toll_for(entry["count"], entry["speed"], accident)
        if accident:
            ctx.emit(
                tup.key, (KIND_ACCIDENT, ctx.now), weight=tup.weight, to=self._collector
            )
        ctx.emit(
            tup.key, (KIND_TOLL, toll), weight=tup.weight, to=self._collector
        )
        if toll > 0:
            ctx.emit(
                tup.key, (KIND_CHARGE, toll), weight=tup.weight, to=self._assessment
            )

    def merge_values(self, left: dict, right: dict) -> dict:
        merged = dict(left if left["minute"] >= right["minute"] else right)
        if left["minute"] == right["minute"]:
            merged["count"] = left["count"] + right["count"]
            merged["speed"] = (left["speed"] + right["speed"]) / 2
        merged["accident_until"] = max(left["accident_until"], right["accident_until"])
        return merged


class TollAssessmentOperator(Operator):
    """Accumulates toll charges per account group and answers balance
    queries (stateful).

    State value per key: ``{"balance", "charges"}``.
    """

    def __init__(self, name: str = "toll_assess", balance: str = "balance", **kwargs):
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("cost_per_tuple", COST_TOLL_ASSESSMENT)
        super().__init__(name, **kwargs)
        self._balance = balance

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        kind = tup.payload[0]
        entry = ctx.state.setdefault(tup.key, {"balance": 0.0, "charges": 0.0})
        if kind == KIND_CHARGE:
            _kind, toll = tup.payload
            entry["balance"] += toll * tup.weight
            entry["charges"] += tup.weight
        elif kind == KIND_BALANCE_QUERY:
            ctx.emit(
                tup.key,
                (KIND_BALANCE_RESPONSE, entry["balance"]),
                weight=tup.weight,
                to=self._balance,
            )
        else:
            raise WorkloadError(f"toll assessment got tuple kind {kind!r}")

    def merge_values(self, left: dict, right: dict) -> dict:
        return {
            "balance": left["balance"] + right["balance"],
            "charges": left["charges"] + right["charges"],
        }


class BalanceAccountOperator(Operator):
    """Aggregates balance responses and forwards them to the sink."""

    def __init__(self, name: str = "balance", **kwargs):
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("cost_per_tuple", COST_BALANCE_ACCOUNT)
        super().__init__(name, **kwargs)

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        _kind, balance = tup.payload
        ctx.state[tup.key] = balance
        ctx.emit(tup.key, tup.payload, weight=tup.weight)

    def merge_values(self, left: float, right: float) -> float:
        return max(left, right)


class TollCollectorOperator(Operator):
    """Gathers toll/accident notifications (stateless pass-through)."""

    def __init__(self, name: str = "collector", **kwargs):
        kwargs.setdefault("stateful", False)
        kwargs.setdefault("cost_per_tuple", COST_COLLECTOR)
        super().__init__(name, **kwargs)

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        ctx.emit(tup.key, tup.payload, weight=tup.weight)
