"""Linear Road Benchmark workload (query, generator, validation)."""

from repro.workloads.lrb.generator import LRBGenerator
from repro.workloads.lrb.model import (
    LATENCY_TARGET_SECONDS,
    RATE_PER_XWAY_END,
    RATE_PER_XWAY_START,
    band_of,
    toll_for,
)
from repro.workloads.lrb.operators import (
    BalanceAccountOperator,
    ForwarderOperator,
    TollAssessmentOperator,
    TollCalculatorOperator,
    TollCollectorOperator,
)
from repro.workloads.lrb.query import (
    LRBQuery,
    LRBResultCollector,
    build_lrb_query,
    manual_parallelism,
)

__all__ = [
    "BalanceAccountOperator",
    "ForwarderOperator",
    "LATENCY_TARGET_SECONDS",
    "LRBGenerator",
    "LRBQuery",
    "LRBResultCollector",
    "RATE_PER_XWAY_END",
    "RATE_PER_XWAY_START",
    "TollAssessmentOperator",
    "TollCalculatorOperator",
    "TollCollectorOperator",
    "band_of",
    "build_lrb_query",
    "manual_parallelism",
    "toll_for",
]
