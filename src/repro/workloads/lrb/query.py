"""Assembling the LRB query (Fig. 5) and its deployment plans."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import QueryGraph
from repro.core.tuples import Tuple
from repro.errors import WorkloadError
from repro.runtime.sink import SinkOperator
from repro.runtime.source import SourceOperator
from repro.workloads.lrb.generator import LRBGenerator
from repro.workloads.lrb.model import (
    KIND_ACCIDENT,
    KIND_BALANCE_RESPONSE,
    KIND_TOLL,
    LATENCY_TARGET_SECONDS,
)
from repro.workloads.lrb.operators import (
    COST_SOURCE_SINK,
    BalanceAccountOperator,
    ForwarderOperator,
    TollAssessmentOperator,
    TollCalculatorOperator,
    TollCollectorOperator,
)

#: Relative CPU demand of each LRB worker operator at peak input — used
#: by the manual (human expert) allocation of Fig. 10.
RELATIVE_COST_WEIGHTS = {
    "toll_calc": 24.0,
    "forwarder": 12.0,
    "toll_assess": 4.0,
    "collector": 2.0,
    "balance": 1.0,
}


class LRBResultCollector:
    """Counts result notifications by kind at the sink."""

    def __init__(self) -> None:
        self.toll_notifications = 0.0
        self.accident_alerts = 0.0
        self.balance_responses = 0.0

    def __call__(self, tup: Tuple, _now: float) -> None:
        kind = tup.payload[0]
        if kind == KIND_TOLL:
            self.toll_notifications += tup.weight
        elif kind == KIND_ACCIDENT:
            self.accident_alerts += tup.weight
        elif kind == KIND_BALANCE_RESPONSE:
            self.balance_responses += tup.weight

    def total(self) -> float:
        """Total weighted results collected."""
        return (
            self.toll_notifications + self.accident_alerts + self.balance_responses
        )


@dataclass
class LRBQuery:
    """The LRB query bundle: graph, generator, collector, metadata."""

    graph: QueryGraph
    generators: dict[str, LRBGenerator]
    collector: LRBResultCollector
    num_xways: int
    duration: float
    latency_target: float = LATENCY_TARGET_SECONDS
    operator_names: list[str] = field(
        default_factory=lambda: [
            "feeder",
            "forwarder",
            "toll_calc",
            "toll_assess",
            "collector",
            "balance",
            "sink",
        ]
    )


def build_lrb_query(
    num_xways: int,
    duration: float,
    bands: int = 2,
    quantum: float = 1.0,
    rate_start: float | None = None,
    rate_end: float | None = None,
) -> LRBQuery:
    """Build the 7-operator LRB query for ``num_xways`` express-ways."""
    graph = QueryGraph()
    graph.add_operator(
        SourceOperator("feeder", cost_per_tuple=COST_SOURCE_SINK), source=True
    )
    graph.add_operator(ForwarderOperator("forwarder"))
    graph.add_operator(TollCalculatorOperator("toll_calc"))
    graph.add_operator(TollAssessmentOperator("toll_assess"))
    graph.add_operator(TollCollectorOperator("collector"))
    graph.add_operator(BalanceAccountOperator("balance"))
    collector = LRBResultCollector()
    graph.add_operator(
        SinkOperator("sink", collector, cost_per_tuple=COST_SOURCE_SINK), sink=True
    )
    graph.connect("feeder", "forwarder")
    graph.connect("forwarder", "toll_calc")
    graph.connect("forwarder", "toll_assess")
    graph.connect("toll_calc", "collector")
    graph.connect("toll_calc", "toll_assess")
    graph.connect("toll_assess", "balance")
    graph.connect("collector", "sink")
    graph.connect("balance", "sink")
    graph.validate()
    extra = {}
    if rate_start is not None:
        extra["rate_start"] = rate_start
    if rate_end is not None:
        extra["rate_end"] = rate_end
    generator = LRBGenerator(
        num_xways, duration, bands=bands, quantum=quantum, **extra
    )
    return LRBQuery(graph, {"feeder": generator}, collector, num_xways, duration)


def manual_parallelism(total_worker_vms: int) -> dict[str, int]:
    """The "human expert" allocation of Fig. 10.

    Distributes a worker-VM budget over the LRB operators proportionally
    to their known relative costs, giving every operator at least one VM
    — the expert "tracks the bottleneck across multiple scaled out
    versions of the LRB query".
    """
    names = list(RELATIVE_COST_WEIGHTS)
    if total_worker_vms < len(names):
        raise WorkloadError(
            f"need at least {len(names)} worker VMs, got {total_worker_vms}"
        )
    allocation = {name: 1 for name in names}
    remaining = total_worker_vms - len(names)
    total_weight = sum(RELATIVE_COST_WEIGHTS.values())
    # Largest-remainder apportionment of what is left.
    quotas = {
        name: remaining * weight / total_weight
        for name, weight in RELATIVE_COST_WEIGHTS.items()
    }
    for name, quota in quotas.items():
        allocation[name] += int(quota)
    leftovers = total_worker_vms - sum(allocation.values())
    by_remainder = sorted(
        names, key=lambda n: quotas[n] - int(quotas[n]), reverse=True
    )
    for name in by_remainder[:leftovers]:
        allocation[name] += 1
    return allocation
