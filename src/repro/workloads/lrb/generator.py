"""Linear Road input generation.

The paper pre-computes the input stream for one express-way and
replicates it for ``L`` express-ways; the rate per express-way ramps from
15 to 1700 tuples/s over the course of the benchmark.  This generator
synthesises the same demand directly: per quantum and per express-way it
emits weighted position reports (one per segment band) plus a weighted
account-balance query tuple, with occasional accidents that flag a band's
reports as stopped vehicles for a while.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.lrb.model import (
    BalanceQuery,
    PositionReport,
    RATE_PER_XWAY_END,
    RATE_PER_XWAY_START,
    SEGMENTS_PER_XWAY,
)
from repro.workloads.synthetic import RateDrivenGenerator, exponential_ramp


class LRBGenerator(RateDrivenGenerator):
    """Synthetic Linear Road input for ``L`` express-ways.

    Keys are ``(xway, band)``; the key space therefore has ``L × bands``
    semantic keys, which is what the toll calculator's state partitions
    over.
    """

    def __init__(
        self,
        num_xways: int,
        duration: float,
        bands: int = 2,
        balance_query_fraction: float = 0.01,
        accident_probability_per_s: float = 0.0005,
        accident_duration: float = 60.0,
        quantum: float = 1.0,
        rate_start: float = RATE_PER_XWAY_START,
        rate_end: float = RATE_PER_XWAY_END,
        **kwargs,
    ) -> None:
        if num_xways < 1:
            raise WorkloadError(f"need at least one express-way: {num_xways}")
        if not 0 <= balance_query_fraction < 1:
            raise WorkloadError(
                f"balance fraction must be in [0, 1): {balance_query_fraction}"
            )
        profile = exponential_ramp(
            rate_start * num_xways, rate_end * num_xways, duration
        )
        kwargs.setdefault("rng_stream", "lrb-workload")
        kwargs.setdefault("spread", False)
        super().__init__(profile, quantum=quantum, **kwargs)
        self.num_xways = num_xways
        self.bands = bands
        self.balance_query_fraction = balance_query_fraction
        self.accident_probability_per_s = accident_probability_per_s
        self.accident_duration = accident_duration
        #: Active accidents: xway -> (band, clear_time).
        self._accidents: dict[int, tuple[int, float]] = {}
        self.accidents_started = 0

    def make_tuples(
        self, rng: np.random.Generator, now: float, count: int, instance_index: int
    ) -> list:
        self._update_accidents(rng, now)
        triples: list = []
        shares = self._split(count, self.num_xways)
        for xway, share in enumerate(shares):
            if share <= 0:
                continue
            balance_weight = int(round(share * self.balance_query_fraction))
            position_weight = share - balance_weight
            accident = self._accidents.get(xway)
            band_shares = self._split(position_weight, self.bands)
            for band, weight in enumerate(band_shares):
                if weight <= 0:
                    continue
                stopped = accident is not None and accident[0] == band
                segment = int(
                    (band + rng.random()) * SEGMENTS_PER_XWAY / self.bands
                )
                # Congested traffic is slow; free flow is fast.  Speed is
                # drawn around a congestion level tied to the input rate.
                speed = float(rng.normal(30.0 if weight > 50 else 55.0, 5.0))
                report = PositionReport(
                    vehicle=int(rng.integers(10**6)),
                    speed=max(0.0, speed),
                    segment=min(SEGMENTS_PER_XWAY - 1, segment),
                    stopped=stopped,
                )
                triples.append(((xway, band), report.as_payload(), weight))
            if balance_weight > 0:
                band = int(rng.integers(self.bands))
                query = BalanceQuery(account=int(rng.integers(10**4)))
                triples.append(((xway, band), query.as_payload(), balance_weight))
        return triples

    def _update_accidents(self, rng: np.random.Generator, now: float) -> None:
        for xway in list(self._accidents):
            if self._accidents[xway][1] <= now:
                del self._accidents[xway]
        start_probability = self.accident_probability_per_s * self.quantum
        for xway in range(self.num_xways):
            if xway in self._accidents:
                continue
            if rng.random() < start_probability:
                band = int(rng.integers(self.bands))
                self._accidents[xway] = (band, now + self.accident_duration)
                self.accidents_started += 1

    def active_accidents(self) -> dict[int, tuple[int, float]]:
        """Currently active accidents: xway → (band, clear time)."""
        return dict(self._accidents)
