"""Linear Road Benchmark data model (simplified; see DESIGN.md §2).

LRB models a toll road network of ``L`` express-ways.  Vehicles emit
position reports; a small fraction of input tuples are account-balance
queries.  Tolls depend on congestion (vehicle count, average speed) and
accidents (stopped vehicles).  The benchmark's service-level constraint
is a 5-second notification latency.

Simplifications relative to the full LRB specification, chosen to keep
the *evaluated* properties (keyed stateful operators, rate ramp, compute
bottlenecks, the 5 s latency target) intact:

* segments are grouped into ``bands`` per express-way; tolls and
  congestion are tracked per (xway, band) — the partitioning key;
* account state is aggregated per (xway, band) account group;
* daily-expenditure and travel-time queries (query types 3 and 4 in the
  full benchmark, optional there too) are not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Tuple kinds carried in payloads.
KIND_POSITION = "pos"
KIND_BALANCE_QUERY = "bal"
KIND_TOLL = "toll"
KIND_ACCIDENT = "accident"
KIND_CHARGE = "charge"
KIND_BALANCE_RESPONSE = "balance"

#: LRB congestion model constants.
SEGMENTS_PER_XWAY = 100
CONGESTION_SPEED_MPH = 40.0
CONGESTION_VEHICLES = 150
TOLL_BASE_RATE = 2.0
#: LRB response-time requirement in seconds.
LATENCY_TARGET_SECONDS = 5.0
#: Input rate per express-way over the benchmark (tuples/s).
RATE_PER_XWAY_START = 15.0
RATE_PER_XWAY_END = 1700.0


def toll_for(vehicle_count: float, average_speed: float, accident: bool) -> float:
    """LRB toll formula: ``2·(n − 150)²`` under congestion, else zero.

    No toll is charged in a segment with an accident (drivers are being
    diverted) or when traffic flows freely.
    """
    if accident:
        return 0.0
    if average_speed >= CONGESTION_SPEED_MPH:
        return 0.0
    if vehicle_count <= CONGESTION_VEHICLES:
        return 0.0
    return TOLL_BASE_RATE * (vehicle_count - CONGESTION_VEHICLES) ** 2


def band_of(segment: int, bands: int) -> int:
    """Which band a segment index falls into."""
    return min(bands - 1, segment * bands // SEGMENTS_PER_XWAY)


@dataclass(frozen=True)
class PositionReport:
    """A (possibly weighted) group of vehicle position reports."""

    vehicle: int
    speed: float
    segment: int
    stopped: bool = False

    def as_payload(self) -> tuple:
        """The wire representation carried in tuple payloads."""
        return (KIND_POSITION, self.vehicle, self.speed, self.segment, self.stopped)


@dataclass(frozen=True)
class BalanceQuery:
    """An account-balance query for an account group."""

    account: int

    def as_payload(self) -> tuple:
        """The wire representation carried in tuple payloads."""
        return (KIND_BALANCE_QUERY, self.account)
