"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` couples a firing time with a callback.  Events are
ordered by ``(time, priority, sequence)`` so that simultaneous events fire
in a deterministic order: first by explicit priority, then by scheduling
order.  Determinism matters here because the whole evaluation relies on
reproducible runs from a single seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import EventError


class Event:
    """A single scheduled callback in the simulation.

    Events are created through :meth:`repro.sim.simulator.Simulator.schedule`
    rather than directly.  They may be cancelled before they fire; a
    cancelled event stays in the heap but is skipped by the kernel.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue: "EventQueue | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired raises :class:`EventError`,
        because that almost always indicates a control-plane logic bug
        (e.g. cancelling a checkpoint timer twice).
        """
        if self.callback is None:
            raise EventError("event has already fired and cannot be cancelled")
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    @property
    def pending(self) -> bool:
        """Whether the event is still going to fire."""
        return not self.cancelled and self.callback is not None

    def _mark_fired(self) -> None:
        self.callback = None  # type: ignore[assignment]
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, prio={self.priority}, {name}, {state})"


#: Never compact heaps smaller than this: rebuilding a tiny heap costs
#: more than carrying a few dead entries.
_COMPACT_MIN_HEAP = 64


class EventQueue:
    """A binary heap of :class:`Event` objects with lazy deletion.

    Cancelled events stay in the heap and are skipped when they surface,
    but the queue counts them as they are cancelled (``len`` is always the
    number of *live* events) and compacts the heap once more than half of
    it is dead — long chaos sweeps cancel many interior timers, and
    without compaction those would accumulate without bound.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0
        #: Cancelled events still sitting in the heap.
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def push(self, event: Event) -> None:
        """Add an event to the heap."""
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event, or ``None``."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event | None:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        event._queue = None
        self._live -= 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for events still in the heap."""
        self._live -= 1
        self._dead += 1
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._dead * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from the live events only."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
