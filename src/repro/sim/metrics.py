"""Measurement infrastructure for simulation runs.

Three building blocks:

* :class:`TimeSeries` — (time, value) samples, e.g. "number of VMs".
* :class:`RateSeries` — counts accumulated into fixed-width time bins,
  e.g. "tuples consumed per second".
* :class:`LatencyReservoir` — weighted latency samples with percentile
  queries, optionally windowed over time so we can plot latency-over-time
  curves like the paper's Figure 7.
* :class:`PhaseTimeline` — the phase-transition record of one
  reconfiguration (scale out / scale in / recovery), so experiments can
  attribute recovery latency to individual phases (Figures 11-13).

All latencies are stored in seconds and reported by the experiment layer
in milliseconds to match the paper's axes.
"""

from __future__ import annotations

import bisect
import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass
class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        if self.times and time < self.times[-1]:
            # Out-of-order control-plane samples are inserted, not rejected:
            # several coordinators may report around the same instant.
            index = bisect.bisect_right(self.times, time)
            self.times.insert(index, time)
            self.values.insert(index, value)
            return
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self, default: float = 0.0) -> float:
        """Most recent value (or ``default`` when empty)."""
        return self.values[-1] if self.values else default

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Value of the most recent sample at or before ``time``."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return default
        return self.values[index]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The series as (times, values) numpy arrays."""
        return np.asarray(self.times), np.asarray(self.values)


@dataclass
class RateSeries:
    """Counts binned into fixed-width intervals, queried as rates."""

    name: str
    bin_width: float = 1.0
    _bins: dict[int, float] = field(default_factory=dict)

    def record(self, time: float, count: float = 1.0) -> None:
        """Append one sample."""
        index = int(time // self.bin_width)
        self._bins[index] = self._bins.get(index, 0.0) + count

    def total(self) -> float:
        """Sum of all recorded counts."""
        return sum(self._bins.values())

    def rate_at(self, time: float) -> float:
        """Rate (count per second) in the bin containing ``time``."""
        return self._bins.get(int(time // self.bin_width), 0.0) / self.bin_width

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (bin centre times, rates) sorted by time."""
        if not self._bins:
            return np.array([]), np.array([])
        indices = np.array(sorted(self._bins))
        times = (indices + 0.5) * self.bin_width
        rates = np.array([self._bins[i] for i in indices]) / self.bin_width
        return times, rates

    def max_rate(self) -> float:
        """Highest per-bin rate observed."""
        if not self._bins:
            return 0.0
        return max(self._bins.values()) / self.bin_width


class LatencyReservoir:
    """Weighted latency samples supporting percentile queries.

    A sample ``(time, latency, weight)`` represents ``weight`` tuples that
    all experienced ``latency``.  Weighted percentiles make the numbers
    meaningful when the runtime uses weighted tuples at high rates.
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._times: list[float] = []
        self._latencies: list[float] = []
        self._weights: list[float] = []

    def record(self, time: float, latency: float, weight: float = 1.0) -> None:
        """Append one sample."""
        if latency < 0:
            raise ValueError(f"negative latency recorded: {latency}")
        self._times.append(time)
        self._latencies.append(latency)
        self._weights.append(weight)

    def __len__(self) -> int:
        return len(self._latencies)

    @property
    def total_weight(self) -> float:
        return float(sum(self._weights))

    def percentile(
        self, q: float, t_min: float | None = None, t_max: float | None = None
    ) -> float:
        """Weighted percentile ``q`` in [0, 100] over an optional window."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        latencies, weights = self._window(t_min, t_max)
        if latencies.size == 0:
            return math.nan
        order = np.argsort(latencies)
        latencies = latencies[order]
        weights = weights[order]
        cumulative = np.cumsum(weights)
        cutoff = q / 100.0 * cumulative[-1]
        index = int(np.searchsorted(cumulative, cutoff, side="left"))
        index = min(index, latencies.size - 1)
        return float(latencies[index])

    def median(self, t_min: float | None = None, t_max: float | None = None) -> float:
        """Weighted median latency."""
        return self.percentile(50, t_min, t_max)

    def mean(self, t_min: float | None = None, t_max: float | None = None) -> float:
        """Weighted mean latency."""
        latencies, weights = self._window(t_min, t_max)
        if latencies.size == 0:
            return math.nan
        return float(np.average(latencies, weights=weights))

    def max(self) -> float:
        """Largest recorded latency."""
        return max(self._latencies) if self._latencies else math.nan

    def over_time(
        self, bin_width: float, q: float = 95.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (bin centres, percentile-per-bin) — the Fig. 7 curve."""
        if not self._times:
            return np.array([]), np.array([])
        times = np.asarray(self._times)
        bins = (times // bin_width).astype(int)
        centres = []
        values = []
        for b in sorted(set(bins.tolist())):
            mask = bins == b
            lat = np.asarray(self._latencies)[mask]
            wgt = np.asarray(self._weights)[mask]
            order = np.argsort(lat)
            cum = np.cumsum(wgt[order])
            cutoff = q / 100.0 * cum[-1]
            idx = min(int(np.searchsorted(cum, cutoff)), lat.size - 1)
            centres.append((b + 0.5) * bin_width)
            values.append(float(lat[order][idx]))
        return np.asarray(centres), np.asarray(values)

    def _window(
        self, t_min: float | None, t_max: float | None
    ) -> tuple[np.ndarray, np.ndarray]:
        latencies = np.asarray(self._latencies, dtype=float)
        weights = np.asarray(self._weights, dtype=float)
        if t_min is None and t_max is None:
            return latencies, weights
        times = np.asarray(self._times)
        mask = np.ones(times.shape, dtype=bool)
        if t_min is not None:
            mask &= times >= t_min
        if t_max is not None:
            mask &= times <= t_max
        return latencies[mask], weights[mask]


@dataclass
class PhaseSpan:
    """One phase of a reconfiguration: ``[start, end)`` in simulated time."""

    phase: str
    start: float
    end: float | None = None

    @property
    def duration(self) -> float | None:
        """Elapsed simulated seconds, or ``None`` while the phase is open."""
        return None if self.end is None else self.end - self.start


class PhaseTimeline:
    """Phase-transition record of one reconfiguration.

    Every topology change driven by the reconfiguration engine (scale
    out, scale in, recovery) appends one of these to the metrics hub and
    enters each phase in turn.  Experiments query the spans to attribute
    end-to-end recovery latency to VM acquisition, state partitioning,
    transfer, restore and replay (the breakdown behind Figures 11-13).
    """

    def __init__(
        self, kind: str, op_name: str, slot_uids: list[int], started_at: float
    ) -> None:
        self.kind = kind
        self.op_name = op_name
        #: Slot uids involved: the replaced slot(s) plus, once known, the
        #: uids of the new partitions.
        self.slot_uids: list[int] = list(slot_uids)
        self.started_at = started_at
        self.spans: list[PhaseSpan] = []
        #: ``"done"`` or ``"aborted"`` once the reconfiguration finished.
        self.outcome: str | None = None

    def enter(self, phase: str, time: float) -> None:
        """Close the open span (if any) and start ``phase`` at ``time``."""
        if self.spans and self.spans[-1].end is None:
            self.spans[-1].end = time
        self.spans.append(PhaseSpan(phase, time))

    def close(self, time: float, outcome: str) -> None:
        """Close the open span and record the terminal outcome."""
        if self.spans and self.spans[-1].end is None:
            self.spans[-1].end = time
        self.outcome = outcome

    def add_slots(self, slot_uids: list[int]) -> None:
        """Record additional involved slots (new partitions, once created)."""
        for uid in slot_uids:
            if uid not in self.slot_uids:
                self.slot_uids.append(uid)

    @property
    def phases(self) -> list[str]:
        """Phase names in transition order."""
        return [span.phase for span in self.spans]

    def span(self, phase: str) -> PhaseSpan | None:
        """The first span of ``phase``, if the timeline entered it."""
        for candidate in self.spans:
            if candidate.phase == phase:
                return candidate
        return None

    def phase_duration(self, phase: str, default: float = 0.0) -> float:
        """Total time spent in ``phase`` across all its spans."""
        total = 0.0
        seen = False
        for candidate in self.spans:
            if candidate.phase == phase and candidate.end is not None:
                total += candidate.end - candidate.start
                seen = True
        return total if seen else default

    def total_duration(self) -> float | None:
        """Start of the first span to end of the last closed span."""
        if not self.spans or self.spans[-1].end is None:
            return None
        return self.spans[-1].end - self.spans[0].start

    def as_rows(self) -> list[tuple[str, float, float | None]]:
        """``(phase, start, end)`` rows for tabular export."""
        return [(span.phase, span.start, span.end) for span in self.spans]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " -> ".join(self.phases)
        return f"PhaseTimeline({self.kind} {self.op_name}: {inner})"


class MetricsHub:
    """Registry of all metric objects produced during one simulation run."""

    def __init__(self) -> None:
        self.time_series: dict[str, TimeSeries] = {}
        self.rate_series: dict[str, RateSeries] = {}
        self.latencies: dict[str, LatencyReservoir] = {}
        self.counters: dict[str, float] = {}
        self.events: list[tuple[float, str, str]] = []
        self.phase_timelines: list[PhaseTimeline] = []
        #: Event listeners, called as ``listener(time, kind, detail,
        #: fields)`` on every :meth:`mark_event` (the telemetry layer
        #: mirrors events into its structured log through this).
        self._event_listeners: list[
            Callable[[float, str, str, dict[str, Any]], None]
        ] = []

    def timeseries(self, name: str) -> TimeSeries:
        """Get-or-create a time series by name."""
        series = self.time_series.get(name)
        if series is None:
            series = TimeSeries(name)
            self.time_series[name] = series
        return series

    def rate(self, name: str, bin_width: float = 1.0) -> RateSeries:
        """Get-or-create a rate series by name."""
        series = self.rate_series.get(name)
        if series is None:
            series = RateSeries(name, bin_width)
            self.rate_series[name] = series
        return series

    def latency(self, name: str) -> LatencyReservoir:
        """Get-or-create a latency reservoir by name."""
        reservoir = self.latencies.get(name)
        if reservoir is None:
            reservoir = LatencyReservoir(name)
            self.latencies[name] = reservoir
        return reservoir

    # ------------------------------------------------- deprecated aliases

    def time_series_for(self, name: str) -> TimeSeries:
        """Deprecated alias of :meth:`timeseries`."""
        warnings.warn(
            "MetricsHub.time_series_for() is deprecated; use hub.timeseries()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.timeseries(name)

    def rate_series_for(self, name: str, bin_width: float = 1.0) -> RateSeries:
        """Deprecated alias of :meth:`rate`."""
        warnings.warn(
            "MetricsHub.rate_series_for() is deprecated; use hub.rate()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.rate(name, bin_width)

    def latency_for(self, name: str) -> LatencyReservoir:
        """Deprecated alias of :meth:`latency`."""
        warnings.warn(
            "MetricsHub.latency_for() is deprecated; use hub.latency()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.latency(name)

    # ------------------------------------------------------------ events

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add to a named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Read a named counter (0 when absent)."""
        return self.counters.get(name, 0.0)

    def on_event(
        self, listener: Callable[[float, str, str, dict[str, Any]], None]
    ) -> None:
        """Register a listener invoked on every :meth:`mark_event`."""
        self._event_listeners.append(listener)

    def mark_event(
        self, time: float, kind: str, detail: str = "", **fields: Any
    ) -> None:
        """Record a control-plane event (scale out, failure, recovery...).

        ``fields`` are extra structured attributes forwarded to event
        listeners (and thus into JSONL traces); the in-memory event list
        keeps the compact ``(time, kind, detail)`` form.
        """
        self.events.append((time, kind, detail))
        for listener in self._event_listeners:
            listener(time, kind, detail, fields)

    def events_of_kind(self, kind: str) -> list[tuple[float, str, str]]:
        """All recorded control-plane events of one kind."""
        return [e for e in self.events if e[1] == kind]

    def start_phase_timeline(
        self, kind: str, op_name: str, slot_uids: list[int], time: float
    ) -> PhaseTimeline:
        """Open and register the timeline for one reconfiguration."""
        timeline = PhaseTimeline(kind, op_name, slot_uids, time)
        self.phase_timelines.append(timeline)
        return timeline

    def timelines(
        self,
        kind: str | None = None,
        op_name: str | None = None,
        slot_uid: int | None = None,
    ) -> list[PhaseTimeline]:
        """Query recorded reconfiguration timelines by kind/operator/slot."""
        result = self.phase_timelines
        if kind is not None:
            result = [t for t in result if t.kind == kind]
        if op_name is not None:
            result = [t for t in result if t.op_name == op_name]
        if slot_uid is not None:
            result = [t for t in result if slot_uid in t.slot_uids]
        return list(result)
