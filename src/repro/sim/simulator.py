"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  All other
substrates (VMs, network, cloud provider, failure injector) and the stream
processing runtime schedule their work through it, which is what makes a
complete SPS run on one laptop deterministic and fast.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import ClockError, SimulationError
from repro.sim.events import Event, EventQueue

#: Priority for data-plane events (tuple arrivals, processing completions).
PRIORITY_DATA = 10
#: Priority for control-plane events (checkpoints, reports, scale out);
#: control fires before data at equal timestamps so that e.g. a routing
#: update applies before tuples dispatched at the same instant.
PRIORITY_CONTROL = 5
#: Priority for failures: a crash at time t pre-empts everything else at t.
PRIORITY_FAILURE = 0


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run(until=10.0)
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._halted = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        self._seq += 1
        event = Event(time, priority, self._seq, callback, args)
        self._queue.push(event)
        return event

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_after: float | None = None,
        priority: int = PRIORITY_CONTROL,
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` seconds until stopped.

        The first invocation happens after ``start_after`` seconds
        (defaulting to one full interval).
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive: {interval}")
        task = PeriodicTask(self, interval, callback, args, priority)
        task.start(start_after if start_after is not None else interval)
        return task

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events until the queue empties or ``until`` is reached.

        Returns the number of events processed.  ``max_events`` guards
        against runaway feedback loops in tests.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._halted = False
        processed = 0
        #: Whether the loop consumed everything due before ``until``.  A
        #: halt() or max_events exit leaves earlier events pending, and
        #: fast-forwarding the clock past them would make a later run()
        #: move time *backwards* when it pops them.
        drained = False
        try:
            while True:
                if self._halted:
                    break
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    drained = True
                    break
                if until is not None and next_time > until:
                    drained = True
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                callback, args = event.callback, event.args
                event._mark_fired()
                callback(*args)
                processed += 1
            if drained and until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return processed

    def halt(self) -> None:
        """Stop the current :meth:`run` after the in-flight event."""
        self._halted = True

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._queue)


class PeriodicTask:
    """A repeating callback managed by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        priority: int,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._priority = priority
        self._event: Event | None = None
        self._stopped = False
        self.fire_count = 0

    def start(self, delay: float) -> None:
        """Schedule the first firing after ``delay`` seconds.

        A task may only be started once per lifetime: restarting a live
        task would spawn a second concurrent timer chain (both the pending
        event and the new one would each reschedule themselves forever).
        """
        if self._stopped:
            raise SimulationError("periodic task already stopped")
        if self._event is not None and self._event.pending:
            raise SimulationError(
                "periodic task already started (restart would double the "
                "timer chain)"
            )
        self._event = self._sim.schedule(
            delay, self._fire, priority=self._priority
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._callback(*self._args)
        if not self._stopped:
            self._event = self._sim.schedule(
                self.interval, self._fire, priority=self._priority
            )

    def stop(self) -> None:
        """Permanently stop the periodic task."""
        self._stopped = True
        if self._event is not None and self._event.pending:
            self._event.cancel()
        self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped


def iter_times(start: float, stop: float, step: float) -> Iterator[float]:
    """Yield ``start, start+step, ...`` strictly below ``stop``.

    Float-safe replacement for ``range`` used by workload generators.
    """
    if step <= 0:
        raise SimulationError(f"step must be positive: {step}")
    n = 0
    t = start
    while t < stop - 1e-12:
        yield t
        n += 1
        t = start + n * step
