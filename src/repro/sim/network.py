"""Network model.

Transfers between VMs experience a fixed per-message latency plus a
bandwidth-proportional delay.  Messages addressed to a VM that has failed
by delivery time are dropped — exactly the behaviour that forces the SPS
to buffer output tuples upstream until they are covered by a downstream
checkpoint.

The model deliberately gives every transfer its own pipe (no cross-traffic
interference): the paper's bottlenecks are CPU bottlenecks, and modelling
link contention would add noise without changing any of the evaluated
shapes.  Per-VM egress serialisation cost is instead charged as CPU work
by the runtime, matching the paper's observation that sources/sinks
saturate on serialisation overhead.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.simulator import PRIORITY_DATA, Simulator
from repro.sim.vm import VirtualMachine


class Network:
    """Point-to-point message delivery between VMs."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = 0.001,
        bandwidth_bytes_per_s: float = 100e6,
    ) -> None:
        if latency < 0:
            raise SimulationError(f"latency must be non-negative: {latency}")
        if bandwidth_bytes_per_s <= 0:
            raise SimulationError(
                f"bandwidth must be positive: {bandwidth_bytes_per_s}"
            )
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_s
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0.0

    def transfer_time(self, size_bytes: float) -> float:
        """Delay experienced by a message of ``size_bytes``."""
        return self.latency + size_bytes / self.bandwidth

    def send(
        self,
        src: VirtualMachine | None,
        dst: VirtualMachine,
        size_bytes: float,
        on_delivered: Callable[..., Any],
        *args: Any,
    ) -> None:
        """Deliver a message to ``dst`` after the modelled delay.

        ``src`` may be ``None`` for messages originating outside the
        cluster (e.g. external data feeds).  If the destination is dead at
        delivery time the message is silently dropped (crash-stop model).
        Messages from a VM that is already dead are not sent at all.
        """
        if src is not None and not src.alive:
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        delay = self.transfer_time(size_bytes)
        self.sim.schedule(
            delay, self._deliver, dst, on_delivered, args, priority=PRIORITY_DATA
        )

    def _deliver(
        self,
        dst: VirtualMachine,
        on_delivered: Callable[..., Any],
        args: tuple,
    ) -> None:
        if not dst.alive:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        on_delivered(*args)
