"""Network model.

Transfers between VMs experience a fixed per-message latency plus a
bandwidth-proportional delay.  Messages addressed to a VM that has failed
by delivery time are dropped — exactly the behaviour that forces the SPS
to buffer output tuples upstream until they are covered by a downstream
checkpoint.

The model deliberately gives every transfer its own pipe (no cross-traffic
interference): the paper's bottlenecks are CPU bottlenecks, and modelling
link contention would add noise without changing any of the evaluated
shapes.  Per-VM egress serialisation cost is instead charged as CPU work
by the runtime, matching the paper's observation that sources/sinks
saturate on serialisation overhead.

Chaos injection
---------------
A pluggable fault plan (see :mod:`repro.chaos.plan`) can perturb the
*physical* layer underneath data messages: losing copies, duplicating
them, re-ordering them, or spiking their latency.  The runtime's
duplicate filter and upstream-buffer trim protocol assume per-connection
FIFO lossless channels (the paper runs over TCP), so the Network models a
reliable transport on top of the faulty physical layer:

* a lost physical copy is retransmitted — it surfaces as added latency,
  never as silent loss (true loss only happens through VM death, which is
  what exercises the replay paths);
* a re-ordered or delayed copy is held back and released in order — each
  edge keeps a monotone release clock, so later messages never overtake
  an earlier delayed one (head-of-line blocking, as under TCP);
* a duplicated copy *is* delivered to the application, strictly after the
  in-order primary — exercising the timestamp duplicate filter, which is
  the one layer expected to absorb transport-level duplicates.

Which messages a plan may perturb is declared per rule through its
traffic classes (see :mod:`repro.chaos.plan`): by default only
``kind="data"`` messages are perturbed, with control messages
(checkpoints, state transfers) modelling an already-reliable RPC layer.
Heartbeats (``kind="heartbeat"``) are fire-and-forget timeliness
signals — a plan that opts in can *lose* them, and an active partition
always does.  Partitions sever every traffic class between two VM sets:
reliable classes are held back (per-edge FIFO) until the partition
heals, heartbeats crossing the cut are dropped outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.simulator import PRIORITY_DATA, Simulator
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.plan import NetworkFaultPlan

#: Message kinds. Fault rules default to the data plane; partitions
#: sever every kind.
KIND_DATA = "data"
KIND_CONTROL = "control"
#: State-migration chunks (fluid scale out / recovery transfers).  Like
#: control traffic they ride the reliable RPC layer, but they are counted
#: separately so the chunk-transfer overhead of a migration is visible.
KIND_MIGRATION = "migration"
#: Failure-detector heartbeats (phi detector).  Unlike every other kind
#: they are fire-and-forget: a perturbing fault plan or an active
#: partition can genuinely lose them.
KIND_HEARTBEAT = "heartbeat"
#: Credit grants for the flow-controlled data plane.  They ride the
#: reliable layer (retransmitted, released in order) like control
#: traffic, but are counted as their own kind so fault rules targeting
#: the data plane leave throttling signals alone.
KIND_CREDIT = "credit"


@dataclass
class EdgeStats:
    """Per-(src, dst) message accounting for one directed edge."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0

    def drop_rate(self) -> float:
        """Fraction of sent messages dropped (0 when nothing was sent)."""
        return self.dropped / self.sent if self.sent else 0.0


class Network:
    """Point-to-point message delivery between VMs."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = 0.001,
        bandwidth_bytes_per_s: float = 100e6,
    ) -> None:
        if latency < 0:
            raise SimulationError(f"latency must be non-negative: {latency}")
        if bandwidth_bytes_per_s <= 0:
            raise SimulationError(
                f"bandwidth must be positive: {bandwidth_bytes_per_s}"
            )
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_s
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0.0
        #: Chunk accounting for fluid state migration (kind="migration").
        self.migration_messages = 0
        self.migration_bytes = 0.0
        #: Per-edge accounting, keyed by (src vm_id | None, dst vm_id).
        self.edge_stats: dict[tuple[int | None, int], EdgeStats] = {}
        self.fault_plan: "NetworkFaultPlan | None" = None
        #: Per-edge in-order release clock, active only under a fault plan.
        self._edge_clear: dict[tuple[int | None, int], float] = {}
        #: Optional delivery observer, called as ``observer(src_vm_id,
        #: dst_vm_id, size_bytes, kind, sent_at, delivered)`` at the
        #: moment each message lands (or is dropped on a dead
        #: destination).  The telemetry layer hooks this to log
        #: control-plane deliveries.
        self.observer: Callable[..., Any] | None = None

    # -------------------------------------------------------------- chaos

    def install_fault_plan(self, plan: "NetworkFaultPlan | None") -> None:
        """Install (or clear, with ``None``) the data-plane fault plan."""
        self.fault_plan = plan
        self._edge_clear.clear()

    def prune_edges(self, vm_id: int) -> int:
        """Forget in-order release state for edges touching ``vm_id``.

        Called when a VM dies or retires: its edges will never carry
        another message (a recovered operator lands on a *new* VM), so
        keeping their release clocks would leak one entry per edge across
        long chaos runs.  Returns the number of edges pruned.
        """
        stale = [
            key
            for key in self._edge_clear
            if key[0] == vm_id or key[1] == vm_id
        ]
        for key in stale:
            del self._edge_clear[key]
        return len(stale)

    # ------------------------------------------------------------ sending

    def transfer_time(self, size_bytes: float) -> float:
        """Delay experienced by a message of ``size_bytes``."""
        return self.latency + size_bytes / self.bandwidth

    def edge(self, src: VirtualMachine | None, dst: VirtualMachine) -> EdgeStats:
        """The accounting record for the ``src -> dst`` edge."""
        key = (src.vm_id if src is not None else None, dst.vm_id)
        stats = self.edge_stats.get(key)
        if stats is None:
            stats = self.edge_stats[key] = EdgeStats()
        return stats

    def send(
        self,
        src: VirtualMachine | None,
        dst: VirtualMachine,
        size_bytes: float,
        on_delivered: Callable[..., Any],
        *args: Any,
        kind: str = KIND_DATA,
        fifo: bool = False,
    ) -> None:
        """Deliver a message to ``dst`` after the modelled delay.

        ``src`` may be ``None`` for messages originating outside the
        cluster (e.g. external data feeds).  If the destination is dead at
        delivery time the message is silently dropped (crash-stop model).
        Messages from a VM that is already dead count as sent *and*
        dropped, so per-edge drop rates stay within [0, 1].

        ``fifo`` opts into the per-edge in-order release clock even
        without a fault plan: the bandwidth term lets a later, smaller
        message overtake an earlier, bigger one on the same edge, and
        the flow-controlled data plane can ship twice back to back (a
        credit-covered prefix followed by the released remainder) —
        an overtake there would duplicate-drop the earlier rows at the
        receiver.  Plain sends keep the historical timing.
        """
        stats = self.edge(src, dst)
        self.messages_sent += 1
        stats.sent += 1
        if kind == KIND_MIGRATION:
            self.migration_messages += 1
            self.migration_bytes += size_bytes
        src_id = src.vm_id if src is not None else None
        meta = (src_id, dst.vm_id, size_bytes, kind, self.sim.now)
        if src is not None and not src.alive:
            self.messages_dropped += 1
            stats.dropped += 1
            if self.observer is not None:
                self.observer(*meta, False)
            return
        self.bytes_sent += size_bytes
        delay = self.transfer_time(size_bytes)
        plan = self.fault_plan
        key = (src_id, dst.vm_id)
        hold = 0.0
        if plan is not None:
            verdict = plan.partition_verdict(key, self.sim.now, kind)
            if verdict is None:
                # A heartbeat crossing an active partition: timeliness
                # signals are not retransmitted, they are simply gone.
                self.messages_dropped += 1
                stats.dropped += 1
                if self.observer is not None:
                    self.observer(*meta, False)
                return
            hold = verdict
        if plan is None or (hold == 0.0 and not plan.perturbs_kind(kind)):
            if fifo:
                arrival = max(
                    self.sim.now + delay, self._edge_clear.get(key, 0.0)
                )
                self._edge_clear[key] = arrival
                self.sim.schedule_at(
                    arrival,
                    self._deliver,
                    dst,
                    on_delivered,
                    args,
                    stats,
                    meta,
                    priority=PRIORITY_DATA,
                )
                return
            self.sim.schedule(
                delay,
                self._deliver,
                dst,
                on_delivered,
                args,
                stats,
                meta,
                priority=PRIORITY_DATA,
            )
            return
        extra, duplicate, lost = plan.draw_full(key, self.sim.now, kind)
        if lost:
            self.messages_dropped += 1
            stats.dropped += 1
            if self.observer is not None:
                self.observer(*meta, False)
            return
        if kind == KIND_HEARTBEAT:
            # Heartbeats are unordered datagrams: they neither respect nor
            # advance the per-edge FIFO release clock shared by the
            # reliable classes (a late heartbeat must never delay data).
            arrival = self.sim.now + delay + extra
            self.sim.schedule_at(
                arrival,
                self._deliver,
                dst,
                on_delivered,
                args,
                stats,
                meta,
                priority=PRIORITY_DATA,
            )
            if duplicate:
                self.messages_duplicated += 1
                stats.duplicated += 1
                self.sim.schedule_at(
                    arrival + plan.duplicate_lag,
                    self._deliver,
                    dst,
                    on_delivered,
                    args,
                    stats,
                    meta,
                    priority=PRIORITY_DATA,
                )
            return
        # Reliable in-order release: a delayed/retransmitted/held message
        # holds back everything sent after it on the same edge.
        arrival = max(
            self.sim.now + delay + hold + extra, self._edge_clear.get(key, 0.0)
        )
        self._edge_clear[key] = arrival
        self.sim.schedule_at(
            arrival,
            self._deliver,
            dst,
            on_delivered,
            args,
            stats,
            meta,
            priority=PRIORITY_DATA,
        )
        if duplicate:
            # The spurious copy arrives strictly after the in-order
            # primary; the receiver's duplicate filter must absorb it.
            self.messages_duplicated += 1
            stats.duplicated += 1
            self.sim.schedule_at(
                arrival + plan.duplicate_lag,
                self._deliver,
                dst,
                on_delivered,
                args,
                stats,
                meta,
                priority=PRIORITY_DATA,
            )

    def _deliver(
        self,
        dst: VirtualMachine,
        on_delivered: Callable[..., Any],
        args: tuple,
        stats: EdgeStats | None = None,
        meta: tuple | None = None,
    ) -> None:
        delivered = dst.alive
        if not delivered:
            self.messages_dropped += 1
            if stats is not None:
                stats.dropped += 1
        else:
            self.messages_delivered += 1
            if stats is not None:
                stats.delivered += 1
        if self.observer is not None and meta is not None:
            self.observer(*meta, delivered)
        if delivered:
            on_delivered(*args)
