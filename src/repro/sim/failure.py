"""Failure injection.

Models the paper's failure assumption: independent, random crash-stop
failures of machines.  Failures can be scheduled deterministically (kill
this VM at t=60, as in the recovery experiments) or drawn from an
exponential inter-failure distribution (as in long-running scale tests).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.simulator import PRIORITY_FAILURE, Simulator
from repro.sim.vm import VirtualMachine


class FailureInjector:
    """Schedules crash-stop failures against VMs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.failures_injected: list[tuple[float, int]] = []

    def fail_vm_at(self, vm: VirtualMachine, time: float) -> None:
        """Crash ``vm`` at absolute simulated ``time``."""
        self.sim.schedule_at(time, self._fail, vm, priority=PRIORITY_FAILURE)

    def fail_target_at(
        self, resolve: Callable[[], VirtualMachine | None], time: float
    ) -> None:
        """Crash whatever VM ``resolve`` returns at ``time``.

        Late binding matters: a scale-out between scheduling and firing may
        have moved the targeted operator to a different VM.
        """
        self.sim.schedule_at(
            time, self._fail_resolved, resolve, priority=PRIORITY_FAILURE
        )

    def poisson_failures(
        self,
        candidates: Callable[[], list[VirtualMachine]],
        mtbf: float,
        rng: np.random.Generator,
        until: float,
    ) -> None:
        """Inject failures with exponential inter-arrival times.

        ``mtbf`` is the mean time between failures across the whole
        deployment; victims are chosen uniformly among the alive VMs
        returned by ``candidates`` at failure time.
        """
        t = self.sim.now + float(rng.exponential(mtbf))
        while t < until:
            self.sim.schedule_at(
                t, self._fail_random, candidates, rng, priority=PRIORITY_FAILURE
            )
            t += float(rng.exponential(mtbf))

    def _fail(self, vm: VirtualMachine) -> None:
        if vm.alive:
            self.failures_injected.append((self.sim.now, vm.vm_id))
            vm.fail()

    def _fail_resolved(self, resolve: Callable[[], VirtualMachine | None]) -> None:
        vm = resolve()
        if vm is not None:
            self._fail(vm)

    def _fail_random(
        self,
        candidates: Callable[[], list[VirtualMachine]],
        rng: np.random.Generator,
    ) -> None:
        alive = [vm for vm in candidates() if vm.alive]
        if not alive:
            return
        victim = alive[int(rng.integers(len(alive)))]
        self._fail(victim)
