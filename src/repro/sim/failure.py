"""Failure injection.

Models the paper's failure assumption: independent, random crash-stop
failures of machines.  Failures can be scheduled deterministically (kill
this VM at t=60, as in the recovery experiments), drawn from an
exponential inter-failure distribution (as in long-running scale tests),
correlated across several VMs (rack/AZ loss), or degraded rather than
fatal (stragglers: a VM keeps running at a fraction of its CPU capacity,
which feeds the utilisation-based bottleneck detector false signals).

Every injection method returns an :class:`InjectionHandle` so a chaos
harness can tear a schedule down cleanly between seeds.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.events import Event
from repro.sim.simulator import PRIORITY_FAILURE, Simulator
from repro.sim.vm import VirtualMachine


class InjectionHandle:
    """Cancellation handle for one injected failure schedule."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self.cancelled = False

    def _add(self, event: Event) -> None:
        self._events.append(event)

    @property
    def pending(self) -> int:
        """Number of scheduled injections that have not fired yet."""
        return sum(1 for event in self._events if event.pending)

    def cancel(self) -> None:
        """Cancel every injection of this schedule that has not fired."""
        self.cancelled = True
        for event in self._events:
            if event.pending:
                event.cancel()


class FailureInjector:
    """Schedules crash-stop failures (and degradations) against VMs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.failures_injected: list[tuple[float, int]] = []
        #: Straggler injections as (time, vm_id, new_capacity).
        self.stragglers_injected: list[tuple[float, int, float]] = []

    def fail_vm_at(self, vm: VirtualMachine, time: float) -> InjectionHandle:
        """Crash ``vm`` at absolute simulated ``time``."""
        handle = InjectionHandle()
        handle._add(
            self.sim.schedule_at(time, self._fail, vm, priority=PRIORITY_FAILURE)
        )
        return handle

    def fail_target_at(
        self, resolve: Callable[[], VirtualMachine | None], time: float
    ) -> InjectionHandle:
        """Crash whatever VM ``resolve`` returns at ``time``.

        Late binding matters: a scale-out between scheduling and firing may
        have moved the targeted operator to a different VM.
        """
        handle = InjectionHandle()
        handle._add(
            self.sim.schedule_at(
                time, self._fail_resolved, resolve, priority=PRIORITY_FAILURE
            )
        )
        return handle

    def fail_now(self, vm: VirtualMachine) -> None:
        """Crash ``vm`` immediately (phase-triggered chaos schedules)."""
        self._fail(vm)

    def fail_correlated_at(
        self,
        resolve: Callable[[], list[VirtualMachine]],
        time: float,
    ) -> InjectionHandle:
        """Crash every VM ``resolve`` returns at the same instant.

        Models correlated failures (rack or availability-zone loss): all
        victims die in one simulated event, so recovery machinery sees
        them concurrently rather than one detection window apart.
        """
        handle = InjectionHandle()
        handle._add(
            self.sim.schedule_at(
                time, self._fail_group, resolve, priority=PRIORITY_FAILURE
            )
        )
        return handle

    def straggle_vm_at(
        self,
        resolve: Callable[[], VirtualMachine | None],
        time: float,
        factor: float = 0.25,
        duration: float | None = None,
    ) -> InjectionHandle:
        """Slow the resolved VM to ``factor`` of its capacity at ``time``.

        The VM degrades rather than dies — its utilisation rises toward
        100 %, which is exactly the false bottleneck signal the δ=70 %
        detector reacts to.  With ``duration`` the original capacity is
        restored afterwards (a transient straggler).
        """
        handle = InjectionHandle()
        handle._add(
            self.sim.schedule_at(
                time,
                self._straggle_resolved,
                resolve,
                factor,
                duration,
                handle,
                priority=PRIORITY_FAILURE,
            )
        )
        return handle

    def poisson_failures(
        self,
        candidates: Callable[[], list[VirtualMachine]],
        mtbf: float,
        rng: np.random.Generator,
        until: float,
    ) -> InjectionHandle:
        """Inject failures with exponential inter-arrival times.

        ``mtbf`` is the mean time between failures across the whole
        deployment; victims are chosen uniformly among the alive VMs
        returned by ``candidates`` at failure time.  The returned handle
        cancels every not-yet-fired injection of the schedule.
        """
        handle = InjectionHandle()
        t = self.sim.now + float(rng.exponential(mtbf))
        while t < until:
            handle._add(
                self.sim.schedule_at(
                    t,
                    self._fail_random,
                    candidates,
                    rng,
                    priority=PRIORITY_FAILURE,
                )
            )
            t += float(rng.exponential(mtbf))
        return handle

    def _fail(self, vm: VirtualMachine) -> None:
        if vm.alive:
            self.failures_injected.append((self.sim.now, vm.vm_id))
            vm.fail()

    def _fail_resolved(self, resolve: Callable[[], VirtualMachine | None]) -> None:
        vm = resolve()
        if vm is not None:
            self._fail(vm)

    def _fail_group(self, resolve: Callable[[], list[VirtualMachine]]) -> None:
        for vm in resolve():
            self._fail(vm)

    def _fail_random(
        self,
        candidates: Callable[[], list[VirtualMachine]],
        rng: np.random.Generator,
    ) -> None:
        alive = [vm for vm in candidates() if vm.alive]
        if not alive:
            return
        victim = alive[int(rng.integers(len(alive)))]
        self._fail(victim)

    def _straggle_resolved(
        self,
        resolve: Callable[[], VirtualMachine | None],
        factor: float,
        duration: float | None,
        handle: InjectionHandle,
    ) -> None:
        vm = resolve()
        if vm is None or not vm.alive:
            return
        original = vm.cpu_capacity
        degraded = original * factor
        vm.set_cpu_capacity(degraded)
        self.stragglers_injected.append((self.sim.now, vm.vm_id, degraded))
        if duration is not None:
            handle._add(
                self.sim.schedule(
                    duration,
                    self._recover_straggler,
                    vm,
                    original,
                    priority=PRIORITY_FAILURE,
                )
            )

    def _recover_straggler(self, vm: VirtualMachine, capacity: float) -> None:
        if vm.alive:
            vm.set_cpu_capacity(capacity)
