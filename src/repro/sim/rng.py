"""Seeded random-number streams.

Every source of randomness in an experiment draws from a named child
stream of one master seed, so that e.g. adding a new failure injector does
not perturb the workload generator's draws.  This is the standard trick
for keeping large simulations reproducible while still letting individual
components consume unpredictable amounts of randomness.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Hands out independent, deterministic :class:`numpy.random.Generator`s.

    Streams are identified by name; the same ``(seed, name)`` pair always
    produces an identical stream regardless of creation order.

    >>> a = RngRegistry(7).stream("workload")
    >>> b = RngRegistry(7).stream("workload")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            child_seed = self._derive(name)
            generator = np.random.default_rng(child_seed)
            self._streams[name] = generator
        return generator

    def _derive(self, name: str) -> int:
        # crc32 is stable across processes and Python versions, unlike hash().
        tag = zlib.crc32(name.encode("utf-8"))
        return (self.seed * 0x9E3779B1 + tag) % (2**63)

    def fork(self, name: str) -> "RngRegistry":
        """Return a registry whose streams are independent of this one."""
        return RngRegistry(self._derive(f"fork:{name}"))
