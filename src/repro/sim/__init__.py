"""Discrete-event simulation substrate: clock, VMs, network, cloud, failures.

This package replaces the paper's Amazon EC2 testbed with a deterministic
simulator, as documented in DESIGN.md §2.
"""

from repro.sim.cloud import CloudProvider, VMPool
from repro.sim.events import Event, EventQueue
from repro.sim.failure import FailureInjector
from repro.sim.metrics import LatencyReservoir, MetricsHub, RateSeries, TimeSeries
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.simulator import (
    PRIORITY_CONTROL,
    PRIORITY_DATA,
    PRIORITY_FAILURE,
    PeriodicTask,
    Simulator,
)
from repro.sim.vm import VirtualMachine, VMState

__all__ = [
    "CloudProvider",
    "Event",
    "EventQueue",
    "FailureInjector",
    "LatencyReservoir",
    "MetricsHub",
    "Network",
    "PeriodicTask",
    "PRIORITY_CONTROL",
    "PRIORITY_DATA",
    "PRIORITY_FAILURE",
    "RateSeries",
    "RngRegistry",
    "Simulator",
    "TimeSeries",
    "VirtualMachine",
    "VMPool",
    "VMState",
]
