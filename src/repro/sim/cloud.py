"""Cloud provider and VM pool (§5.2 of the paper).

The provider models an IaaS platform: a fresh VM becomes usable only after
a provisioning delay on the order of minutes.  The :class:`VMPool`
decouples *requesting* a VM from *provisioning* one by holding ``p``
pre-allocated instances: requests served from the pool complete in
seconds, and the pool refills asynchronously.  This is the mechanism that
makes second-scale scale-out and recovery possible in the experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import VMPoolError
from repro.sim.simulator import PRIORITY_CONTROL, Simulator
from repro.sim.vm import VirtualMachine, VMState


class CloudProvider:
    """Allocates VMs after a provisioning delay and tracks billing."""

    def __init__(
        self,
        sim: Simulator,
        provisioning_delay: float = 90.0,
        cpu_capacity: float = 1.0,
        max_vms: int | None = None,
    ) -> None:
        self.sim = sim
        self.provisioning_delay = provisioning_delay
        self.cpu_capacity = cpu_capacity
        self.max_vms = max_vms
        self._next_id = 0
        self.vms: list[VirtualMachine] = []
        self.provisions_requested = 0

    def provision(
        self,
        callback: Callable[[VirtualMachine], None],
        cpu_capacity: float | None = None,
    ) -> None:
        """Request a fresh VM; ``callback`` fires when it is usable."""
        if self.max_vms is not None and self.vm_count_allocated() >= self.max_vms:
            raise VMPoolError(
                f"provider VM limit reached ({self.max_vms} allocated)"
            )
        self.provisions_requested += 1
        capacity = cpu_capacity if cpu_capacity is not None else self.cpu_capacity
        self.sim.schedule(
            self.provisioning_delay,
            self._deliver,
            callback,
            capacity,
            priority=PRIORITY_CONTROL,
        )

    def provision_immediately(
        self, cpu_capacity: float | None = None
    ) -> VirtualMachine:
        """Create a VM with no delay — initial deployment only.

        The paper deploys the initial execution graph before the run
        starts; the provisioning delay only matters for runtime requests.
        """
        capacity = cpu_capacity if cpu_capacity is not None else self.cpu_capacity
        return self._create(capacity)

    def _deliver(
        self, callback: Callable[[VirtualMachine], None], capacity: float
    ) -> None:
        callback(self._create(capacity))

    def _create(self, capacity: float) -> VirtualMachine:
        vm = VirtualMachine(self.sim, self._next_id, capacity)
        self._next_id += 1
        self.vms.append(vm)
        return vm

    # ------------------------------------------------------------ accounting

    def vm_count_allocated(self) -> int:
        """VMs currently billed (running or still provisioning)."""
        return sum(1 for vm in self.vms if vm.state is VMState.RUNNING)

    def vm_seconds_billed(self, until: float | None = None) -> float:
        """Total VM-seconds billed up to ``until`` (defaults to now)."""
        end_default = until if until is not None else self.sim.now
        total = 0.0
        for vm in self.vms:
            end = end_default
            if vm.released_at is not None:
                end = min(end, vm.released_at)
            if vm.failed_at is not None:
                end = min(end, vm.failed_at)
            total += max(0.0, end - vm.started_at)
        return total


class VMPool:
    """A pool of ``size`` pre-allocated VMs with asynchronous refill.

    ``acquire`` hands out a pooled VM after ``handout_delay`` seconds
    (container start, operator deployment).  When the pool is empty the
    request queues until a refill provisioning completes — the degraded
    path whose cost the pool exists to avoid.
    """

    def __init__(
        self,
        sim: Simulator,
        provider: CloudProvider,
        size: int = 2,
        handout_delay: float = 1.0,
        prefill: bool = True,
    ) -> None:
        if size < 0:
            raise VMPoolError(f"pool size must be non-negative: {size}")
        self.sim = sim
        self.provider = provider
        self.size = size
        self.handout_delay = handout_delay
        self._available: deque[VirtualMachine] = deque()
        self._waiters: deque[Callable[[VirtualMachine], None]] = deque()
        self._refills_in_flight = 0
        #: Hand-outs are serial: the deployment manager configures one VM
        #: at a time, so concurrent requests queue behind each other.
        self._handout_free_at = 0.0
        self.served_from_pool = 0
        self.served_after_wait = 0
        if prefill:
            for _ in range(size):
                self._available.append(provider.provision_immediately())

    def acquire(self, callback: Callable[[VirtualMachine], None]) -> None:
        """Request a VM; ``callback`` fires once it is ready for deployment."""
        self._drop_dead_pool_vms()
        if self._available:
            vm = self._available.popleft()
            self.served_from_pool += 1
            self._hand_out(callback, vm)
        else:
            self._waiters.append(callback)
        self._refill()

    def _hand_out(self, callback: Callable[[VirtualMachine], None], vm: VirtualMachine) -> None:
        start = max(self.sim.now, self._handout_free_at)
        ready_at = start + self.handout_delay
        self._handout_free_at = ready_at
        self.sim.schedule_at(ready_at, callback, vm, priority=PRIORITY_CONTROL)

    def available_count(self) -> int:
        """Live VMs currently waiting in the pool."""
        self._drop_dead_pool_vms()
        return len(self._available)

    def give_back(self, vm: VirtualMachine) -> None:
        """Return an unused, still-healthy VM to the pool.

        Aborted scale-outs hand their acquired-but-never-deployed VMs back
        instead of releasing them, so the pool stays warm for the retry.
        """
        if not vm.alive:
            return
        if self._waiters:
            callback = self._waiters.popleft()
            self.served_after_wait += 1
            self._hand_out(callback, vm)
        elif len(self._available) < self.size:
            self._available.append(vm)
        else:
            vm.release()

    def resize(self, size: int) -> None:
        """Adjust the target pool size (shrinking releases surplus VMs)."""
        if size < 0:
            raise VMPoolError(f"pool size must be non-negative: {size}")
        self.size = size
        while len(self._available) > size:
            self._available.pop().release()
        self._refill()

    def _refill(self) -> None:
        deficit = (
            self.size + len(self._waiters) - len(self._available) - self._refills_in_flight
        )
        for _ in range(max(0, deficit)):
            self._refills_in_flight += 1
            self.provider.provision(self._on_refill)

    def _on_refill(self, vm: VirtualMachine) -> None:
        self._refills_in_flight -= 1
        if self._waiters:
            callback = self._waiters.popleft()
            self.served_after_wait += 1
            self._hand_out(callback, vm)
        elif len(self._available) < self.size:
            self._available.append(vm)
        else:
            vm.release()

    def _drop_dead_pool_vms(self) -> None:
        self._available = deque(vm for vm in self._available if vm.alive)
