"""Virtual machine model.

A VM is a serial CPU with a capacity expressed in CPU-seconds of work per
wall-clock second (1.0 ≈ one EC2 "small" instance, the unit used in the
paper).  Operator instances submit work items (tuple batches, checkpoint
serialisation) to the VM's executor; queueing on this executor is what
produces processing latency, bottlenecks and the utilisation numbers the
scaling policy feeds on.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable

from repro.errors import RuntimeStateError, SimulationError
from repro.sim.events import Event
from repro.sim.simulator import PRIORITY_DATA, Simulator


class VMState(enum.Enum):
    """Lifecycle of a VM."""

    PROVISIONING = "provisioning"
    RUNNING = "running"
    FAILED = "failed"
    RELEASED = "released"


class _WorkItem:
    __slots__ = ("work_seconds", "callback", "args")

    def __init__(self, work_seconds: float, callback: Callable[..., Any], args: tuple):
        self.work_seconds = work_seconds
        self.callback = callback
        self.args = args


class VirtualMachine:
    """A simulated VM hosting (at most) one operator instance.

    Parameters
    ----------
    sim:
        The owning simulator.
    vm_id:
        Unique identifier, assigned by the cloud provider.
    cpu_capacity:
        CPU-seconds of work the VM completes per second of simulated time.
    """

    def __init__(self, sim: Simulator, vm_id: int, cpu_capacity: float = 1.0) -> None:
        if cpu_capacity <= 0:
            raise SimulationError(f"cpu_capacity must be positive: {cpu_capacity}")
        self.sim = sim
        self.vm_id = vm_id
        self.cpu_capacity = cpu_capacity
        self.state = VMState.RUNNING
        self.started_at = sim.now
        self.failed_at: float | None = None
        self.released_at: float | None = None
        self._queue: deque[_WorkItem] = deque()
        self._paused = False
        self._current: _WorkItem | None = None
        self._current_event: Event | None = None
        self._current_started = 0.0
        self._busy_accum = 0.0
        self._failure_listeners: list[Callable[["VirtualMachine"], None]] = []
        #: Opaque reference to whatever is deployed here (set by the runtime).
        self.occupant: Any = None

    # ------------------------------------------------------------------ CPU

    def submit(
        self,
        work_seconds: float,
        callback: Callable[..., Any],
        *args: Any,
        front: bool = False,
    ) -> None:
        """Queue ``work_seconds`` of CPU work; run ``callback`` when done.

        ``front=True`` puts the item at the head of the queue (used for
        checkpoint serialisation, which locks the operator's structures and
        therefore pre-empts queued tuple batches but not the in-flight one).
        """
        if self.state is not VMState.RUNNING:
            raise RuntimeStateError(
                f"cannot submit work to VM {self.vm_id} in state {self.state}"
            )
        if work_seconds < 0:
            raise SimulationError(f"negative work: {work_seconds}")
        item = _WorkItem(work_seconds, callback, args)
        if front:
            self._queue.appendleft(item)
        else:
            self._queue.append(item)
        if self._current is None:
            self._start_next()

    def pause(self) -> None:
        """Stop starting queued work; the in-flight item completes.

        Used by the scale-out coordinator's ``stop-operator`` step: the
        operator stops processing while its routing and buffers are
        repartitioned, but already-queued tuples are not lost.
        """
        self._paused = True

    def resume(self) -> None:
        """Resume starting queued work after a pause."""
        self._paused = False
        if self._current is None:
            self._start_next()

    @property
    def paused(self) -> bool:
        return self._paused

    def _start_next(self) -> None:
        if not self._queue or self._paused or self.state is not VMState.RUNNING:
            return
        item = self._queue.popleft()
        self._current = item
        self._current_started = self.sim.now
        duration = item.work_seconds / self.cpu_capacity
        self._current_event = self.sim.schedule(
            duration, self._complete_current, priority=PRIORITY_DATA
        )

    def set_cpu_capacity(self, capacity: float) -> None:
        """Change CPU speed mid-run (straggler injection / repair).

        The in-flight work item is rescheduled so that the work it has
        *not yet* performed completes at the new speed; queued items pick
        up the new capacity when they start.
        """
        if capacity <= 0:
            raise SimulationError(f"cpu_capacity must be positive: {capacity}")
        if capacity == self.cpu_capacity:
            return
        if self._current_event is not None and self._current_event.pending:
            remaining_wall = self._current_event.time - self.sim.now
            remaining_work = remaining_wall * self.cpu_capacity
            self._current_event.cancel()
            self._current_event = self.sim.schedule(
                remaining_work / capacity,
                self._complete_current,
                priority=PRIORITY_DATA,
            )
        self.cpu_capacity = capacity

    def _complete_current(self) -> None:
        item = self._current
        assert item is not None
        self._busy_accum += self.sim.now - self._current_started
        self._current = None
        self._current_event = None
        item.callback(*item.args)
        if self._current is None:
            # The callback may itself have submitted (and started) new work.
            self._start_next()

    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def queued_work_seconds(self) -> float:
        """Outstanding CPU work including the remainder of the current item."""
        total = sum(item.work_seconds for item in self._queue)
        if self._current is not None and self._current_event is not None:
            remaining = self._current_event.time - self.sim.now
            total += remaining * self.cpu_capacity
        return total

    # -------------------------------------------------------- utilisation

    def busy_seconds_total(self) -> float:
        """Total CPU-busy seconds since boot, including the in-flight item."""
        total = self._busy_accum
        if self._current is not None:
            total += self.sim.now - self._current_started
        return total

    # ------------------------------------------------------------ lifecycle

    def on_failure(self, listener: Callable[["VirtualMachine"], None]) -> None:
        """Register a callback invoked when this VM crashes."""
        self._failure_listeners.append(listener)

    def fail(self) -> None:
        """Crash-stop the VM: all queued and in-flight work is lost."""
        if self.state is not VMState.RUNNING:
            return
        self.state = VMState.FAILED
        self.failed_at = self.sim.now
        self._abandon_work()
        listeners = list(self._failure_listeners)
        self._failure_listeners.clear()
        for listener in listeners:
            listener(self)

    def release(self) -> None:
        """Return the VM to the provider (graceful shutdown)."""
        if self.state is VMState.RELEASED:
            return
        if self.state is VMState.FAILED:
            raise RuntimeStateError(f"cannot release failed VM {self.vm_id}")
        self.state = VMState.RELEASED
        self.released_at = self.sim.now
        self._abandon_work()

    def _abandon_work(self) -> None:
        if self._current_event is not None and self._current_event.pending:
            self._current_event.cancel()
        self._current = None
        self._current_event = None
        self._queue.clear()

    @property
    def alive(self) -> bool:
        return self.state is VMState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VM({self.vm_id}, {self.state.value}, cap={self.cpu_capacity})"
