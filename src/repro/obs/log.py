"""Structured event log with JSONL export.

Every control-plane happening in a run — failures, detections, phase
transitions, checkpoint arrivals, critical-path summaries — is one
:class:`EventLog` record: a flat JSON-serialisable dict with a ``kind``
and, for simulated events, a timestamp ``t``.  The log is stamped with
run metadata (seed, config fingerprint) so a dumped trace reproduces and
explains itself.

An optional *sink* receives each record as it is emitted; the CLI
installs :func:`console_sink` so library code never calls ``print``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Callable, Iterable, TextIO


def config_fingerprint(config: Any) -> str:
    """A short stable hash of a configuration dataclass.

    Two runs with equal fingerprints (and equal seeds) are byte-for-byte
    reproductions of each other; the fingerprint is stamped into every
    dumped trace so a trace names the exact configuration it came from.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def console_sink(stream: TextIO | None = None) -> Callable[[dict], None]:
    """A sink rendering each record as one human-readable line.

    Records carrying a ``text`` field render as that text verbatim;
    anything else renders as compact JSON.  The CLI is the only place
    that constructs one of these — library code emits records, never
    lines.
    """

    def write(record: dict) -> None:
        out = stream if stream is not None else sys.stdout
        text = record.get("text")
        if text is None:
            text = json.dumps(record, default=repr)
        out.write(f"{text}\n")

    return write


class EventLog:
    """Append-only structured event records for one run."""

    def __init__(
        self,
        meta: dict[str, Any] | None = None,
        sink: Callable[[dict], None] | None = None,
    ) -> None:
        #: Run metadata stamped into the JSONL header (seed, config hash).
        self.meta: dict[str, Any] = dict(meta or {})
        self.records: list[dict[str, Any]] = []
        self.sink = sink

    def emit(
        self, kind: str, time: float | None = None, **fields: Any
    ) -> dict[str, Any]:
        """Record one structured event; forwarded to the sink if set."""
        record: dict[str, Any] = {"kind": kind}
        if time is not None:
            record["t"] = time
        record.update(fields)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)
        return record

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All records of one kind."""
        return [r for r in self.records if r["kind"] == kind]

    def __len__(self) -> int:
        return len(self.records)

    def dump_jsonl(
        self,
        path: str | Path,
        extra_records: Iterable[dict[str, Any]] = (),
    ) -> Path:
        """Write the run-metadata header plus every record as JSONL.

        ``extra_records`` (e.g. span records from a tracer) are merged
        with the event records and sorted by timestamp, so the file
        reads as one chronological account of the run.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        merged = list(self.records) + list(extra_records)
        merged.sort(key=lambda r: (r.get("t") is None, r.get("t", 0.0)))
        with path.open("w", encoding="utf-8") as fh:
            header = {"kind": "run_meta", **self.meta}
            fh.write(json.dumps(header, default=repr) + "\n")
            for record in merged:
                fh.write(json.dumps(record, default=repr) + "\n")
        return path
