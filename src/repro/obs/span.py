"""Causally linked spans over simulated time.

A :class:`Span` covers one timed activity — a reconfiguration, one of
its phases, a checkpoint shipment, a state-partition transfer — and
carries a parent link to the span that caused it.  Causality regularly
crosses VM boundaries (a failure on one VM causes a detection on the
coordinator causes a restore on a third machine), so the
:class:`Tracer` keeps a registry of *causal keys* — message and
operation identifiers such as ``("failure", slot_uid)`` — that a later
span on a different machine can name as its parent without ever holding
a reference to the earlier span.

Spans are plain data: they serialise to one JSONL record each (see
:meth:`Span.to_record`) and carry no behaviour beyond closing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable


@dataclass
class Span:
    """One timed, causally linked activity in a run."""

    span_id: int
    name: str
    #: Coarse type: ``reconfig``, ``phase``, ``failure``, ``detection``,
    #: ``checkpoint``, ``transfer`` — used by analyzers to filter.
    kind: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    #: Root span's id, shared by every span in the causal tree.
    trace_id: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Elapsed simulated seconds, or ``None`` while open."""
        return None if self.end is None else self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None

    def close(self, time: float) -> None:
        """Close the span at ``time`` (idempotent)."""
        if self.end is None:
            self.end = time

    def to_record(self) -> dict[str, Any]:
        """One JSONL record for this span."""
        record: dict[str, Any] = {
            "kind": "span",
            "span": self.span_id,
            "trace": self.trace_id,
            "parent": self.parent_id,
            "name": self.name,
            "type": self.kind,
            "t": self.start,
            "end": self.end,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tail = "open" if self.end is None else f"{self.duration:.3f}s"
        return f"Span({self.span_id} {self.kind}:{self.name} @{self.start:.3f} {tail})"


class Tracer:
    """Produces causally linked spans and resolves cross-VM parents."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._next_id = 1
        #: Causal keys (message/operation ids) → span ids.
        self._links: dict[Hashable, int] = {}
        self._by_id: dict[int, Span] = {}

    def start(
        self,
        name: str,
        kind: str = "span",
        time: float = 0.0,
        parent: Span | int | None = None,
        link_from: Hashable | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.

        ``parent`` may be a :class:`Span`, a span id, or ``None``.  When
        ``parent`` is ``None`` and ``link_from`` names a registered
        causal key, the span registered under that key becomes the
        parent — this is how causality survives a VM boundary.
        """
        if parent is None and link_from is not None:
            parent = self._links.get(link_from)
        parent_span = self._resolve_span(parent)
        span_id = self._next_id
        self._next_id += 1
        span = Span(
            span_id=span_id,
            name=name,
            kind=kind,
            start=time,
            parent_id=parent_span.span_id if parent_span else None,
            trace_id=parent_span.trace_id if parent_span else span_id,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._by_id[span_id] = span
        return span

    def end(self, span: Span, time: float, **attrs: Any) -> Span:
        """Close ``span`` at ``time``, merging any extra attributes."""
        span.close(time)
        if attrs:
            span.attrs.update(attrs)
        return span

    # ------------------------------------------------------- causal keys

    def link(self, key: Hashable, span: Span) -> None:
        """Register ``span`` under a causal key for later parent lookup.

        Keys are message/operation ids; re-registering a key overwrites
        it (the latest failure of a slot is the one a new detection is
        caused by).
        """
        self._links[key] = span.span_id

    def resolve(self, key: Hashable) -> Span | None:
        """The span registered under a causal key, if any."""
        span_id = self._links.get(key)
        return self._by_id.get(span_id) if span_id is not None else None

    def _resolve_span(self, ref: Span | int | None) -> Span | None:
        if ref is None:
            return None
        if isinstance(ref, Span):
            return ref
        return self._by_id.get(ref)

    # ----------------------------------------------------------- queries

    def get(self, span_id: int) -> Span | None:
        """The span with this id, if it exists."""
        return self._by_id.get(span_id)

    def children_of(self, span: Span | int) -> list[Span]:
        """Direct children of a span, in creation order."""
        parent = self._resolve_span(span)
        if parent is None:
            return []
        return [s for s in self.spans if s.parent_id == parent.span_id]

    def trace(self, trace_id: int) -> list[Span]:
        """Every span of one causal tree, in creation order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def find(
        self, kind: str | None = None, name: str | None = None
    ) -> list[Span]:
        """Spans filtered by kind and/or name."""
        result: Iterable[Span] = self.spans
        if kind is not None:
            result = (s for s in result if s.kind == kind)
        if name is not None:
            result = (s for s in result if s.name == name)
        return list(result)

    def __len__(self) -> int:
        return len(self.spans)
