"""Causal tracing and telemetry for the simulated SPS.

The observability layer the evaluation leans on:

* :mod:`repro.obs.span` — :class:`Span`/:class:`Tracer`: causally
  linked spans over simulated time, with parent links that survive VM
  boundaries via message/operation ids;
* :mod:`repro.obs.log` — :class:`EventLog`: structured JSONL event
  records stamped with run metadata (seed, config fingerprint);
* :mod:`repro.obs.critical_path` — :func:`analyze`: decomposes any
  recovery or scale-out into detection / provision /
  checkpoint-partition / transfer / restore / replay-drain segments and
  names the dominant one (the paper's §6 breakdowns);
* :mod:`repro.obs.telemetry` — :class:`Telemetry`: the facade wrapping
  the metrics hub, event log and tracer behind one entry point shared
  by benchmarks, experiments and the chaos harness;
* :mod:`repro.obs.trace_cli` — the ``python -m repro trace`` driver.
"""

from repro.obs.critical_path import (
    SEGMENT_CHECKPOINT_PARTITION,
    SEGMENT_DETECTION,
    SEGMENT_ORDER,
    SEGMENT_PROVISION,
    SEGMENT_REPLAY_DRAIN,
    SEGMENT_RESTORE,
    SEGMENT_TRANSFER,
    CriticalPath,
    analyze,
)
from repro.obs.log import EventLog, config_fingerprint, console_sink
from repro.obs.span import Span, Tracer
from repro.obs.telemetry import Telemetry
from repro.obs.trace_cli import TraceReport, run_trace

__all__ = [
    "CriticalPath",
    "EventLog",
    "SEGMENT_CHECKPOINT_PARTITION",
    "SEGMENT_DETECTION",
    "SEGMENT_ORDER",
    "SEGMENT_PROVISION",
    "SEGMENT_REPLAY_DRAIN",
    "SEGMENT_RESTORE",
    "SEGMENT_TRANSFER",
    "Span",
    "TraceReport",
    "Tracer",
    "Telemetry",
    "analyze",
    "config_fingerprint",
    "console_sink",
    "run_trace",
]
