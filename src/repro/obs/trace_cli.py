"""``python -m repro trace`` — run a seeded recovery and explain it.

Builds a workload, kills one operator's primary VM mid-run, and renders
what the telemetry layer saw: the phase timeline of every resulting
reconfiguration, its critical-path breakdown (which segment dominated —
the paper's §6 decomposition), and a JSONL trace file whose causally
linked spans reproduce the whole story offline::

    python -m repro trace wordcount --seed 7
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.obs.critical_path import CriticalPath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import StreamProcessingSystem


@dataclass
class TraceReport:
    """Everything the trace subcommand reports about one seeded run."""

    workload: str
    seed: int
    path: Path
    critical_paths: list[CriticalPath] = field(default_factory=list)
    timelines: list[list[tuple[str, float, float | None]]] = field(
        default_factory=list
    )
    span_count: int = 0
    event_count: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Phase timeline + critical path per operation, then the file."""
        lines = [f"trace of {self.workload} (seed {self.seed})"]
        if not self.critical_paths:
            lines.append("  no reconfigurations occurred")
        for path, rows in zip(self.critical_paths, self.timelines):
            lines.append("")
            lines.append(self.render_timeline(rows))
            lines.append(path.render())
        if self.counters:
            lines.append("")
            lines.append("checkpoint counters:")
            width = max(len(name) for name in self.counters)
            for name, value in self.counters.items():
                lines.append(f"  {name.ljust(width)}  {value:,.1f}")
        lines.append("")
        lines.append(
            f"{self.span_count} spans, {self.event_count} events "
            f"-> {self.path}"
        )
        return "\n".join(lines)

    @staticmethod
    def render_timeline(rows: list[tuple[str, float, float | None]]) -> str:
        """One line per phase span: ``PHASE  [start, end)  duration``."""
        lines = ["phase timeline:"]
        width = max((len(phase) for phase, _, _ in rows), default=0)
        for phase, start, end in rows:
            if end is None:
                lines.append(f"  {phase.ljust(width)} [{start:9.3f}, ...)")
            else:
                lines.append(
                    f"  {phase.ljust(width)} [{start:9.3f}, {end:9.3f})"
                    f"  {end - start:7.3f}s"
                )
        return "\n".join(lines)


#: Counters surfaced in the trace summary (epoch-aligned checkpointing).
_CHECKPOINT_COUNTERS = (
    "checkpoint.full_bytes",
    "checkpoint.delta_bytes",
    "epoch.alignment_stall_ms",
)


def _build_system(
    workload: str,
    seed: int,
    rate: float,
    duration: float,
    checkpoint_interval: float,
    checkpoint_mode: str | None = None,
) -> tuple["StreamProcessingSystem", str]:
    from repro.runtime.system import StreamProcessingSystem

    if workload == "lrb":
        from repro.workloads.lrb.query import build_lrb_query

        query = build_lrb_query(1, duration)
        fail_op = "toll_calc"
    elif workload == "wordcount":
        from repro.workloads.wordcount import build_word_count_query

        query = build_word_count_query(
            rate=rate,
            window=10.0,
            vocabulary_size=500,
            words_per_sentence=6,
            quantum=0.1,
        )
        fail_op = "counter"
    else:
        raise ReproError(f"unknown trace workload: {workload!r}")
    config = SystemConfig()
    config.seed = seed
    config.scaling.enabled = False
    config.checkpoint.interval = checkpoint_interval
    if checkpoint_mode is not None:
        config.checkpoint.mode = checkpoint_mode
    config.cloud.pool_size = 2
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    return system, fail_op


def run_trace(
    workload: str = "wordcount",
    seed: int = 7,
    rate: float = 200.0,
    duration: float = 90.0,
    fail_at: float = 40.0,
    checkpoint_interval: float = 2.0,
    checkpoint_mode: str | None = None,
    out: str | Path | None = None,
) -> TraceReport:
    """Run one seeded recovery and dump + summarise its trace."""
    system, fail_op = _build_system(
        workload, seed, rate, duration, checkpoint_interval, checkpoint_mode
    )
    system.injector.fail_target_at(lambda: system.vm_of(fail_op), fail_at)
    system.run(until=duration)
    telemetry = system.telemetry
    path = Path(out) if out is not None else Path(
        f"trace-{workload}-seed{seed}.jsonl"
    )
    telemetry.dump_jsonl(path)
    paths = telemetry.critical_paths()
    timelines = []
    for cp in paths:
        timeline = telemetry.timeline_for(cp)
        timelines.append(timeline.as_rows() if timeline is not None else [])
    return TraceReport(
        workload=workload,
        seed=seed,
        path=path,
        critical_paths=paths,
        timelines=timelines,
        span_count=len(telemetry.tracer),
        event_count=len(telemetry.log),
        counters={
            name: telemetry.counter(name) for name in _CHECKPOINT_COUNTERS
        },
    )
