"""Critical-path decomposition of reconfigurations.

The paper's §6 evaluation attributes recovery time and scale-out latency
to individual stages — how long until the failure was *detected*, how
long VM *provisioning* took, how long the checkpoint took to
*partition*, *transfer* and *restore*, and how long the replay *drain*
ran.  :func:`analyze` maps a recorded
:class:`~repro.sim.metrics.PhaseTimeline` onto those six segments and
identifies the dominant one, which is what the figures' breakdowns (and
any "why was this recovery slow?" question) reduce to.

The segment durations partition the timeline exactly: for a closed
timeline, ``sum(cp.segments.values()) == timeline.total_duration()``,
because the engine's phase spans are contiguous.  Detection happens
*before* the engine's timeline starts (failure → detector handoff), so
it is reported separately and included only in :attr:`CriticalPath.
total_with_detection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.metrics import PhaseTimeline

SEGMENT_DETECTION = "detection"
SEGMENT_PROVISION = "provision"
SEGMENT_CHECKPOINT_PARTITION = "checkpoint-partition"
SEGMENT_TRANSFER = "transfer"
SEGMENT_RESTORE = "restore"
SEGMENT_REPLAY_DRAIN = "replay-drain"
#: Catch-all for phases an older/newer engine might add.
SEGMENT_OTHER = "other"

#: Report order for rendering and JSONL export.
SEGMENT_ORDER = (
    SEGMENT_DETECTION,
    SEGMENT_PROVISION,
    SEGMENT_CHECKPOINT_PARTITION,
    SEGMENT_TRANSFER,
    SEGMENT_RESTORE,
    SEGMENT_REPLAY_DRAIN,
)

#: Engine phase → critical-path segment.  PLAN (admission checks, busy
#: marking) counts toward provisioning; COMMIT (routing swap + replay
#: kick-off) toward restore, matching the paper's restore-state stage.
_PHASE_TO_SEGMENT = {
    "PLAN": SEGMENT_PROVISION,
    "ACQUIRE_VMS": SEGMENT_PROVISION,
    "CHECKPOINT_PARTITION": SEGMENT_CHECKPOINT_PARTITION,
    "TRANSFER": SEGMENT_TRANSFER,
    "RESTORE": SEGMENT_RESTORE,
    "COMMIT": SEGMENT_RESTORE,
    "REPLAY_DRAIN": SEGMENT_REPLAY_DRAIN,
    # Zero-length terminal markers.
    "DONE": SEGMENT_OTHER,
    "ABORTED": SEGMENT_OTHER,
}


@dataclass
class CriticalPath:
    """The per-segment decomposition of one reconfiguration."""

    kind: str
    op_name: str
    slot_uids: list[int]
    outcome: str | None
    started_at: float
    #: Failure → timeline start; 0.0 for scale out / scale in.
    detection: float
    #: Segment → seconds, insertion-ordered for rendering; sums to the
    #: timeline's total duration.
    segments: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum of in-timeline segments (== ``timeline.total_duration()``)."""
        return sum(self.segments.values())

    @property
    def total_with_detection(self) -> float:
        """End-to-end latency from the causing failure, when there was one."""
        return self.detection + self.total

    @property
    def dominant(self) -> str:
        """The segment where this operation spent the most time."""
        candidates = dict(self.segments)
        if self.detection > 0:
            candidates[SEGMENT_DETECTION] = self.detection
        if not candidates:
            return SEGMENT_OTHER
        return max(candidates, key=lambda seg: candidates[seg])

    def as_record(self) -> dict[str, Any]:
        """The JSONL record dumped into traces."""
        return {
            "kind": "critical_path",
            "t": self.started_at,
            "op": self.op_name,
            "reconfig": self.kind,
            "slots": list(self.slot_uids),
            "outcome": self.outcome,
            "detection": self.detection,
            "segments": dict(self.segments),
            "total": self.total,
            "dominant": self.dominant,
        }

    def render(self, width: int = 32) -> str:
        """A phase-timeline bar chart plus the dominant segment."""
        span = max(self.total_with_detection, 1e-12)
        lines = [
            f"{self.kind} of {self.op_name} (slots {self.slot_uids}) — "
            f"{self.total:.3f}s in-engine"
            + (
                f", {self.total_with_detection:.3f}s from failure"
                if self.detection > 0
                else ""
            )
            + (f" [{self.outcome}]" if self.outcome else " [in flight]")
        ]
        rows = []
        if self.detection > 0:
            rows.append((SEGMENT_DETECTION, self.detection))
        rows.extend(self.segments.items())
        label_width = max((len(name) for name, _ in rows), default=0)
        for name, seconds in rows:
            bar = "#" * max(1 if seconds > 0 else 0, round(seconds / span * width))
            share = seconds / span * 100.0
            lines.append(
                f"  {name.ljust(label_width)} {seconds:8.3f}s "
                f"{share:5.1f}% {bar}"
            )
        lines.append(f"  dominant: {self.dominant}")
        return "\n".join(lines)


def analyze(
    timeline: PhaseTimeline, failure_time: float | None = None
) -> CriticalPath:
    """Decompose one phase timeline into critical-path segments.

    ``failure_time`` (the crash instant, when the operation is a
    recovery) yields the detection segment: crash → engine start.  Open
    spans (an operation still in flight) contribute nothing, so the
    invariant ``total == timeline.total_duration()`` holds exactly for
    closed timelines.
    """
    segments: dict[str, float] = {
        seg: 0.0 for seg in SEGMENT_ORDER if seg != SEGMENT_DETECTION
    }
    other = 0.0
    for span in timeline.spans:
        if span.end is None:
            continue
        segment = _PHASE_TO_SEGMENT.get(span.phase)
        duration = span.end - span.start
        if segment is None or segment == SEGMENT_OTHER:
            other += duration
        else:
            segments[segment] += duration
    if other > 0.0:
        segments[SEGMENT_OTHER] = other
    detection = 0.0
    if failure_time is not None and timeline.spans:
        detection = max(0.0, timeline.spans[0].start - failure_time)
    return CriticalPath(
        kind=timeline.kind,
        op_name=timeline.op_name,
        slot_uids=list(timeline.slot_uids),
        outcome=timeline.outcome,
        started_at=timeline.started_at,
        detection=detection,
        segments=segments,
    )
