"""The telemetry facade: one entry point for metrics, events and traces.

Benchmarks, experiments and the chaos harness all observe a run through
a :class:`Telemetry` object.  It wraps the
:class:`~repro.sim.metrics.MetricsHub` (numeric series and counters),
owns the structured :class:`~repro.obs.log.EventLog` (every
``mark_event`` is mirrored into it), and drives the
:class:`~repro.obs.span.Tracer` by observing the system's hot seams:

* the reconfiguration engine's phase transitions become a root
  ``reconfig`` span with one child span per phase;
* failure → detection → recovery handoffs become ``failure`` and
  ``detection`` spans, causally linked by slot uid so the recovery's
  root span points back at the crash that caused it;
* checkpoint backups and state-partition transfers become spans opened
  at send time and closed on delivery (the span object rides along the
  simulated message — the message *is* the causal link);
* control-plane network deliveries are logged as structured events.

Terminal phases compute the operation's
:class:`~repro.obs.critical_path.CriticalPath`, which is both logged as
an event and kept for :meth:`critical_paths` queries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Hashable

from repro.obs.critical_path import CriticalPath, analyze
from repro.obs.log import EventLog
from repro.obs.span import Span, Tracer
from repro.sim.metrics import (
    LatencyReservoir,
    MetricsHub,
    PhaseTimeline,
    RateSeries,
    TimeSeries,
)

#: Terminal engine phases (kept in sync with repro.scaling.reconfig,
#: which obs must not import — the dependency points the other way).
_TERMINAL_PHASES = ("DONE", "ABORTED")


class Telemetry:
    """Facade over metrics, the structured event log and the tracer."""

    def __init__(
        self,
        hub: MetricsHub | None = None,
        clock: Callable[[], float] | None = None,
        run_meta: dict[str, Any] | None = None,
    ) -> None:
        self.hub = hub if hub is not None else MetricsHub()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.log = EventLog(meta=run_meta)
        self.tracer = Tracer()
        #: Root span per in-flight reconfiguration, keyed by id(op).
        self._op_spans: dict[int, Span] = {}
        #: Open phase span per in-flight reconfiguration.
        self._phase_spans: dict[int, Span] = {}
        #: Critical paths of finished operations, in completion order.
        self.finished_paths: list[CriticalPath] = []
        self.hub.on_event(self._mirror_event)

    def now(self) -> float:
        """Current simulated time."""
        return self._clock()

    # --------------------------------------------------- metrics facade

    def timeseries(self, name: str) -> TimeSeries:
        """Get-or-create a time series by name."""
        return self.hub.timeseries(name)

    def rate(self, name: str, bin_width: float = 1.0) -> RateSeries:
        """Get-or-create a rate series by name."""
        return self.hub.rate(name, bin_width)

    def latency(self, name: str) -> LatencyReservoir:
        """Get-or-create a latency reservoir by name."""
        return self.hub.latency(name)

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add to a named counter."""
        self.hub.increment(name, amount)

    def counter(self, name: str) -> float:
        """Read a named counter."""
        return self.hub.counter(name)

    def event(
        self, kind: str, detail: str = "", time: float | None = None, **fields: Any
    ) -> None:
        """Record one control-plane event (hub + structured log)."""
        t = self.now() if time is None else time
        self.hub.mark_event(t, kind, detail, **fields)

    def _mirror_event(
        self, time: float, kind: str, detail: str, fields: dict[str, Any]
    ) -> None:
        record: dict[str, Any] = {}
        if detail:
            record["detail"] = detail
        record.update(fields)
        self.log.emit(kind, time=time, **record)

    def state_tiers(
        self, op_name: str, slot_uid: int, stats: dict[str, int]
    ) -> None:
        """Publish one instance's tiered-state stats (per checkpoint cut).

        Per-operator time series track hot/cold entry counts and the
        hot-tier high-water mark over time; the spill/fault/cold-read
        counters land as monotone counters so dashboards (and the bench
        sweep) can read totals without replaying the series.
        """
        t = self.now()
        self.timeseries(f"state_hot:{op_name}").record(t, stats["hot_entries"])
        self.timeseries(f"state_cold:{op_name}").record(t, stats["cold_entries"])
        self.timeseries(f"state_peak_hot:{op_name}").record(
            t, stats["peak_hot_entries"]
        )
        for counter in ("spills", "faults", "cold_reads"):
            name = f"state_{counter}:{op_name}:{slot_uid}"
            previous = self.counter(name)
            if stats[counter] > previous:
                self.increment(name, stats[counter] - previous)

    def epoch_cut(
        self,
        op_name: str,
        slot_uid: int,
        epoch: int,
        size_bytes: float,
        incremental: bool,
    ) -> None:
        """Publish one checkpoint cut's shipped size (delta vs full).

        Monotone counters split full-snapshot bytes from delta bytes, so
        dashboards (and the bench sweep) can show backup traffic scaling
        with write-rate rather than state size once incremental cuts
        kick in.  Per-operator counters ride alongside the totals.
        """
        name = "checkpoint.delta_bytes" if incremental else "checkpoint.full_bytes"
        self.increment(name, size_bytes)
        self.increment(f"{name}:{op_name}", size_bytes)
        self.increment(
            "checkpoint.cuts.delta" if incremental else "checkpoint.cuts.full"
        )

    def alignment_stall(
        self, op_name: str, slot_uid: int, epoch: int, stall_seconds: float
    ) -> None:
        """Publish a multi-input operator's barrier-alignment stall.

        The time between the first and the last input barrier of one
        epoch — the window during which the faster inputs' tuples were
        parked.  Accumulated in ``epoch.alignment_stall_ms`` and kept as
        a per-operator time series for traces.
        """
        ms = stall_seconds * 1e3
        self.increment("epoch.alignment_stall_ms", ms)
        self.timeseries(f"epoch_stall:{op_name}").record(self.now(), ms)

    def suspicion(
        self, op_name: str, slot_uid: int, phi: float, state: str
    ) -> None:
        """Publish one slot's phi suspicion level (phi detector gauge).

        The per-slot time series records phi at every detector check, so
        a trace shows suspicion accruing through a partition and falling
        back when heartbeats resume; the per-operator gauge keeps the
        worst slot visible without one series per replacement uid.
        """
        t = self.now()
        self.timeseries(f"phi:{op_name}:{slot_uid}").record(t, phi)
        self.timeseries(f"suspicion_state:{op_name}:{slot_uid}").record(
            t, {"alive": 0, "suspect": 1, "confirmed": 2, "dead": 3}.get(state, 0)
        )

    # ------------------------------------------------------ span facade

    def start_span(
        self,
        name: str,
        kind: str = "span",
        parent: Span | int | None = None,
        link_from: Hashable | None = None,
        time: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at the current simulated time (or ``time``)."""
        return self.tracer.start(
            name,
            kind=kind,
            time=self.now() if time is None else time,
            parent=parent,
            link_from=link_from,
            **attrs,
        )

    def end_span(self, span: Span, time: float | None = None, **attrs: Any) -> Span:
        """Close a span at the current simulated time (or ``time``)."""
        return self.tracer.end(span, self.now() if time is None else time, **attrs)

    # --------------------------------------------------- hot-seam hooks

    def observe_engine(self, engine: Any) -> None:
        """Trace every reconfiguration the engine drives."""
        engine.on_phase_change(self._on_phase)

    def observe_network(self, network: Any) -> None:
        """Log control-plane deliveries (checkpoints, state transfers)."""
        network.observer = self._on_network_message

    def record_failure(self, slot_uid: int, op_name: str, vm_id: int) -> Span:
        """Open-and-close a ``failure`` span, registered under the slot's
        uid so the eventual detection can name it as parent."""
        now = self.now()
        span = self.tracer.start(
            f"failure:{op_name}",
            kind="failure",
            time=now,
            slot=slot_uid,
            op=op_name,
            vm=vm_id,
        )
        self.tracer.end(span, now)
        self.tracer.link(("failure", slot_uid), span)
        return span

    def record_detection(
        self, slot_uid: int, op_name: str, failure_time: float
    ) -> Span:
        """A failure was detected: span from the crash to the handoff,
        parented on the failure span and registered for the recovery's
        root span to link against."""
        now = self.now()
        span = self.tracer.start(
            f"detection:{op_name}",
            kind="detection",
            time=failure_time,
            link_from=("failure", slot_uid),
            slot=slot_uid,
            op=op_name,
        )
        self.tracer.end(span, now, latency=now - failure_time)
        self.tracer.link(("detection", slot_uid), span)
        self.event(
            "failure_detected",
            op_name,
            time=now,
            slot=slot_uid,
            latency=now - failure_time,
        )
        return span

    def op_span(self, op: Any) -> Span | None:
        """The root span of an in-flight reconfiguration, if traced."""
        return self._op_spans.get(id(op))

    def phase_span(self, op: Any) -> Span | None:
        """The open phase span of an in-flight reconfiguration.

        Per-message spans created inside a phase (state transfers)
        parent here, falling back to the root span between phases.
        """
        return self._phase_spans.get(id(op)) or self._op_spans.get(id(op))

    def _on_phase(self, op: Any, phase: str) -> None:
        now = self.now()
        key = id(op)
        plan = op.plan
        root = self._op_spans.get(key)
        if root is None:
            slot_uid = plan.old_slots[0].uid
            root = self.tracer.start(
                f"{plan.kind}:{plan.op_name}",
                kind="reconfig",
                time=now,
                link_from=("detection", slot_uid) if plan.is_recovery else None,
                op=plan.op_name,
                reconfig=plan.kind,
                state_source=plan.state_source,
                slots=[slot.uid for slot in plan.old_slots],
                failure_time=plan.failure_time,
            )
            self._op_spans[key] = root
        previous = self._phase_spans.pop(key, None)
        if previous is not None:
            self.tracer.end(previous, now)
        if phase in _TERMINAL_PHASES:
            self._op_spans.pop(key, None)
            self.tracer.end(root, now, outcome=phase.lower())
            path = analyze(op.timeline, failure_time=plan.failure_time)
            self.finished_paths.append(path)
            self.log.emit(
                "critical_path",
                time=now,
                trace=root.trace_id,
                **{
                    k: v
                    for k, v in path.as_record().items()
                    if k not in ("kind", "t")
                },
            )
        else:
            self._phase_spans[key] = self.tracer.start(
                phase, kind="phase", time=now, parent=root
            )

    def _on_network_message(
        self,
        src_vm: int | None,
        dst_vm: int,
        size_bytes: float,
        kind: str,
        sent_at: float,
        delivered: bool,
    ) -> None:
        # Data-plane messages are far too numerous to log one-by-one
        # (EdgeStats aggregates them); the control plane — checkpoints
        # and anything recovery-critical — and the migration plane —
        # state-transfer chunks — are sparse and each delivery matters
        # for the causal story.
        if kind not in ("control", "migration"):
            return
        self.log.emit(
            f"net.{kind}",
            time=self.now(),
            src=src_vm,
            dst=dst_vm,
            bytes=size_bytes,
            sent_at=sent_at,
            delivered=delivered,
        )

    # -------------------------------------------------------- analysis

    def critical_paths(
        self, kind: str | None = None, op_name: str | None = None
    ) -> list[CriticalPath]:
        """Critical paths of every recorded reconfiguration.

        Finished operations carry their detection segment (computed when
        the engine closed them); timelines the engine never finished are
        analyzed as-is so an in-flight or interrupted run still renders.
        """
        analyzed = {
            (p.kind, p.op_name, tuple(p.slot_uids), p.started_at): p
            for p in self.finished_paths
        }
        paths: list[CriticalPath] = []
        for timeline in self.hub.phase_timelines:
            key = (
                timeline.kind,
                timeline.op_name,
                tuple(timeline.slot_uids),
                timeline.started_at,
            )
            paths.append(analyzed.get(key) or analyze(timeline))
        if kind is not None:
            paths = [p for p in paths if p.kind == kind]
        if op_name is not None:
            paths = [p for p in paths if p.op_name == op_name]
        return paths

    def timeline_for(self, path: CriticalPath) -> PhaseTimeline | None:
        """The phase timeline a critical path was computed from."""
        for timeline in self.hub.phase_timelines:
            if (
                timeline.kind == path.kind
                and timeline.op_name == path.op_name
                and timeline.started_at == path.started_at
            ):
                return timeline
        return None

    # ------------------------------------------------------------ dump

    def dump_jsonl(self, path: str | Path) -> Path:
        """Write the full trace — run metadata, events, spans — as JSONL."""
        return self.log.dump_jsonl(
            path, extra_records=(span.to_record() for span in self.tracer.spans)
        )
